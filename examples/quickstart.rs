//! Quickstart: impute a missing city with the simulated LLM, watching every
//! stage of the paper's framework (Figure 1) go by.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use llm_data_preprocessors::core::{PipelineConfig, Preprocessor};
use llm_data_preprocessors::llm::{ChatModel, Fact, KnowledgeBase, ModelProfile, SimulatedLlm};
use llm_data_preprocessors::prompt::{build_request, FewShotExample, Task, TaskInstance};
use llm_data_preprocessors::tabular::{Record, Schema, Value};

fn main() {
    // ── 1. Relational data ────────────────────────────────────────────────
    // The paper's running example: a restaurant record with a missing city.
    let schema = Schema::all_text(&["name", "addr", "phone", "type", "city"])
        .expect("valid schema")
        .shared();
    let record = Record::new(
        Arc::clone(&schema),
        vec![
            Value::text("carey's corner"),
            Value::text("1215 powers ferry rd."),
            Value::text("770-933-0909"),
            Value::text("hamburgers"),
            Value::Missing,
        ],
    )
    .expect("arity matches");
    let instance = TaskInstance::Imputation {
        record,
        attribute: "city".into(),
    };

    // ── 2. A model with world knowledge ───────────────────────────────────
    // The simulated LLM draws on a knowledge corpus; here we hand it the
    // two facts a real model would know from pretraining.
    let mut kb = KnowledgeBase::new();
    kb.add(Fact::AreaCode {
        prefix: "770".into(),
        city: "marietta".into(),
    });
    kb.add(Fact::Cue {
        attribute: "city".into(),
        token: "powers ferry".into(),
        value: "marietta".into(),
    });
    let model = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(kb));

    // ── 3. A few-shot example (§3.2) ──────────────────────────────────────
    let example_record = Record::new(
        Arc::clone(&schema),
        vec![
            Value::text("blue moon cafe"),
            Value::text("881 peachtree st."),
            Value::text("404-875-7562"),
            Value::text("diner"),
            Value::Missing,
        ],
    )
    .expect("arity matches");
    let examples = vec![FewShotExample::new(
        TaskInstance::Imputation {
            record: example_record,
            attribute: "city".into(),
        },
        "The phone number \"404\" suggests the city should be Atlanta. \
         The addr attribute suggests a place on Peachtree Street in Atlanta.",
        "atlanta",
    )];

    // ── 4. Peek at the actual prompt ──────────────────────────────────────
    let config = PipelineConfig::best(Task::Imputation);
    let request = build_request(&config.prompt_config(), &examples, &[&instance]);
    println!("── prompt sent to {} ──", model.name());
    for message in &request.messages {
        println!("[{:?}]\n{}", message.role, message.content);
    }

    // ── 5. Run the pipeline ───────────────────────────────────────────────
    let preprocessor = Preprocessor::new(&model, config);
    let result = preprocessor.run(std::slice::from_ref(&instance), &examples);

    println!("── result ──");
    let prediction = &result.predictions[0];
    match prediction.answer() {
        Some(answer) => {
            if let Some(reason) = &answer.reason {
                println!("reason: {reason}");
            }
            println!("imputed city: {}", answer.value);
        }
        None => println!("the model's answer could not be parsed"),
    }
    println!(
        "usage: {} request(s), {} tokens, ${:.4}, {:.2}s virtual latency",
        result.usage.requests,
        result.usage.total_tokens(),
        result.usage.cost_usd,
        result.usage.latency_secs
    );
}
