//! Schema matching between two health-record catalogs: build all attribute
//! pairs, run the simulated LLM with and without few-shot anchoring, and
//! show the correspondence table it discovers — including why zero-shot
//! chain-of-thought alone is nearly useless here (the paper's Table 2
//! measures it at 5.9 F1).
//!
//! ```text
//! cargo run --release --example schema_matching_catalog
//! ```

use std::sync::Arc;

use llm_data_preprocessors::core::{ComponentSet, PipelineConfig, Preprocessor};
use llm_data_preprocessors::llm::{Fact, KnowledgeBase, ModelProfile, SimulatedLlm};
use llm_data_preprocessors::prompt::{AttrSpec, FewShotExample, Task, TaskInstance};

/// Schema A: a clinical export.
const SCHEMA_A: &[(&str, &str)] = &[
    ("pt_id", "unique identifier of the patient"),
    ("birthdate", "date the patient was born"),
    ("dx_code", "code of the primary diagnosis"),
    ("visit_start", "timestamp when the encounter began"),
];

/// Schema B: an analytics warehouse.
const SCHEMA_B: &[(&str, &str)] = &[
    ("person_ref", "primary key of the person table"),
    ("birth_date", "dob captured at registration"),
    ("cond_concept", "condition classification entry"),
    ("payer_id", "identifier of the insurance payer"),
];

fn main() {
    // Cross product of attributes = candidate correspondences.
    let mut instances = Vec::new();
    let mut pairs = Vec::new();
    for (name_a, desc_a) in SCHEMA_A {
        for (name_b, desc_b) in SCHEMA_B {
            instances.push(TaskInstance::SchemaMatching {
                a: AttrSpec::new(name_a.replace('_', " "), *desc_a),
                b: AttrSpec::new(name_b.replace('_', " "), *desc_b),
            });
            pairs.push((*name_a, *name_b));
        }
    }

    // The synonym facts a strong model memorized from health-data text.
    let mut kb = KnowledgeBase::new();
    kb.add(Fact::AttrSynonym {
        a: "pt id".into(),
        b: "person ref".into(),
    });
    kb.add(Fact::AttrSynonym {
        a: "dx code".into(),
        b: "cond concept".into(),
    });
    let model = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(kb));

    let examples = vec![
        FewShotExample::new(
            TaskInstance::SchemaMatching {
                a: AttrSpec::new("last name", "family name of the patient"),
                b: AttrSpec::new("family_name", "surname on record"),
            },
            "Both attributes denote the surname.",
            "yes",
        ),
        FewShotExample::new(
            TaskInstance::SchemaMatching {
                a: AttrSpec::new("enc id", "identifier of the clinical encounter"),
                b: AttrSpec::new("visit_occurrence", "visit this row belongs to"),
            },
            "\"enc id\" abbreviates the encounter identifier, which is what a \
             visit occurrence row is keyed by.",
            "yes",
        ),
        FewShotExample::new(
            TaskInstance::SchemaMatching {
                a: AttrSpec::new("city", "city of residence"),
                b: AttrSpec::new("device_udi", "unique device identifier in use"),
            },
            "A city and a device identifier are unrelated concepts.",
            "no",
        ),
    ];

    for (label, few_shot) in [
        ("zero-shot (reasoning only)", false),
        ("few-shot anchored", true),
    ] {
        let mut config = PipelineConfig::best(Task::SchemaMatching);
        config.components = ComponentSet {
            few_shot,
            batching: true,
            reasoning: true,
        };
        let preprocessor = Preprocessor::new(&model, config);
        let result = preprocessor.run(&instances, &examples);
        let matches: Vec<&(&str, &str)> = pairs
            .iter()
            .zip(&result.predictions)
            .filter(|(_, p)| p.as_yes_no() == Some(true))
            .map(|(pair, _)| pair)
            .collect();
        println!(
            "{label}: {} of {} pairs matched",
            matches.len(),
            pairs.len()
        );
        for (a, b) in &matches {
            println!("  {a} <-> {b}");
        }
        println!();
    }
    println!(
        "Ground truth: pt_id<->person_ref, birthdate<->birth_date, \
         dx_code<->cond_concept (visit_start and payer_id have no partner)."
    );
}
