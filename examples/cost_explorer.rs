//! Cost explorer: sweep batch sizes on a real workload and watch the
//! paper's Table 3 economics emerge — the fixed instruction tokens amortize
//! while quality barely moves. Then compare what the same run costs on each
//! model.
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use llm_data_preprocessors::core::{ComponentSet, PipelineConfig};
use llm_data_preprocessors::eval::harness::run_llm_on_dataset;
use llm_data_preprocessors::llm::ModelProfile;
use llm_data_preprocessors::prompt::Task;

fn main() {
    let dataset =
        llm_data_preprocessors::datasets::dataset_by_name("Adult", 0.2, 7).expect("known dataset");
    println!(
        "workload: Adult error detection, {} cell instances\n",
        dataset.len()
    );

    // ── Batch-size sweep (GPT-3.5) ───────────────────────────────────────
    println!("batch-size sweep (sim-gpt-3.5):");
    println!(
        "{:>6} {:>8} {:>10} {:>9} {:>10}",
        "batch", "F1", "tokens", "cost $", "hours"
    );
    let profile = ModelProfile::gpt35();
    for batch_size in [1usize, 2, 4, 8, 15] {
        let components = ComponentSet {
            few_shot: false,
            batching: batch_size > 1,
            reasoning: true,
        };
        let mut config = PipelineConfig::ablation(Task::ErrorDetection, components, batch_size);
        config.confirm_target = true;
        let scored = run_llm_on_dataset(&profile, &dataset, &config, 7);
        println!(
            "{:>6} {:>8} {:>10} {:>9.2} {:>10.2}",
            batch_size,
            scored
                .value
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "N/A".into()),
            scored.usage.total_tokens(),
            scored.usage.cost_usd,
            scored.usage.hours(),
        );
    }

    // ── Same workload, different models ──────────────────────────────────
    println!("\nmodel comparison (best setting, batch 15):");
    println!(
        "{:>16} {:>8} {:>10} {:>9} {:>10}",
        "model", "F1", "tokens", "cost $", "hours"
    );
    for profile in ModelProfile::all_presets() {
        let config = PipelineConfig::best(Task::ErrorDetection);
        let scored = run_llm_on_dataset(&profile, &dataset, &config, 7);
        println!(
            "{:>16} {:>8} {:>10} {:>9.2} {:>10.2}",
            profile.name,
            scored
                .value
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "N/A".into()),
            scored.usage.total_tokens(),
            scored.usage.cost_usd,
            scored.usage.hours(),
        );
    }
    println!(
        "\nNote how GPT-4 buys a few F1 points at ~20x the dollar cost — the \
         trade-off behind the paper's recommendation of GPT-3.5 for large \
         datasets."
    );
}
