//! Entity matching end to end on the Beer benchmark: run all four simulated
//! models with the paper's best setting, compare against a trained
//! Ditto-style baseline, and report F1 alongside token/cost/time budgets.
//!
//! ```text
//! cargo run --release --example entity_matching_pipeline
//! ```

use llm_data_preprocessors::baselines::DittoStyle;
use llm_data_preprocessors::core::PipelineConfig;
use llm_data_preprocessors::eval::experiments::{train_split_public, ExperimentConfig};
use llm_data_preprocessors::eval::harness::default_batch_size;
use llm_data_preprocessors::eval::{f1_yes_no, run_llm_on_dataset};
use llm_data_preprocessors::llm::ModelProfile;
use llm_data_preprocessors::prompt::TaskInstance;

fn main() {
    let cfg = ExperimentConfig {
        scale: 1.0,
        seed: 42,
    };
    let dataset = llm_data_preprocessors::datasets::dataset_by_name("Beer", cfg.scale, cfg.seed)
        .expect("known dataset");
    println!(
        "Beer: {} candidate pairs, {} few-shot examples, {} world facts\n",
        dataset.len(),
        dataset.few_shot.len(),
        dataset.kb.len()
    );

    // ── Simulated LLMs, best setting ─────────────────────────────────────
    println!(
        "{:<16} {:>6} {:>10} {:>9} {:>10}",
        "model", "F1", "tokens", "cost $", "time (s)"
    );
    for profile in ModelProfile::all_presets() {
        let mut config = PipelineConfig::best(dataset.task);
        config.batch_size = default_batch_size(&profile);
        config.feature_indices = dataset.informative_features.clone();
        let scored = run_llm_on_dataset(&profile, &dataset, &config, cfg.seed);
        println!(
            "{:<16} {:>6} {:>10} {:>9.4} {:>10.1}",
            profile.name,
            scored
                .value
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "N/A".into()),
            scored.usage.total_tokens(),
            scored.usage.cost_usd,
            scored.usage.latency_secs,
        );
    }

    // ── Classical baseline for contrast ──────────────────────────────────
    let train = train_split_public("Beer", &cfg).expect("known dataset");
    let labeled: Vec<(TaskInstance, bool)> = train
        .instances
        .iter()
        .zip(&train.labels)
        .map(|(i, l)| (i.clone(), l.as_bool().expect("EM labels")))
        .collect();
    let mut ditto = DittoStyle::default();
    ditto.fit(&labeled);
    let predictions: Vec<_> = dataset
        .instances
        .iter()
        .map(|i| {
            if ditto.predict(i) {
                llm_data_preprocessors::core::Prediction::Answered(
                    llm_data_preprocessors::prompt::ExtractedAnswer {
                        reason: None,
                        value: "yes".into(),
                    },
                )
            } else {
                llm_data_preprocessors::core::Prediction::Answered(
                    llm_data_preprocessors::prompt::ExtractedAnswer {
                        reason: None,
                        value: "no".into(),
                    },
                )
            }
        })
        .collect();
    let ditto_f1 = f1_yes_no(&predictions, &dataset.labels);
    println!(
        "{:<16} {:>6.1} {:>10} {:>9} {:>10}",
        "ditto (trained)", ditto_f1, "-", "-", "-"
    );
    println!(
        "\nDitto trains on {} labeled pairs; the LLMs see only {} few-shot examples.",
        labeled.len(),
        dataset.few_shot.len()
    );
}
