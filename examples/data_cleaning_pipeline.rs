//! Data cleaning on CSV input: load a dirty table from CSV text, run
//! cell-level error detection with the simulated LLM, and print a cleaned
//! report — the workflow a downstream user of this library would script.
//!
//! ```text
//! cargo run --release --example data_cleaning_pipeline
//! ```

use std::sync::Arc;

use llm_data_preprocessors::core::{PipelineConfig, Preprocessor};
use llm_data_preprocessors::llm::{Fact, KnowledgeBase, ModelProfile, SimulatedLlm};
use llm_data_preprocessors::prompt::{Task, TaskInstance};
use llm_data_preprocessors::tabular::csv::read_csv_typed;

const DIRTY_CSV: &str = "\
name,age,city,hoursperweek
ann kowalski,34,atlanta,40
bob tanaka,251,marietta,38
carol novak,29,mariettaa,45
dan garcia,41,savannah,999
erin patel,38,decatur,35
frank rossi,55,xxxxx,50
";

fn main() {
    // ── 1. Load the dirty table ──────────────────────────────────────────
    let table = read_csv_typed(DIRTY_CSV).expect("valid CSV");
    println!(
        "loaded {} rows x {} columns: {}",
        table.len(),
        table.schema().len(),
        table.schema().names().join(", ")
    );

    // ── 2. World knowledge the model brings ──────────────────────────────
    let mut kb = KnowledgeBase::new();
    for city in ["atlanta", "marietta", "savannah", "decatur", "roswell"] {
        kb.add(Fact::LexiconMember {
            domain: "city".into(),
            value: city.into(),
        });
    }
    kb.add(Fact::NumericRange {
        attribute: "age".into(),
        min: 0.0,
        max: 110.0,
    });
    kb.add(Fact::NumericRange {
        attribute: "hoursperweek".into(),
        min: 1.0,
        max: 99.0,
    });
    let model = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(kb));

    // ── 3. One ED instance per checkable cell ────────────────────────────
    let mut instances = Vec::new();
    let mut cells = Vec::new();
    for (row_idx, row) in table.rows().iter().enumerate() {
        for attribute in ["age", "city", "hoursperweek"] {
            instances.push(TaskInstance::ErrorDetection {
                record: row.clone(),
                attribute: attribute.into(),
            });
            cells.push((row_idx, attribute));
        }
    }

    // ── 4. Detect ─────────────────────────────────────────────────────────
    let config = PipelineConfig::best(Task::ErrorDetection);
    let preprocessor = Preprocessor::new(&model, config);
    let result = preprocessor.run(&instances, &[]);

    // ── 5. Report ─────────────────────────────────────────────────────────
    println!("\nflagged cells:");
    let mut flagged = 0;
    for ((row_idx, attribute), prediction) in cells.iter().zip(&result.predictions) {
        if prediction.as_yes_no() == Some(true) {
            flagged += 1;
            let row = table.row(*row_idx).expect("in range");
            let value = row.get_by_name(attribute).expect("known attr");
            let reason = prediction
                .answer()
                .and_then(|a| a.reason.clone())
                .unwrap_or_default();
            println!("  row {row_idx}, {attribute} = {value:?}\n    {reason}");
        }
    }
    println!(
        "\n{} of {} cells flagged; {} tokens, ${:.4} virtual cost",
        flagged,
        instances.len(),
        result.usage.total_tokens(),
        result.usage.cost_usd
    );
}
