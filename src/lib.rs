//! # llm-data-preprocessors
//!
//! A from-scratch Rust reproduction of **"Large Language Models as Data
//! Preprocessors"** (Zhang, Dong, Xiao, Oyamada — VLDB 2024).
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`tabular`] — relational data model + contextualization grammar,
//! * [`text`] — tokenizer and string-similarity substrate,
//! * [`embed`] — embeddings and k-means (cluster batching),
//! * [`ml`] — classic-ML substrate used by the baselines,
//! * [`llm`] — the deterministic simulated-LLM substrate,
//! * [`obs`] — tracing, metrics, and online ledger auditing,
//! * [`prompt`] — the paper's prompt-engineering framework (§3),
//! * [`core`] — the end-to-end preprocessing pipeline,
//! * [`datasets`] — the 12 synthetic benchmark datasets,
//! * [`baselines`] — HoloClean/HoloDetect/IMP/SMAT/Magellan/Ditto-style
//!   reimplementations,
//! * [`eval`] — metrics and the experiment harness.
//!
//! See `examples/quickstart.rs` for a three-minute tour.

pub use dprep_baselines as baselines;
pub use dprep_core as core;
pub use dprep_datasets as datasets;
pub use dprep_embed as embed;
pub use dprep_eval as eval;
pub use dprep_llm as llm;
pub use dprep_ml as ml;
pub use dprep_obs as obs;
pub use dprep_prompt as prompt;
pub use dprep_tabular as tabular;
pub use dprep_text as text;
