//! # dprep-baselines
//!
//! Laptop-scale reimplementations of the six classical systems the paper
//! compares against in Table 1. Each captures its original's algorithmic
//! idea without the heavyweight machinery:
//!
//! | baseline | original idea | this reimplementation |
//! |---|---|---|
//! | [`HoloCleanStyle`] | probabilistic repair over denial constraints | unsupervised column profiling: frequency + numeric outlier flags |
//! | [`HoloDetectStyle`] | few-shot error detection with data augmentation | cell featurization + logistic regression on labeled cells |
//! | [`ImpStyle`] | LM-based imputation from record context | multinomial naive Bayes over record tokens |
//! | [`SmatStyle`] | attention over attribute name/description pairs | similarity-feature logistic regression |
//! | [`MagellanStyle`] | feature-based EM over attribute similarities | per-attribute similarity features + logistic regression |
//! | [`DittoStyle`] | serialized-pair language-model matcher | whole-record text similarity features + logistic regression |
//!
//! All baselines follow a `fit(train) → predict(instance)` shape; training
//! splits come from the same generators as the test data (disjoint seeds).

pub mod ditto;
pub mod holoclean;
pub mod holodetect;
pub mod imp;
pub mod magellan;
pub mod smat;

pub use ditto::DittoStyle;
pub use holoclean::HoloCleanStyle;
pub use holodetect::HoloDetectStyle;
pub use imp::ImpStyle;
pub use magellan::MagellanStyle;
pub use smat::SmatStyle;
