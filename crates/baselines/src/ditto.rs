//! Ditto-style entity matching.
//!
//! Ditto (Li et al., PVLDB 2020) serializes the record pair into one text
//! sequence and fine-tunes a pre-trained language model. The substitute
//! keeps the two ingredients that make Ditto beat feature-engineered
//! matchers on noisy data:
//!
//! * **whole-record serialization** — similarities are computed over the
//!   full concatenated text, so information moved across fields (a brand
//!   that appears in the title on one side and the brand field on the
//!   other) still lines up;
//! * **subword robustness** — character-trigram Dice alongside token-level
//!   measures survives typos and truncations;
//!
//! plus the per-attribute features Magellan uses, all fed to logistic
//! regression.

use std::sync::Arc;

use dprep_ml::logreg::{LogRegConfig, LogisticRegression};
use dprep_prompt::TaskInstance;
use dprep_tabular::{Record, Schema};
use dprep_text::{cosine_tf, dice_char_ngrams, jaro_winkler, normalize, overlap_tokens};

/// Serialized-pair entity matcher.
#[derive(Debug, Clone, Default)]
pub struct DittoStyle {
    schema: Option<Arc<Schema>>,
    model: Option<LogisticRegression>,
}

fn serialize(record: &Record) -> String {
    let mut out = String::new();
    for (name, value) in record.named_values() {
        if value.is_missing() {
            continue;
        }
        out.push_str(name);
        out.push(' ');
        out.push_str(&normalize(&value.to_string()));
        out.push(' ');
    }
    out
}

fn featurize(schema: &Schema, instance: &TaskInstance) -> Option<Vec<f64>> {
    let TaskInstance::EntityMatching { a, b } = instance else {
        return None;
    };
    let text_a = serialize(a);
    let text_b = serialize(b);
    let mut features = vec![
        overlap_tokens(&text_a, &text_b),
        cosine_tf(&text_a, &text_b),
        dice_char_ngrams(&text_a, &text_b, 3),
    ];
    for attr in schema.attributes() {
        let (va, vb) = (a.get_by_name(&attr.name), b.get_by_name(&attr.name));
        match (va, vb) {
            (Some(x), Some(y)) if !x.is_missing() && !y.is_missing() => {
                if let (Some(nx), Some(ny)) = (x.as_f64(), y.as_f64()) {
                    let denom = nx.abs().max(ny.abs()).max(1.0);
                    features.push(1.0 - ((nx - ny).abs() / denom).min(1.0));
                } else {
                    let sx = normalize(&x.to_string());
                    let sy = normalize(&y.to_string());
                    features.push(
                        0.4 * jaro_winkler(&sx, &sy)
                            + 0.4 * overlap_tokens(&sx, &sy)
                            + 0.2 * dice_char_ngrams(&sx, &sy, 3),
                    );
                }
            }
            _ => features.push(0.5),
        }
    }
    Some(features)
}

impl DittoStyle {
    /// Trains on labeled record pairs.
    pub fn fit(&mut self, train: &[(TaskInstance, bool)]) {
        let schema = train.iter().find_map(|(inst, _)| {
            if let TaskInstance::EntityMatching { a, .. } = inst {
                Some(Arc::clone(a.schema()))
            } else {
                None
            }
        });
        let Some(schema) = schema else { return };
        let examples: Vec<(Vec<f64>, bool)> = train
            .iter()
            .filter_map(|(inst, label)| featurize(&schema, inst).map(|f| (f, *label)))
            .collect();
        if examples.iter().any(|(_, l)| *l) && examples.iter().any(|(_, l)| !*l) {
            self.model = Some(LogisticRegression::train(
                &examples,
                &LogRegConfig {
                    epochs: 300,
                    ..LogRegConfig::default()
                },
            ));
        }
        self.schema = Some(schema);
    }

    /// Predicts whether the two records match.
    pub fn predict(&self, instance: &TaskInstance) -> bool {
        let (Some(schema), Some(model)) = (&self.schema, &self.model) else {
            return false;
        };
        featurize(schema, instance)
            .map(|f| model.predict(&f))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_datasets::{amazon_google, beer};

    fn f1_of(model: &DittoStyle, ds: &dprep_datasets::Dataset) -> f64 {
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            match (label.as_bool().unwrap(), model.predict(inst)) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                _ => {}
            }
        }
        let p = tp as f64 / (tp + fp).max(1) as f64;
        let r = tp as f64 / (tp + fn_).max(1) as f64;
        2.0 * p * r / (p + r).max(1e-9)
    }

    fn train_on(ds: &dprep_datasets::Dataset) -> DittoStyle {
        let train: Vec<(TaskInstance, bool)> = ds
            .instances
            .iter()
            .zip(&ds.labels)
            .map(|(i, l)| (i.clone(), l.as_bool().unwrap()))
            .collect();
        let mut model = DittoStyle::default();
        model.fit(&train);
        model
    }

    #[test]
    fn strong_on_beer() {
        let model = train_on(&beer::generate(6.0, 51));
        let f1 = f1_of(&model, &beer::generate(1.0, 52));
        assert!(f1 > 0.6, "f1 = {f1:.3}");
    }

    #[test]
    fn beats_magellan_on_noisy_amazon_google() {
        let train_ds = amazon_google::generate(0.3, 53);
        let test_ds = amazon_google::generate(0.3, 54);
        let train: Vec<(TaskInstance, bool)> = train_ds
            .instances
            .iter()
            .zip(&train_ds.labels)
            .map(|(i, l)| (i.clone(), l.as_bool().unwrap()))
            .collect();
        let mut ditto = DittoStyle::default();
        ditto.fit(&train);
        let mut magellan = crate::MagellanStyle::default();
        magellan.fit(&train);

        let f1 = |predict: &dyn Fn(&TaskInstance) -> bool| {
            let (mut tp, mut fp, mut fn_) = (0, 0, 0);
            for (inst, label) in test_ds.instances.iter().zip(&test_ds.labels) {
                match (label.as_bool().unwrap(), predict(inst)) {
                    (true, true) => tp += 1,
                    (false, true) => fp += 1,
                    (true, false) => fn_ += 1,
                    _ => {}
                }
            }
            let p = tp as f64 / (tp + fp).max(1) as f64;
            let r = tp as f64 / (tp + fn_).max(1) as f64;
            2.0 * p * r / (p + r).max(1e-9)
        };
        let ditto_f1 = f1(&|i| ditto.predict(i));
        let magellan_f1 = f1(&|i| magellan.predict(i));
        assert!(
            ditto_f1 >= magellan_f1 - 0.05,
            "ditto {ditto_f1:.3} vs magellan {magellan_f1:.3}"
        );
    }
}
