//! IMP-style data imputation.
//!
//! IMP (Mei et al., ICDE 2021) imputes missing cells with a pre-trained
//! language model conditioned on the record. The laptop-scale substitute
//! keeps the core signal — *the record's other tokens predict the missing
//! value* — using multinomial naive Bayes over normalized tokens, trained
//! on complete records. Unseen evidence tokens degrade it on datasets whose
//! cue vocabulary is broad (Restaurant: 77.2 in Table 1) while repeated
//! brand tokens keep it strong on Buy (96.5).

use dprep_ml::MultinomialNb;
use dprep_prompt::TaskInstance;
use dprep_text::normalize;

/// Naive-Bayes record-context imputer.
#[derive(Debug, Clone)]
pub struct ImpStyle {
    model: MultinomialNb,
    fallback: Option<String>,
}

impl Default for ImpStyle {
    fn default() -> Self {
        ImpStyle {
            // Generous smoothing: with few documents per class, chance
            // frequency differences on filler words must not outweigh a
            // genuinely predictive token.
            model: MultinomialNb::new(2.0),
            fallback: None,
        }
    }
}

fn context_tokens(instance: &TaskInstance) -> Option<(Vec<String>, &str)> {
    let TaskInstance::Imputation { record, attribute } = instance else {
        return None;
    };
    // Set semantics (each token once per record): repeated filler words
    // otherwise add per-class frequency noise that drowns the one
    // discriminative token, a classic multinomial-NB failure on short
    // documents.
    let mut tokens = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (name, value) in record.named_values() {
        if name == attribute || value.is_missing() {
            continue;
        }
        for tok in normalize(&value.to_string()).split(' ') {
            if !tok.is_empty() && seen.insert(tok.to_string()) {
                tokens.push(tok.to_string());
            }
        }
    }
    Some((tokens, attribute.as_str()))
}

impl ImpStyle {
    /// Trains on labeled imputation instances (`(instance, true value)`).
    pub fn fit(&mut self, train: &[(TaskInstance, String)]) {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for (inst, truth) in train {
            let Some((tokens, _)) = context_tokens(inst) else {
                continue;
            };
            let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
            self.model.observe(refs.iter().copied(), truth);
            *counts.entry(truth).or_insert(0) += 1;
        }
        self.fallback = counts
            .into_iter()
            .max_by_key(|(_, c)| *c)
            .map(|(v, _)| v.to_string());
    }

    /// Imputes the missing value, `None` when untrained or the instance is
    /// malformed.
    pub fn predict(&self, instance: &TaskInstance) -> Option<String> {
        let (tokens, _) = context_tokens(instance)?;
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        self.model.predict(&refs).or_else(|| self.fallback.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_datasets::{buy, restaurant};

    fn accuracy(model: &ImpStyle, ds: &dprep_datasets::Dataset) -> f64 {
        let mut correct = 0;
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            if model.predict(inst).as_deref() == label.as_value() {
                correct += 1;
            }
        }
        correct as f64 / ds.len() as f64
    }

    #[test]
    fn learns_brand_cooccurrence_on_buy() {
        // Train on a big split, test on the paper-size split.
        let train_ds = buy::generate(8.0, 21);
        let test_ds = buy::generate(1.0, 22);
        let train: Vec<(TaskInstance, String)> = train_ds
            .instances
            .iter()
            .zip(&train_ds.labels)
            .map(|(i, l)| (i.clone(), l.as_value().unwrap().to_string()))
            .collect();
        let mut model = ImpStyle::default();
        model.fit(&train);
        let acc = accuracy(&model, &test_ds);
        assert!(acc > 0.7, "accuracy = {acc:.3}");
    }

    #[test]
    fn weaker_on_restaurant_city() {
        let train_ds = restaurant::generate(3.0, 23);
        let test_ds = restaurant::generate(1.0, 24);
        let train: Vec<(TaskInstance, String)> = train_ds
            .instances
            .iter()
            .zip(&train_ds.labels)
            .map(|(i, l)| (i.clone(), l.as_value().unwrap().to_string()))
            .collect();
        let mut model = ImpStyle::default();
        model.fit(&train);
        let acc = accuracy(&model, &test_ds);
        assert!(acc > 0.4, "accuracy = {acc:.3}");
    }

    #[test]
    fn untrained_returns_none() {
        let model = ImpStyle::default();
        let ds = buy::generate(0.1, 1);
        assert_eq!(model.predict(&ds.instances[0]), None);
    }
}
