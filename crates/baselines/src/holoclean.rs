//! HoloClean-style unsupervised error detection.
//!
//! HoloClean (Rekatsinas et al., PVLDB 2017) flags cells that violate
//! integrity signals before repairing them probabilistically. This
//! reimplementation keeps the detection side: it profiles each column over
//! the (unlabeled) dataset and flags
//!
//! * rare categorical values (frequency below a threshold), and
//! * numeric outliers (beyond `k` standard deviations from the mean).
//!
//! Like the original on these benchmarks, it is noticeably weaker than
//! learned detectors — rare-but-clean values produce false positives and
//! plausible-looking corruptions escape (Table 1: 54.5 / 51.4 F1).

use std::collections::HashMap;

use dprep_prompt::TaskInstance;

/// Frequency/outlier-based unsupervised error detector.
#[derive(Debug, Clone)]
pub struct HoloCleanStyle {
    /// Relative frequency below which a categorical value is suspicious.
    pub min_frequency: f64,
    /// Z-score beyond which a numeric value is suspicious.
    pub z_threshold: f64,
    /// column name -> (value -> count, total)
    value_counts: HashMap<String, (HashMap<String, usize>, usize)>,
    /// column name -> (mean, std)
    numeric_stats: HashMap<String, (f64, f64)>,
}

impl Default for HoloCleanStyle {
    fn default() -> Self {
        HoloCleanStyle {
            min_frequency: 0.005,
            z_threshold: 3.0,
            value_counts: HashMap::new(),
            numeric_stats: HashMap::new(),
        }
    }
}

impl HoloCleanStyle {
    /// Profiles the dataset's columns (unsupervised — labels unused).
    pub fn fit(&mut self, instances: &[TaskInstance]) {
        let mut numeric: HashMap<String, Vec<f64>> = HashMap::new();
        for inst in instances {
            let TaskInstance::ErrorDetection { record, .. } = inst else {
                continue;
            };
            for (name, value) in record.named_values() {
                if value.is_missing() {
                    continue;
                }
                let rendered = value.to_string();
                if let Some(n) = value.as_f64() {
                    numeric.entry(name.to_string()).or_default().push(n);
                }
                let entry = self
                    .value_counts
                    .entry(name.to_string())
                    .or_insert_with(|| (HashMap::new(), 0));
                *entry.0.entry(rendered).or_insert(0) += 1;
                entry.1 += 1;
            }
        }
        for (name, values) in numeric {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            self.numeric_stats
                .insert(name, (mean, var.sqrt().max(1e-9)));
        }
    }

    /// Predicts whether the instance's target cell is erroneous.
    pub fn predict(&self, instance: &TaskInstance) -> bool {
        let TaskInstance::ErrorDetection { record, attribute } = instance else {
            return false;
        };
        let Some(value) = record.get_by_name(attribute) else {
            return false;
        };
        if value.is_missing() {
            return false;
        }
        if let Some(n) = value.as_f64() {
            if let Some((mean, std)) = self.numeric_stats.get(attribute.as_str()) {
                if ((n - mean) / std).abs() > self.z_threshold {
                    return true;
                }
            }
        }
        if let Some((counts, total)) = self.value_counts.get(attribute.as_str()) {
            // Rarity only means anything in low-cardinality columns; in a
            // column of unique values (names, addresses) every value is
            // "rare" and the signal is vacuous.
            let high_cardinality = counts.len() as f64 / (*total).max(1) as f64 > 0.3;
            let count = counts.get(&value.to_string()).copied().unwrap_or(0);
            // Numeric columns are judged by the z-score above, not rarity.
            if value.as_f64().is_none() && !high_cardinality {
                let freq = count as f64 / (*total).max(1) as f64;
                return freq < self.min_frequency;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_datasets::adult;

    #[test]
    fn profiles_and_flags_blatant_errors() {
        let ds = adult::generate(0.2, 5);
        let mut detector = HoloCleanStyle::default();
        detector.fit(&ds.instances);
        // It should beat random guessing on the injected errors.
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let truth = label.as_bool().unwrap();
            let pred = detector.predict(inst);
            match (truth, pred) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                _ => {}
            }
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fn_).max(1) as f64;
        let f1 = 2.0 * precision * recall / (precision + recall).max(1e-9);
        assert!(f1 > 0.2, "f1 = {f1:.3} (p={precision:.3}, r={recall:.3})");
        // And stay visibly below the supervised detectors (unsupervised gap).
        assert!(f1 < 0.95, "f1 = {f1:.3}");
    }

    #[test]
    fn missing_cells_are_not_errors() {
        let detector = HoloCleanStyle::default();
        let ds = adult::generate(0.02, 1);
        let TaskInstance::ErrorDetection { record, .. } = &ds.instances[0] else {
            panic!()
        };
        let masked = record.with_missing(0).unwrap();
        let inst = TaskInstance::ErrorDetection {
            record: masked,
            attribute: "age".into(),
        };
        assert!(!detector.predict(&inst));
    }
}
