//! SMAT-style schema matching.
//!
//! SMAT (Zhang et al., ADBIS 2021) scores attribute correspondences with an
//! attention model over names and descriptions. The substitute computes a
//! similarity-feature vector — name Jaro-Winkler, name token overlap,
//! description token overlap, description TF cosine — and trains logistic
//! regression on labeled pairs. Like its original on Synthea (38.5 F1 in
//! Table 1), it has no access to world synonym knowledge, so cryptic
//! abbreviation pairs stay out of reach.

use dprep_ml::logreg::{LogRegConfig, LogisticRegression};
use dprep_prompt::TaskInstance;
use dprep_text::{cosine_tf, jaro_winkler, normalize, overlap_tokens};

/// Similarity-feature schema matcher.
#[derive(Debug, Clone, Default)]
pub struct SmatStyle {
    model: Option<LogisticRegression>,
}

fn featurize(instance: &TaskInstance) -> Option<Vec<f64>> {
    let TaskInstance::SchemaMatching { a, b } = instance else {
        return None;
    };
    let name_a = normalize(&a.name);
    let name_b = normalize(&b.name);
    let desc_a = normalize(&a.description);
    let desc_b = normalize(&b.description);
    Some(vec![
        jaro_winkler(&name_a, &name_b),
        overlap_tokens(&name_a, &name_b),
        overlap_tokens(&desc_a, &desc_b),
        cosine_tf(&desc_a, &desc_b),
    ])
}

impl SmatStyle {
    /// Trains on labeled attribute pairs.
    pub fn fit(&mut self, train: &[(TaskInstance, bool)]) {
        let examples: Vec<(Vec<f64>, bool)> = train
            .iter()
            .filter_map(|(inst, label)| featurize(inst).map(|f| (f, *label)))
            .collect();
        if examples.iter().any(|(_, l)| *l) && examples.iter().any(|(_, l)| !*l) {
            self.model = Some(LogisticRegression::train(
                &examples,
                &LogRegConfig {
                    epochs: 500,
                    ..LogRegConfig::default()
                },
            ));
        }
    }

    /// Predicts whether the two attributes match.
    pub fn predict(&self, instance: &TaskInstance) -> bool {
        let Some(features) = featurize(instance) else {
            return false;
        };
        match &self.model {
            Some(model) => model.predict(&features),
            None => features[0] > 0.85,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_datasets::synthea;

    #[test]
    fn middling_on_synthea() {
        let train_ds = synthea::generate(2.0, 31);
        let test_ds = synthea::generate(1.0, 32);
        let train: Vec<(TaskInstance, bool)> = train_ds
            .instances
            .iter()
            .zip(&train_ds.labels)
            .map(|(i, l)| (i.clone(), l.as_bool().unwrap()))
            .collect();
        let mut model = SmatStyle::default();
        model.fit(&train);
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for (inst, label) in test_ds.instances.iter().zip(&test_ds.labels) {
            match (label.as_bool().unwrap(), model.predict(inst)) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                _ => {}
            }
        }
        let p = tp as f64 / (tp + fp).max(1) as f64;
        let r = tp as f64 / (tp + fn_).max(1) as f64;
        let f1 = 2.0 * p * r / (p + r).max(1e-9);
        // Catches the lexically similar pairs but not the cryptic ones.
        assert!(f1 > 0.2 && f1 < 0.95, "f1 = {f1:.3}");
    }

    #[test]
    fn untrained_uses_name_similarity() {
        let model = SmatStyle::default();
        let same = TaskInstance::SchemaMatching {
            a: dprep_prompt::AttrSpec::new("birth date", "date of birth"),
            b: dprep_prompt::AttrSpec::new("birth date", "birth date of patient"),
        };
        let diff = TaskInstance::SchemaMatching {
            a: dprep_prompt::AttrSpec::new("zip", "postal code"),
            b: dprep_prompt::AttrSpec::new("diagnosis", "condition code"),
        };
        assert!(model.predict(&same));
        assert!(!model.predict(&diff));
    }
}
