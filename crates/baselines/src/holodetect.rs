//! HoloDetect-style few-shot supervised error detection.
//!
//! HoloDetect (Heidari et al., SIGMOD 2019) learns an error classifier from
//! a handful of labeled cells, amplified by representation features. This
//! reimplementation featurizes a cell with
//!
//! * column-profile signals (value frequency in the dataset, numeric
//!   z-score),
//! * shape signals (length, digit/symbol fractions, embedded-digit flag),
//! * similarity to the column's frequent values (near-duplicate ⇒ typo),
//!
//! and trains logistic regression on labeled cells. On mechanically
//! injected errors it is very strong — matching its Table 1 showing
//! (99.1 / 94.4 F1).

use std::collections::HashMap;

use dprep_ml::logreg::{LogRegConfig, LogisticRegression};
use dprep_prompt::TaskInstance;
use dprep_tabular::Value;
use dprep_text::normalized_levenshtein;

/// Column profile shared by featurization.
///
/// Numeric statistics are *robust* (median and scaled MAD) so the injected
/// errors themselves cannot mask their own outlierness — the trick that
/// lets HoloDetect work on dirty input.
#[derive(Debug, Clone, Default)]
struct ColumnProfile {
    counts: HashMap<String, usize>,
    /// Frequency of each character-class pattern (see [`char_pattern`]).
    pattern_counts: HashMap<String, usize>,
    total: usize,
    median: f64,
    mad: f64,
    min_clean: f64,
    /// Robust range: [1st percentile, 99th percentile].
    p_low: f64,
    p_high: f64,
    frequent: Vec<String>,
}

/// Featurized-cell error classifier.
#[derive(Debug, Clone, Default)]
pub struct HoloDetectStyle {
    profiles: HashMap<String, ColumnProfile>,
    /// Per-column numeric range of *labeled clean* training cells — the
    /// supervised signal a few-shot system actually learns.
    clean_ranges: HashMap<String, (f64, f64)>,
    model: Option<LogisticRegression>,
}

/// Collapses a value to its character-class pattern: runs of digits map to
/// `d`, letters to `a`, everything else kept verbatim. `"770-933-0909"` →
/// `"d-d-d"`, `"87%"` → `"d%"`. Format-breaking typos land in rare
/// patterns even when the column's values are all unique.
fn char_pattern(value: &str) -> String {
    let mut out = String::new();
    let mut last: Option<char> = None;
    for c in value.chars() {
        let class = if c.is_ascii_digit() {
            'd'
        } else if c.is_alphabetic() {
            'a'
        } else {
            c
        };
        if last != Some(class) || !(class == 'd' || class == 'a') {
            out.push(class);
        }
        last = Some(class);
    }
    out
}

fn cell_of(instance: &TaskInstance) -> Option<(&str, &Value)> {
    let TaskInstance::ErrorDetection { record, attribute } = instance else {
        return None;
    };
    record
        .get_by_name(attribute)
        .map(|v| (attribute.as_str(), v))
}

impl HoloDetectStyle {
    /// Builds column profiles from the unlabeled dataset, then trains on
    /// labeled cells.
    pub fn fit(&mut self, corpus: &[TaskInstance], train: &[(TaskInstance, bool)]) {
        // --- column profiles ------------------------------------------
        let mut numeric: HashMap<String, Vec<f64>> = HashMap::new();
        for inst in corpus {
            let TaskInstance::ErrorDetection { record, .. } = inst else {
                continue;
            };
            for (name, value) in record.named_values() {
                if value.is_missing() {
                    continue;
                }
                let profile = self.profiles.entry(name.to_string()).or_default();
                let rendered = value.to_string();
                *profile
                    .pattern_counts
                    .entry(char_pattern(&rendered))
                    .or_insert(0) += 1;
                *profile.counts.entry(rendered).or_insert(0) += 1;
                profile.total += 1;
                if let Some(n) = value.as_f64() {
                    numeric.entry(name.to_string()).or_default().push(n);
                }
            }
        }
        for profile in self.profiles.values_mut() {
            // Only genuinely frequent values qualify as the "known good"
            // pool — the injected errors themselves appear once or twice
            // and must not become typo anchors.
            let min_count = ((profile.total as f64) * 0.01).ceil().max(3.0) as usize;
            let mut items: Vec<(&String, &usize)> = profile
                .counts
                .iter()
                .filter(|(_, c)| **c >= min_count)
                .collect();
            items.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            profile.frequent = items.iter().take(50).map(|(v, _)| (*v).clone()).collect();
        }
        for (name, mut values) in numeric {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = values[values.len() / 2];
            let mut deviations: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
            deviations.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            // 1.4826 scales MAD to a std-equivalent; floor with the decile
            // spread so constant-heavy columns (capital gains, mostly 0)
            // stay usable.
            let decile_spread =
                (values[values.len() * 9 / 10] - values[values.len() / 10]).abs() / 2.56;
            let mad = (deviations[deviations.len() / 2] * 1.4826)
                .max(decile_spread)
                .max(1.0);
            let min_clean = values[values.len() / 50]; // 2nd percentile
            if let Some(p) = self.profiles.get_mut(&name) {
                p.median = median;
                p.mad = mad;
                p.min_clean = min_clean;
                // p6/p94: inside the clean bulk even with ~5% one-sided
                // error contamination.
                p.p_low = values[values.len() * 6 / 100];
                p.p_high = values[values.len() * 94 / 100];
            }
        }

        // --- supervised clean ranges -----------------------------------
        for (inst, label) in train {
            if *label {
                continue;
            }
            let Some((attribute, value)) = cell_of(inst) else {
                continue;
            };
            let Some(n) = value.as_f64() else { continue };
            let entry = self
                .clean_ranges
                .entry(attribute.to_string())
                .or_insert((n, n));
            entry.0 = entry.0.min(n);
            entry.1 = entry.1.max(n);
        }

        // --- supervised training --------------------------------------
        let mut examples: Vec<(Vec<f64>, bool)> = train
            .iter()
            .filter_map(|(inst, label)| self.featurize(inst).map(|f| (f, *label)))
            .collect();
        // Errors are rare (~5% of cells); oversample the minority class so
        // the classifier does not collapse to "always clean" — HoloDetect's
        // data augmentation plays the same role.
        let positives: Vec<(Vec<f64>, bool)> =
            examples.iter().filter(|(_, l)| *l).cloned().collect();
        let negatives = examples.len() - positives.len();
        if !positives.is_empty() && negatives > positives.len() {
            let copies = negatives / positives.len();
            for _ in 1..copies {
                examples.extend(positives.iter().cloned());
            }
        }
        if examples.iter().any(|(_, l)| *l) && examples.iter().any(|(_, l)| !*l) {
            self.model = Some(LogisticRegression::train(
                &examples,
                &LogRegConfig {
                    epochs: 400,
                    ..LogRegConfig::default()
                },
            ));
        }
    }

    /// Feature vector for a cell, `None` when the instance is malformed or
    /// the cell is missing.
    fn featurize(&self, instance: &TaskInstance) -> Option<Vec<f64>> {
        let (attribute, value) = cell_of(instance)?;
        if value.is_missing() {
            return None;
        }
        let rendered = value.to_string();
        let profile = self.profiles.get(attribute);

        let freq = profile
            .map(|p| p.counts.get(&rendered).copied().unwrap_or(0) as f64 / p.total.max(1) as f64)
            .unwrap_or(0.0);
        let z = match (value.as_f64(), profile) {
            (Some(n), Some(p)) if p.mad > 0.0 => ((n - p.median) / p.mad).abs().min(10.0),
            _ => 0.0,
        };
        // A value below the column's robust floor (e.g. a negative capital
        // gain) is its own signal, independent of spread.
        let below_floor = match (value.as_f64(), profile) {
            (Some(n), Some(p)) => f64::from(n < p.min_clean && n < 0.0),
            _ => 0.0,
        };
        // Column-local outlier flag: outside the labeled-clean training
        // range (with a 15% span margin). This is supervision a few-shot
        // detector genuinely has, and it adapts per column — a uniform
        // `age` and a heavy-tailed `capitalgain` each get a sound bound.
        let outlier_flag = match (value.as_f64(), self.clean_ranges.get(attribute)) {
            (Some(n), Some((lo, hi))) => {
                let margin = (hi - lo).abs().max(1.0) * 0.15;
                f64::from(n > hi + margin || n < lo - margin)
            }
            _ => 0.0,
        };
        let chars: Vec<char> = rendered.chars().collect();
        let len = chars.len() as f64;
        let digits = chars.iter().filter(|c| c.is_ascii_digit()).count() as f64;
        let letters = chars.iter().filter(|c| c.is_alphabetic()).count() as f64;
        let symbols = chars
            .iter()
            .filter(|c| !c.is_alphanumeric() && !c.is_whitespace())
            .count() as f64;
        // Garbage shapes only count against values the dataset has never
        // seen in bulk — legitimate categories like "7th-8th" embed digits
        // too but are frequent.
        let embedded_digit = f64::from(letters >= 3.0 && (1.0..=2.0).contains(&digits));

        // Near-duplicate of a frequent value but not equal → typo signal.
        let near_dup = profile
            .map(|p| {
                p.frequent
                    .iter()
                    .filter(|v| **v != rendered)
                    .map(|v| normalized_levenshtein(v, &rendered))
                    .fold(0.0f64, f64::max)
            })
            .unwrap_or(0.0);
        let is_rare = f64::from(freq < 0.001 && value.as_f64().is_none());
        // Pattern rarity: a value whose character-class shape is uncommon in
        // its column (a letter inside a phone number, a stray character
        // after a percentage).
        let pattern_freq = profile
            .map(|p| {
                p.pattern_counts
                    .get(&char_pattern(&rendered))
                    .copied()
                    .unwrap_or(0) as f64
                    / p.total.max(1) as f64
            })
            .unwrap_or(1.0);
        let rare_pattern = f64::from(pattern_freq < 0.02);
        // A *rare* value sitting next to a frequent one is a typo; frequent
        // categories legitimately resemble each other ("self-emp-inc" vs
        // "self-emp-not-inc"), so rarity must gate the similarity signal.
        let typo_signal = is_rare * near_dup;

        Some(vec![
            (freq * 1000.0).min(10.0),
            z,
            outlier_flag,
            below_floor,
            len / 20.0,
            digits / len.max(1.0),
            symbols / len.max(1.0),
            embedded_digit * is_rare,
            typo_signal,
            f64::from(typo_signal > 0.72),
            is_rare,
            rare_pattern,
        ])
    }

    /// Predicts whether the instance's target cell is erroneous.
    pub fn predict(&self, instance: &TaskInstance) -> bool {
        let Some(features) = self.featurize(instance) else {
            return false;
        };
        match &self.model {
            Some(model) => model.predict(&features),
            // Untrained fallback: strong outliers only.
            None => features[1] > 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_datasets::adult;

    fn f1(detector: &HoloDetectStyle, ds: &dprep_datasets::Dataset) -> f64 {
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            match (label.as_bool().unwrap(), detector.predict(inst)) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                _ => {}
            }
        }
        let p = tp as f64 / (tp + fp).max(1) as f64;
        let r = tp as f64 / (tp + fn_).max(1) as f64;
        2.0 * p * r / (p + r).max(1e-9)
    }

    #[test]
    fn strong_on_injected_errors() {
        // Train on one generated split, test on another.
        let train_ds = adult::generate(0.2, 11);
        let test_ds = adult::generate(0.2, 12);
        let train: Vec<(TaskInstance, bool)> = train_ds
            .instances
            .iter()
            .zip(&train_ds.labels)
            .map(|(i, l)| (i.clone(), l.as_bool().unwrap()))
            .collect();
        let mut detector = HoloDetectStyle::default();
        detector.fit(&test_ds.instances, &train);
        let score = f1(&detector, &test_ds);
        assert!(score > 0.8, "f1 = {score:.3}");
    }

    #[test]
    fn untrained_fallback_is_conservative() {
        let detector = HoloDetectStyle::default();
        let ds = adult::generate(0.02, 3);
        // Without profiles or a model, nothing gets flagged.
        let flagged = ds.instances.iter().filter(|i| detector.predict(i)).count();
        assert_eq!(flagged, 0);
    }
}
