//! Magellan-style entity matching.
//!
//! Magellan (Konda et al., PVLDB 2016) builds per-attribute similarity
//! features and trains a conventional classifier. The substitute does
//! exactly that: for every attribute shared by the pair it computes
//! Jaro-Winkler, token overlap, and (for numerics) relative difference,
//! then trains logistic regression. It has no alias knowledge and no
//! whole-record view — the gaps Ditto (and LLMs) exploit on the noisy
//! benchmarks (Table 1: 49.1 on Amazon-Google vs Ditto's 75.6).

use std::sync::Arc;

use dprep_ml::logreg::{LogRegConfig, LogisticRegression};
use dprep_prompt::TaskInstance;
use dprep_tabular::Schema;
use dprep_text::{jaro_winkler, normalize, overlap_tokens};

/// Per-attribute similarity-feature entity matcher.
#[derive(Debug, Clone, Default)]
pub struct MagellanStyle {
    schema: Option<Arc<Schema>>,
    model: Option<LogisticRegression>,
}

fn featurize(schema: &Schema, instance: &TaskInstance) -> Option<Vec<f64>> {
    let TaskInstance::EntityMatching { a, b } = instance else {
        return None;
    };
    let mut features = Vec::with_capacity(schema.len() * 3);
    for attr in schema.attributes() {
        let va = a.get_by_name(&attr.name);
        let vb = b.get_by_name(&attr.name);
        match (va, vb) {
            (Some(x), Some(y)) if !x.is_missing() && !y.is_missing() => {
                if let (Some(nx), Some(ny)) = (x.as_f64(), y.as_f64()) {
                    let denom = nx.abs().max(ny.abs()).max(1.0);
                    features.push(1.0 - ((nx - ny).abs() / denom).min(1.0));
                    features.push(1.0);
                    features.push(f64::from(nx == ny));
                } else {
                    let sx = normalize(&x.to_string());
                    let sy = normalize(&y.to_string());
                    features.push(jaro_winkler(&sx, &sy));
                    features.push(overlap_tokens(&sx, &sy));
                    features.push(f64::from(sx == sy));
                }
            }
            // One or both sides missing: neutral features plus a
            // missingness indicator folded into the equality slot.
            _ => {
                features.push(0.5);
                features.push(0.0);
                features.push(0.0);
            }
        }
    }
    Some(features)
}

impl MagellanStyle {
    /// Trains on labeled record pairs; the schema is taken from the first
    /// training instance.
    pub fn fit(&mut self, train: &[(TaskInstance, bool)]) {
        let schema = train.iter().find_map(|(inst, _)| {
            if let TaskInstance::EntityMatching { a, .. } = inst {
                Some(Arc::clone(a.schema()))
            } else {
                None
            }
        });
        let Some(schema) = schema else { return };
        let examples: Vec<(Vec<f64>, bool)> = train
            .iter()
            .filter_map(|(inst, label)| featurize(&schema, inst).map(|f| (f, *label)))
            .collect();
        if examples.iter().any(|(_, l)| *l) && examples.iter().any(|(_, l)| !*l) {
            self.model = Some(LogisticRegression::train(
                &examples,
                &LogRegConfig {
                    epochs: 300,
                    ..LogRegConfig::default()
                },
            ));
        }
        self.schema = Some(schema);
    }

    /// Predicts whether the two records match.
    pub fn predict(&self, instance: &TaskInstance) -> bool {
        let (Some(schema), Some(model)) = (&self.schema, &self.model) else {
            return false;
        };
        featurize(schema, instance)
            .map(|f| model.predict(&f))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_datasets::{beer, fodors_zagats};

    pub(crate) fn f1_on(
        predict: impl Fn(&TaskInstance) -> bool,
        ds: &dprep_datasets::Dataset,
    ) -> f64 {
        let (mut tp, mut fp, mut fn_) = (0, 0, 0);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            match (label.as_bool().unwrap(), predict(inst)) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                _ => {}
            }
        }
        let p = tp as f64 / (tp + fp).max(1) as f64;
        let r = tp as f64 / (tp + fn_).max(1) as f64;
        2.0 * p * r / (p + r).max(1e-9)
    }

    #[test]
    fn near_perfect_on_fodors_zagats() {
        let train_ds = fodors_zagats::generate(4.0, 41);
        let test_ds = fodors_zagats::generate(1.0, 42);
        let train: Vec<(TaskInstance, bool)> = train_ds
            .instances
            .iter()
            .zip(&train_ds.labels)
            .map(|(i, l)| (i.clone(), l.as_bool().unwrap()))
            .collect();
        let mut model = MagellanStyle::default();
        model.fit(&train);
        let f1 = f1_on(|i| model.predict(i), &test_ds);
        assert!(f1 > 0.85, "f1 = {f1:.3}");
    }

    #[test]
    fn reasonable_on_beer() {
        let train_ds = beer::generate(6.0, 43);
        let test_ds = beer::generate(1.0, 44);
        let train: Vec<(TaskInstance, bool)> = train_ds
            .instances
            .iter()
            .zip(&train_ds.labels)
            .map(|(i, l)| (i.clone(), l.as_bool().unwrap()))
            .collect();
        let mut model = MagellanStyle::default();
        model.fit(&train);
        let f1 = f1_on(|i| model.predict(i), &test_ds);
        assert!(f1 > 0.5, "f1 = {f1:.3}");
    }

    #[test]
    fn untrained_predicts_false() {
        let model = MagellanStyle::default();
        let ds = beer::generate(0.2, 1);
        assert!(!model.predict(&ds.instances[0]));
    }
}
