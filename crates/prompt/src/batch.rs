//! Batch prompting (§3.5).
//!
//! Batching amortizes the fixed instruction tokens and per-request latency
//! over several data instances. Two modes, as in the paper:
//!
//! * **random batching** — instances are shuffled and chunked,
//! * **cluster batching** — instances are embedded (the Sentence-BERT
//!   substitute from `dprep-embed`), k-means clustered, and chunked within
//!   each cluster, so every batch holds similar questions the model can
//!   answer consistently.

use dprep_embed::{kmeans, HashedNgramEmbedder};
use dprep_rng::Rng;

use crate::task::TaskInstance;

/// How to group instances into batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchStrategy {
    /// Random batching with the given batch size (size 1 = no batching).
    Random {
        /// Instances per prompt.
        batch_size: usize,
    },
    /// Cluster batching: k-means over instance embeddings, then random
    /// batching within each cluster.
    Cluster {
        /// Instances per prompt.
        batch_size: usize,
        /// Number of k-means clusters (clamped to the instance count).
        clusters: usize,
    },
}

impl BatchStrategy {
    /// The batch size of the strategy.
    pub fn batch_size(&self) -> usize {
        match self {
            BatchStrategy::Random { batch_size } | BatchStrategy::Cluster { batch_size, .. } => {
                *batch_size
            }
        }
    }
}

/// Groups instance indices `0..n` into batches per the strategy,
/// deterministic under `seed`. Every index appears in exactly one batch.
pub fn make_batches(
    instances: &[TaskInstance],
    strategy: &BatchStrategy,
    seed: u64,
) -> Vec<Vec<usize>> {
    let n = instances.len();
    if n == 0 {
        return Vec::new();
    }
    let batch_size = strategy.batch_size().max(1);
    let mut rng = Rng::seed_from_u64(seed);

    let groups: Vec<Vec<usize>> = match strategy {
        BatchStrategy::Random { .. } => {
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            vec![order]
        }
        BatchStrategy::Cluster { clusters, .. } => {
            let embedder = HashedNgramEmbedder::default();
            let vectors: Vec<_> = instances
                .iter()
                .map(|i| embedder.embed(&i.flat_text()))
                .collect();
            let k = (*clusters).clamp(1, n);
            let result = kmeans(&vectors, k, seed);
            let mut groups = result.clusters();
            for g in &mut groups {
                rng.shuffle(g);
            }
            groups.retain(|g| !g.is_empty());
            groups
        }
    };

    let mut batches = Vec::new();
    for group in groups {
        for chunk in group.chunks(batch_size) {
            batches.push(chunk.to_vec());
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_tabular::{Record, Schema, Value};

    fn em_instances(texts: &[&str]) -> Vec<TaskInstance> {
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        texts
            .iter()
            .map(|t| {
                let rec = Record::new(schema.clone(), vec![Value::text(t.to_string())]).unwrap();
                TaskInstance::EntityMatching {
                    a: rec.clone(),
                    b: rec,
                }
            })
            .collect()
    }

    #[test]
    fn random_batches_partition_all_indices() {
        let instances = em_instances(&["a", "b", "c", "d", "e", "f", "g"]);
        let batches = make_batches(&instances, &BatchStrategy::Random { batch_size: 3 }, 1);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(batches.iter().all(|b| b.len() <= 3));
        assert_eq!(batches.len(), 3);
    }

    #[test]
    fn batch_size_one_yields_singletons() {
        let instances = em_instances(&["a", "b"]);
        let batches = make_batches(&instances, &BatchStrategy::Random { batch_size: 1 }, 0);
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn deterministic_under_seed() {
        let instances = em_instances(&["a", "b", "c", "d", "e"]);
        let s = BatchStrategy::Random { batch_size: 2 };
        assert_eq!(
            make_batches(&instances, &s, 7),
            make_batches(&instances, &s, 7)
        );
        // Different seeds usually shuffle differently.
        assert_ne!(
            make_batches(&instances, &s, 1),
            make_batches(&instances, &s, 2)
        );
    }

    #[test]
    fn cluster_batching_groups_similar_instances() {
        // Two lexical families; cluster batching should keep each batch
        // within one family.
        let instances = em_instances(&[
            "apple iphone 12 smartphone black",
            "apple iphone 11 smartphone white",
            "apple iphone 13 smartphone blue",
            "apple iphone se smartphone red",
            "garden hose fifty feet green",
            "garden hose thirty feet black",
            "garden hose expandable nozzle",
            "garden hose heavy duty brass",
        ]);
        let batches = make_batches(
            &instances,
            &BatchStrategy::Cluster {
                batch_size: 4,
                clusters: 2,
            },
            3,
        );
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
        for batch in &batches {
            let phones = batch.iter().filter(|&&i| i < 4).count();
            assert!(
                phones == 0 || phones == batch.len(),
                "batch mixes families: {batch:?}"
            );
        }
    }

    #[test]
    fn empty_input_no_batches() {
        assert!(make_batches(&[], &BatchStrategy::Random { batch_size: 4 }, 0).is_empty());
    }

    #[test]
    fn zero_batch_size_treated_as_one() {
        let instances = em_instances(&["a", "b"]);
        let batches = make_batches(&instances, &BatchStrategy::Random { batch_size: 0 }, 0);
        assert_eq!(batches.len(), 2);
    }
}
