//! Task definitions and data instances.
//!
//! The paper (§2.1) defines four tasks over relational data, each handling
//! one record — or one pair — at a time so a prompt is easy to write.

use dprep_tabular::context::{contextualize, contextualize_pairs, contextualize_selected};
use dprep_tabular::{Record, Value};

/// The four data-preprocessing tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Error detection: is cell `r_j` erroneous?
    ErrorDetection,
    /// Data imputation: infer the missing value of cell `r_j`.
    Imputation,
    /// Schema matching: do attributes `j` and `j'` refer to the same thing?
    SchemaMatching,
    /// Entity matching: do records `r` and `r'` refer to the same entity?
    EntityMatching,
}

impl Task {
    /// Short lowercase identifier (used in reports and file names).
    pub fn id(&self) -> &'static str {
        match self {
            Task::ErrorDetection => "ed",
            Task::Imputation => "di",
            Task::SchemaMatching => "sm",
            Task::EntityMatching => "em",
        }
    }

    /// Human-readable task name.
    pub fn name(&self) -> &'static str {
        match self {
            Task::ErrorDetection => "error detection",
            Task::Imputation => "data imputation",
            Task::SchemaMatching => "schema matching",
            Task::EntityMatching => "entity matching",
        }
    }
}

/// An attribute presented to schema matching as `(name, description)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Human-readable description.
    pub description: String,
}

impl AttrSpec {
    /// Builds an attribute spec.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        AttrSpec {
            name: name.into(),
            description: description.into(),
        }
    }

    /// Contextualized form: `[name: "...", description: "..."]` (§3.3).
    pub fn contextualize(&self) -> String {
        contextualize_pairs([
            ("name", Value::text(self.name.clone())),
            ("description", Value::text(self.description.clone())),
        ])
    }
}

/// One data instance for one task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskInstance {
    /// A record and the attribute to check for an error.
    ErrorDetection {
        /// The full record.
        record: Record,
        /// Name of the attribute under test.
        attribute: String,
    },
    /// A record with a missing cell to impute.
    Imputation {
        /// The record; the target cell should be [`Value::Missing`].
        record: Record,
        /// Name of the attribute to impute.
        attribute: String,
    },
    /// A pair of attributes to match.
    SchemaMatching {
        /// First attribute.
        a: AttrSpec,
        /// Second attribute.
        b: AttrSpec,
    },
    /// A pair of records to match.
    EntityMatching {
        /// First record.
        a: Record,
        /// Second record.
        b: Record,
    },
}

impl TaskInstance {
    /// The task this instance belongs to.
    pub fn task(&self) -> Task {
        match self {
            TaskInstance::ErrorDetection { .. } => Task::ErrorDetection,
            TaskInstance::Imputation { .. } => Task::Imputation,
            TaskInstance::SchemaMatching { .. } => Task::SchemaMatching,
            TaskInstance::EntityMatching { .. } => Task::EntityMatching,
        }
    }

    /// Renders the question body for this instance (without the
    /// `Question N:` numbering), applying feature selection when
    /// `feature_indices` is given (§3.4). For ED/DI the target attribute is
    /// always kept even if not selected.
    pub fn question_text(&self, feature_indices: Option<&[usize]>) -> String {
        match self {
            TaskInstance::ErrorDetection { record, attribute } => {
                let ctx = render_record(record, feature_indices, Some(attribute));
                format!("Record is {ctx}. Is there an error in the \"{attribute}\" attribute?")
            }
            TaskInstance::Imputation { record, attribute } => {
                let ctx = render_record(record, feature_indices, Some(attribute));
                format!("Record is {ctx}. What is the value of the \"{attribute}\" attribute?")
            }
            TaskInstance::SchemaMatching { a, b } => format!(
                "Attribute A is {}. Attribute B is {}. Do they refer to the same attribute?",
                a.contextualize(),
                b.contextualize()
            ),
            TaskInstance::EntityMatching { a, b } => format!(
                "Record A is {}. Record B is {}. Do they refer to the same entity?",
                render_record(a, feature_indices, None),
                render_record(b, feature_indices, None)
            ),
        }
    }

    /// All instance text concatenated — the string embedded for cluster
    /// batching.
    pub fn flat_text(&self) -> String {
        match self {
            TaskInstance::ErrorDetection { record, .. }
            | TaskInstance::Imputation { record, .. } => flat_record(record),
            TaskInstance::SchemaMatching { a, b } => {
                format!("{} {} {} {}", a.name, a.description, b.name, b.description)
            }
            TaskInstance::EntityMatching { a, b } => {
                format!("{} {}", flat_record(a), flat_record(b))
            }
        }
    }
}

fn flat_record(record: &Record) -> String {
    let mut out = String::new();
    for v in record.values() {
        if !v.is_missing() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&v.to_string());
        }
    }
    out
}

fn render_record(
    record: &Record,
    feature_indices: Option<&[usize]>,
    keep_attribute: Option<&str>,
) -> String {
    match feature_indices {
        None => contextualize(record),
        Some(indices) => {
            let mut indices = indices.to_vec();
            if let Some(keep) = keep_attribute {
                if let Some(target_idx) = record.schema().index_of(keep) {
                    if !indices.contains(&target_idx) {
                        indices.push(target_idx);
                    }
                }
            }
            indices.retain(|&i| i < record.schema().len());
            contextualize_selected(record, &indices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_tabular::Schema;

    fn restaurant() -> Record {
        let schema = Schema::all_text(&["name", "phone", "type", "city"])
            .unwrap()
            .shared();
        Record::new(
            schema,
            vec![
                Value::text("carey's corner"),
                Value::text("770-933-0909"),
                Value::text("hamburgers"),
                Value::Missing,
            ],
        )
        .unwrap()
    }

    #[test]
    fn di_question_names_the_target() {
        let inst = TaskInstance::Imputation {
            record: restaurant(),
            attribute: "city".into(),
        };
        let q = inst.question_text(None);
        assert!(q.contains("What is the value of the \"city\" attribute?"));
        assert!(q.contains("city: ???"));
        assert_eq!(inst.task(), Task::Imputation);
    }

    #[test]
    fn feature_selection_keeps_target() {
        let inst = TaskInstance::Imputation {
            record: restaurant(),
            attribute: "city".into(),
        };
        // Select only phone (index 1); target city (index 3) must survive.
        let q = inst.question_text(Some(&[1]));
        assert!(q.contains("phone"));
        assert!(q.contains("city: ???"));
        assert!(!q.contains("hamburgers"));
    }

    #[test]
    fn em_question_has_two_records() {
        let inst = TaskInstance::EntityMatching {
            a: restaurant(),
            b: restaurant(),
        };
        let q = inst.question_text(None);
        assert!(q.contains("Record A is ["));
        assert!(q.contains("Record B is ["));
        assert!(q.contains("same entity"));
    }

    #[test]
    fn sm_question_contextualizes_attr_specs() {
        let inst = TaskInstance::SchemaMatching {
            a: AttrSpec::new("zip", "postal code of address"),
            b: AttrSpec::new("postcode", "zip code"),
        };
        let q = inst.question_text(None);
        assert!(q.contains("[name: \"zip\", description: \"postal code of address\"]"));
        assert!(q.contains("same attribute"));
    }

    #[test]
    fn flat_text_skips_missing_cells() {
        let inst = TaskInstance::ErrorDetection {
            record: restaurant(),
            attribute: "phone".into(),
        };
        let flat = inst.flat_text();
        assert!(flat.contains("carey's corner"));
        assert!(!flat.contains("???"));
    }

    #[test]
    fn task_ids_are_stable() {
        assert_eq!(Task::ErrorDetection.id(), "ed");
        assert_eq!(Task::EntityMatching.name(), "entity matching");
    }
}
