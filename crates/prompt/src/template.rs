//! Zero-shot instruction templates (§3.1).
//!
//! The system message stacks: the database-engineer persona, the task
//! specification, a description of the contextualization format, the answer
//! format (two-line with a reasoning line under chain-of-thought, one line
//! otherwise), and task-specific safeguards — the ED target-attribute
//! confirmation and the DI data-type hint.
//!
//! Wording matters twice here: a real LLM conditions on these exact
//! sentences, and so does the simulated model's comprehension layer (task
//! keywords, `"attr"` quoting, the literal word "reason", the phrase
//! "confirm the target attribute"). Keep the phrasing stable.

use crate::task::Task;

/// The persona line every prompt starts with.
pub const PERSONA: &str = "You are a database engineer.";

/// Options controlling the zero-shot instruction.
#[derive(Debug, Clone, Default)]
pub struct TemplateOptions {
    /// Include the chain-of-thought answer format (zero-shot reasoning,
    /// ZS-R in the paper's Table 2).
    pub reasoning: bool,
    /// Include the ED safeguard "Please confirm the target attribute…".
    pub confirm_target: bool,
    /// Optional DI data-type hint, e.g. `("hoursperweek", "a range of
    /// integers")`.
    pub type_hint: Option<(String, String)>,
}

fn task_specification(task: Task) -> String {
    match task {
        Task::ErrorDetection => "You are requested to detect whether there is an error in the \
             given attribute of the given record. A value is erroneous when it is \
             misspelled, out of the plausible range, inconsistent with the rest \
             of the record, or clearly malformed."
            .to_string(),
        Task::Imputation => "You are requested to infer the value of the given attribute based \
             on the values of other attributes in the record. The missing cell \
             is shown as ???."
            .to_string(),
        Task::SchemaMatching => "You are requested to decide whether the two given attributes \
             refer to the same attribute. Each attribute is presented with its \
             name and its description."
            .to_string(),
        Task::EntityMatching => "You are requested to decide whether the two given records refer \
             to the same entity. The records come from different sources and \
             may format the same information differently."
            .to_string(),
    }
}

fn answer_specification(task: Task) -> &'static str {
    match task {
        Task::ErrorDetection => "\"yes\" if the value is erroneous, or \"no\" otherwise",
        Task::Imputation => "the inferred value, with no other words",
        Task::SchemaMatching | Task::EntityMatching => "\"yes\" or \"no\"",
    }
}

/// Builds the full system-message text for a task.
pub fn system_message(task: Task, options: &TemplateOptions) -> String {
    let mut out = String::new();
    out.push_str(PERSONA);
    out.push('\n');
    out.push_str(&task_specification(task));
    out.push('\n');
    out.push_str(
        "Each record is written as [attribute: \"value\", ...]; every question \
         is numbered as \"Question N:\" and you MUST number the corresponding \
         answers the same way as \"Answer N:\", answering every question in \
         order without skipping any.\n",
    );
    if options.reasoning {
        out.push_str(&format!(
            "MUST answer each question in two lines. In the first line, you \
             give the reason for the inference, thinking step by step about \
             the evidence in the record. In the second line, you ONLY give {}.\n",
            answer_specification(task)
        ));
    } else {
        out.push_str(&format!(
            "MUST answer each question in one line. After \"Answer N:\" you \
             ONLY give {}, with no explanation.\n",
            answer_specification(task)
        ));
    }
    if options.confirm_target && task == Task::ErrorDetection {
        out.push_str("Please confirm the target attribute in your reason for inference.\n");
    }
    if let Some((attribute, hint)) = &options.type_hint {
        out.push_str(&format!("The \"{attribute}\" attribute can be {hint}.\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_text::count_tokens;

    #[test]
    fn reasoning_variant_mentions_reason() {
        let text = system_message(
            Task::ErrorDetection,
            &TemplateOptions {
                reasoning: true,
                confirm_target: true,
                type_hint: None,
            },
        );
        assert!(text.contains("reason for the inference"));
        assert!(text.contains("confirm the target attribute"));
        assert!(text.contains("You are a database engineer."));
    }

    #[test]
    fn plain_variant_avoids_the_word_reason() {
        for task in [
            Task::ErrorDetection,
            Task::Imputation,
            Task::SchemaMatching,
            Task::EntityMatching,
        ] {
            let text = system_message(task, &TemplateOptions::default());
            assert!(
                !text.to_lowercase().contains("reason"),
                "task {task:?} leaked the reasoning marker: {text}"
            );
        }
    }

    #[test]
    fn type_hint_is_rendered() {
        let text = system_message(
            Task::Imputation,
            &TemplateOptions {
                reasoning: false,
                confirm_target: false,
                type_hint: Some(("hoursperweek".into(), "a range of integers".into())),
            },
        );
        assert!(text.contains("The \"hoursperweek\" attribute can be a range of integers."));
    }

    #[test]
    fn confirm_target_only_applies_to_ed() {
        let text = system_message(
            Task::EntityMatching,
            &TemplateOptions {
                reasoning: true,
                confirm_target: true,
                type_hint: None,
            },
        );
        assert!(!text.contains("confirm the target attribute"));
    }

    #[test]
    fn instruction_weight_matches_table3_economics() {
        // Table 3's fixed-vs-variable token split implies roughly 150–300
        // instruction tokens amortized by batching.
        let text = system_message(
            Task::ErrorDetection,
            &TemplateOptions {
                reasoning: true,
                confirm_target: true,
                type_hint: None,
            },
        );
        let tokens = count_tokens(&text);
        assert!(
            (120..=320).contains(&tokens),
            "instruction tokens = {tokens}"
        );
    }

    #[test]
    fn all_tasks_have_distinct_specifications() {
        let texts: Vec<String> = [
            Task::ErrorDetection,
            Task::Imputation,
            Task::SchemaMatching,
            Task::EntityMatching,
        ]
        .iter()
        .map(|t| system_message(*t, &TemplateOptions::default()))
        .collect();
        for i in 0..texts.len() {
            for j in (i + 1)..texts.len() {
                assert_ne!(texts[i], texts[j]);
            }
        }
    }
}
