//! Zero-shot instruction templates (§3.1).
//!
//! The system message stacks: the database-engineer persona, the task
//! specification, a description of the contextualization format, the answer
//! format (two-line with a reasoning line under chain-of-thought, one line
//! otherwise), and task-specific safeguards — the ED target-attribute
//! confirmation and the DI data-type hint.
//!
//! Wording matters twice here: a real LLM conditions on these exact
//! sentences, and so does the simulated model's comprehension layer (task
//! keywords, `"attr"` quoting, the literal word "reason", the phrase
//! "confirm the target attribute"). Keep the phrasing stable.

use dprep_text::count_tokens;

use crate::task::Task;

/// The persona line every prompt starts with.
pub const PERSONA: &str = "You are a database engineer.";

/// The system message together with per-component token counts, for cost
/// attribution: which fraction of every billed prompt went to the task
/// specification, the answer-format scaffolding, and the chain-of-thought
/// instruction.
///
/// The counts are additive: each section is a block of newline-terminated
/// lines and the tokenizer never merges across a newline, so
/// `task_spec_tokens + answer_format_tokens + cot_tokens ==
/// count_tokens(&text)` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSections {
    /// The full system-message text (byte-identical to
    /// [`system_message`]).
    pub text: String,
    /// Tokens in the persona, the task specification, and the data-type
    /// hint.
    pub task_spec_tokens: usize,
    /// Tokens in the contextualization-format / answer-numbering
    /// instructions, the plain answer format (when reasoning is off), and
    /// the ED confirm-target safeguard.
    pub answer_format_tokens: usize,
    /// Tokens in the chain-of-thought answer instruction (zero when
    /// reasoning is off).
    pub cot_tokens: usize,
}

/// Options controlling the zero-shot instruction.
#[derive(Debug, Clone, Default)]
pub struct TemplateOptions {
    /// Include the chain-of-thought answer format (zero-shot reasoning,
    /// ZS-R in the paper's Table 2).
    pub reasoning: bool,
    /// Include the ED safeguard "Please confirm the target attribute…".
    pub confirm_target: bool,
    /// Optional DI data-type hint, e.g. `("hoursperweek", "a range of
    /// integers")`.
    pub type_hint: Option<(String, String)>,
}

fn task_specification(task: Task) -> String {
    match task {
        Task::ErrorDetection => "You are requested to detect whether there is an error in the \
             given attribute of the given record. A value is erroneous when it is \
             misspelled, out of the plausible range, inconsistent with the rest \
             of the record, or clearly malformed."
            .to_string(),
        Task::Imputation => "You are requested to infer the value of the given attribute based \
             on the values of other attributes in the record. The missing cell \
             is shown as ???."
            .to_string(),
        Task::SchemaMatching => "You are requested to decide whether the two given attributes \
             refer to the same attribute. Each attribute is presented with its \
             name and its description."
            .to_string(),
        Task::EntityMatching => "You are requested to decide whether the two given records refer \
             to the same entity. The records come from different sources and \
             may format the same information differently."
            .to_string(),
    }
}

fn answer_specification(task: Task) -> &'static str {
    match task {
        Task::ErrorDetection => "\"yes\" if the value is erroneous, or \"no\" otherwise",
        Task::Imputation => "the inferred value, with no other words",
        Task::SchemaMatching | Task::EntityMatching => "\"yes\" or \"no\"",
    }
}

/// Builds the full system-message text for a task.
pub fn system_message(task: Task, options: &TemplateOptions) -> String {
    system_sections(task, options).text
}

/// Builds the system message with its per-component token counts. The
/// `text` field is byte-identical to [`system_message`]; the counts tag
/// each line block with the component it belongs to.
pub fn system_sections(task: Task, options: &TemplateOptions) -> SystemSections {
    let mut text = String::new();
    let mut task_spec_tokens = 0;
    let mut answer_format_tokens = 0;
    let mut cot_tokens = 0;
    let push = |text: &mut String, counter: &mut usize, part: &str| {
        *counter += count_tokens(part);
        text.push_str(part);
    };

    push(&mut text, &mut task_spec_tokens, PERSONA);
    push(&mut text, &mut task_spec_tokens, "\n");
    push(&mut text, &mut task_spec_tokens, &task_specification(task));
    push(&mut text, &mut task_spec_tokens, "\n");
    push(
        &mut text,
        &mut answer_format_tokens,
        "Each record is written as [attribute: \"value\", ...]; every question \
         is numbered as \"Question N:\" and you MUST number the corresponding \
         answers the same way as \"Answer N:\", answering every question in \
         order without skipping any.\n",
    );
    if options.reasoning {
        push(
            &mut text,
            &mut cot_tokens,
            &format!(
                "MUST answer each question in two lines. In the first line, you \
                 give the reason for the inference, thinking step by step about \
                 the evidence in the record. In the second line, you ONLY give {}.\n",
                answer_specification(task)
            ),
        );
    } else {
        push(
            &mut text,
            &mut answer_format_tokens,
            &format!(
                "MUST answer each question in one line. After \"Answer N:\" you \
                 ONLY give {}, with no explanation.\n",
                answer_specification(task)
            ),
        );
    }
    if options.confirm_target && task == Task::ErrorDetection {
        push(
            &mut text,
            &mut answer_format_tokens,
            "Please confirm the target attribute in your reason for inference.\n",
        );
    }
    if let Some((attribute, hint)) = &options.type_hint {
        push(
            &mut text,
            &mut task_spec_tokens,
            &format!("The \"{attribute}\" attribute can be {hint}.\n"),
        );
    }
    SystemSections {
        text,
        task_spec_tokens,
        answer_format_tokens,
        cot_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_text::count_tokens;

    #[test]
    fn reasoning_variant_mentions_reason() {
        let text = system_message(
            Task::ErrorDetection,
            &TemplateOptions {
                reasoning: true,
                confirm_target: true,
                type_hint: None,
            },
        );
        assert!(text.contains("reason for the inference"));
        assert!(text.contains("confirm the target attribute"));
        assert!(text.contains("You are a database engineer."));
    }

    #[test]
    fn plain_variant_avoids_the_word_reason() {
        for task in [
            Task::ErrorDetection,
            Task::Imputation,
            Task::SchemaMatching,
            Task::EntityMatching,
        ] {
            let text = system_message(task, &TemplateOptions::default());
            assert!(
                !text.to_lowercase().contains("reason"),
                "task {task:?} leaked the reasoning marker: {text}"
            );
        }
    }

    #[test]
    fn type_hint_is_rendered() {
        let text = system_message(
            Task::Imputation,
            &TemplateOptions {
                reasoning: false,
                confirm_target: false,
                type_hint: Some(("hoursperweek".into(), "a range of integers".into())),
            },
        );
        assert!(text.contains("The \"hoursperweek\" attribute can be a range of integers."));
    }

    #[test]
    fn confirm_target_only_applies_to_ed() {
        let text = system_message(
            Task::EntityMatching,
            &TemplateOptions {
                reasoning: true,
                confirm_target: true,
                type_hint: None,
            },
        );
        assert!(!text.contains("confirm the target attribute"));
    }

    #[test]
    fn instruction_weight_matches_table3_economics() {
        // Table 3's fixed-vs-variable token split implies roughly 150–300
        // instruction tokens amortized by batching.
        let text = system_message(
            Task::ErrorDetection,
            &TemplateOptions {
                reasoning: true,
                confirm_target: true,
                type_hint: None,
            },
        );
        let tokens = count_tokens(&text);
        assert!(
            (120..=320).contains(&tokens),
            "instruction tokens = {tokens}"
        );
    }

    #[test]
    fn sections_sum_to_the_whole_message_exactly() {
        for reasoning in [false, true] {
            for task in [
                Task::ErrorDetection,
                Task::Imputation,
                Task::SchemaMatching,
                Task::EntityMatching,
            ] {
                let options = TemplateOptions {
                    reasoning,
                    confirm_target: true,
                    type_hint: Some(("age".into(), "an integer".into())),
                };
                let sections = system_sections(task, &options);
                assert_eq!(sections.text, system_message(task, &options));
                assert_eq!(
                    sections.task_spec_tokens + sections.answer_format_tokens + sections.cot_tokens,
                    count_tokens(&sections.text),
                    "sections must partition the message ({task:?}, \
                     reasoning={reasoning})"
                );
                assert_eq!(sections.cot_tokens > 0, reasoning);
            }
        }
    }

    #[test]
    fn all_tasks_have_distinct_specifications() {
        let texts: Vec<String> = [
            Task::ErrorDetection,
            Task::Imputation,
            Task::SchemaMatching,
            Task::EntityMatching,
        ]
        .iter()
        .map(|t| system_message(*t, &TemplateOptions::default()))
        .collect();
        for i in 0..texts.len() {
            for j in (i + 1)..texts.len() {
                assert_ne!(texts[i], texts[j]);
            }
        }
    }
}
