//! Parses completions back into per-question answers.
//!
//! The framework instructs models to emit `Answer N:` segments. This parser
//! recovers them, tolerating reordered numbering; questions whose segment is
//! missing or malformed come back as `None` (the "unparseable" outcomes
//! that, at high rates, the paper reports as N/A).

use std::collections::BTreeMap;

/// One extracted answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedAnswer {
    /// The reasoning line(s), when the two-line format was used.
    pub reason: Option<String>,
    /// The final answer value, trimmed.
    pub value: String,
}

impl ExtractedAnswer {
    /// Interprets the value as a yes/no verdict, `None` when it is neither.
    pub fn as_yes_no(&self) -> Option<bool> {
        let v = self.value.trim().trim_end_matches('.').to_lowercase();
        match v.as_str() {
            "yes" | "y" | "true" => Some(true),
            "no" | "n" | "false" => Some(false),
            _ => None,
        }
    }
}

/// The `Answer N:` marker prefix both scanners look for.
const MARKER: &str = "Answer ";

/// Index-based scanner over `Answer N:` markers.
///
/// Yields `(number, segment)` pairs where `segment` borrows from the raw
/// completion — no intermediate `Vec` of line slices and no per-segment
/// `String` copies. A segment runs from the byte after the marker's colon to
/// the start of the next valid marker (or end of text), trimmed.
struct AnswerScanner<'a> {
    text: &'a str,
    cursor: usize,
    /// The next valid marker, pre-scanned while delimiting the previous
    /// segment: `(marker_start, number, content_start)`.
    pending: Option<(usize, usize, usize)>,
    done: bool,
}

impl<'a> AnswerScanner<'a> {
    fn new(text: &'a str) -> Self {
        AnswerScanner {
            text,
            cursor: 0,
            pending: None,
            done: false,
        }
    }

    /// Finds the next valid `Answer N:` marker at or after `self.cursor`,
    /// advancing the cursor past it. Returns `(marker_start, number,
    /// content_start)`; numbers that overflow `usize` come back as 0 (and
    /// are skipped by the caller, matching the legacy parser).
    fn next_marker(&mut self) -> Option<(usize, usize, usize)> {
        while let Some(found) = self.text[self.cursor..].find(MARKER) {
            let at = self.cursor + found;
            let after = &self.text[at + MARKER.len()..];
            let digits_len = after
                .as_bytes()
                .iter()
                .take_while(|b| b.is_ascii_digit())
                .count();
            let rest = &after[digits_len..];
            if digits_len > 0 && rest.starts_with(':') {
                let content_start = at + MARKER.len() + digits_len + 1;
                let number = after[..digits_len].parse().unwrap_or(0);
                self.cursor = content_start;
                return Some((at, number, content_start));
            }
            self.cursor = at + MARKER.len();
        }
        None
    }
}

impl<'a> Iterator for AnswerScanner<'a> {
    type Item = (usize, &'a str);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let (_, number, start) = match self.pending.take() {
            Some(marker) => marker,
            None => match self.next_marker() {
                Some(marker) => marker,
                None => {
                    self.done = true;
                    return None;
                }
            },
        };
        let end = match self.next_marker() {
            Some(next) => {
                self.pending = Some(next);
                next.0
            }
            None => {
                self.done = true;
                self.text.len()
            }
        };
        Some((number, self.text[start..end].trim()))
    }
}

/// Parses a completion into answers keyed by question number (1-based).
///
/// `expect_reason` says whether the prompt requested the two-line format:
/// when true, the last line of a segment is the value and the earlier lines
/// are the reason; when false, the whole segment is the value. Duplicate
/// numbers keep the first occurrence.
///
/// This is the dispatch/parse hot path: it walks the completion once with an
/// index-based scanner and allocates only the final `reason`/`value`
/// `String`s — no intermediate line vectors or segment copies.
pub fn parse_response(text: &str, expect_reason: bool) -> BTreeMap<usize, ExtractedAnswer> {
    let mut answers = BTreeMap::new();
    for (number, segment) in AnswerScanner::new(text) {
        if number == 0 || answers.contains_key(&number) {
            continue;
        }
        let extracted = if expect_reason {
            // Stream the trimmed, non-empty lines: the running `last` becomes
            // the value; everything before it accretes into the reason.
            let mut reason = String::new();
            let mut last: Option<&str> = None;
            for line in segment.split('\n') {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if let Some(prev) = last.replace(line) {
                    if !reason.is_empty() {
                        reason.push(' ');
                    }
                    reason.push_str(prev);
                }
            }
            let Some(value) = last else { continue };
            ExtractedAnswer {
                reason: (!reason.is_empty()).then_some(reason),
                value: value.to_string(),
            }
        } else {
            let mut value = String::new();
            for line in segment.split('\n') {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if !value.is_empty() {
                    value.push(' ');
                }
                value.push_str(line);
            }
            if value.is_empty() {
                continue;
            }
            ExtractedAnswer {
                reason: None,
                value,
            }
        };
        answers.insert(number, extracted);
    }
    answers
}

/// The pre-scanner implementation of [`parse_response`], retained verbatim as
/// the reference oracle for the seeded equivalence suite
/// (`tests/parse_equivalence.rs`). Not for production use.
#[doc(hidden)]
pub fn parse_response_legacy(text: &str, expect_reason: bool) -> BTreeMap<usize, ExtractedAnswer> {
    fn split_answers(text: &str) -> Vec<(usize, String)> {
        let mut out: Vec<(usize, usize, usize)> = Vec::new(); // (number, content_start, marker_start)
        let mut cursor = 0;
        while let Some(found) = text[cursor..].find(MARKER) {
            let at = cursor + found;
            let after = &text[at + MARKER.len()..];
            let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
            let rest = &after[digits.len()..];
            if !digits.is_empty() && rest.starts_with(':') {
                let content_start = at + MARKER.len() + digits.len() + 1;
                out.push((digits.parse().unwrap_or(0), content_start, at));
                cursor = content_start;
            } else {
                cursor = at + MARKER.len();
            }
        }
        let mut segments = Vec::with_capacity(out.len());
        for (i, &(number, start, _)) in out.iter().enumerate() {
            let end = out
                .get(i + 1)
                .map_or(text.len(), |&(_, _, next_marker)| next_marker);
            segments.push((number, text[start..end].trim().to_string()));
        }
        segments
    }

    let mut answers = BTreeMap::new();
    for (number, segment) in split_answers(text) {
        if number == 0 || answers.contains_key(&number) {
            continue;
        }
        let lines: Vec<&str> = segment
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let extracted = match (expect_reason, lines.as_slice()) {
            (_, []) => continue,
            (false, all) => ExtractedAnswer {
                reason: None,
                value: all.join(" "),
            },
            (true, [only]) => ExtractedAnswer {
                reason: None,
                value: (*only).to_string(),
            },
            (true, [reason @ .., value]) => ExtractedAnswer {
                reason: Some(reason.join(" ")),
                value: (*value).to_string(),
            },
        };
        answers.insert(number, extracted);
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_line_answers() {
        let text = "Answer 1: The area code suggests Marietta.\nmarietta\n\
                    Answer 2: The brand token is Sony.\nsony\n";
        let answers = parse_response(text, true);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[&1].value, "marietta");
        assert_eq!(
            answers[&1].reason.as_deref(),
            Some("The area code suggests Marietta.")
        );
        assert_eq!(answers[&2].value, "sony");
    }

    #[test]
    fn parses_single_line_answers() {
        let text = "Answer 1: yes\nAnswer 2: no\n";
        let answers = parse_response(text, false);
        assert_eq!(answers[&1].value, "yes");
        assert_eq!(answers[&1].reason, None);
        assert_eq!(answers[&2].as_yes_no(), Some(false));
    }

    #[test]
    fn missing_segments_are_absent() {
        let text = "Answer 1: yes\nWell, the second question is hard to say.\n";
        let answers = parse_response(text, false);
        assert_eq!(answers.len(), 1);
        assert!(!answers.contains_key(&2));
    }

    #[test]
    fn tolerates_out_of_order_numbers() {
        let text = "Answer 2: no\nAnswer 1: yes\n";
        let answers = parse_response(text, false);
        assert_eq!(answers[&1].value, "yes");
        assert_eq!(answers[&2].value, "no");
    }

    #[test]
    fn yes_no_interpretation() {
        let yes = ExtractedAnswer {
            reason: None,
            value: "Yes.".into(),
        };
        assert_eq!(yes.as_yes_no(), Some(true));
        let unclear = ExtractedAnswer {
            reason: None,
            value: "possibly".into(),
        };
        assert_eq!(unclear.as_yes_no(), None);
    }

    #[test]
    fn two_line_with_single_line_fallback() {
        // Model ignored the reasoning request; the single line is the value.
        let answers = parse_response("Answer 1: marietta\n", true);
        assert_eq!(answers[&1].value, "marietta");
        assert_eq!(answers[&1].reason, None);
    }

    #[test]
    fn rambling_without_markers_parses_to_nothing() {
        let text = "Well, regarding the first question, it is hard to say.";
        assert!(parse_response(text, true).is_empty());
    }

    #[test]
    fn duplicate_numbers_keep_first() {
        let answers = parse_response("Answer 1: yes\nAnswer 1: no\n", false);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[&1].value, "yes");
    }

    #[test]
    fn multi_line_reason_joined() {
        let text = "Answer 1: First consideration.\nSecond consideration.\nno\n";
        let answers = parse_response(text, true);
        assert_eq!(
            answers[&1].reason.as_deref(),
            Some("First consideration. Second consideration.")
        );
        assert_eq!(answers[&1].value, "no");
    }
}
