//! Parses completions back into per-question answers.
//!
//! The framework instructs models to emit `Answer N:` segments. This parser
//! recovers them, tolerating reordered numbering; questions whose segment is
//! missing or malformed come back as `None` (the "unparseable" outcomes
//! that, at high rates, the paper reports as N/A).

use std::collections::BTreeMap;

/// One extracted answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedAnswer {
    /// The reasoning line(s), when the two-line format was used.
    pub reason: Option<String>,
    /// The final answer value, trimmed.
    pub value: String,
}

impl ExtractedAnswer {
    /// Interprets the value as a yes/no verdict, `None` when it is neither.
    pub fn as_yes_no(&self) -> Option<bool> {
        let v = self.value.trim().trim_end_matches('.').to_lowercase();
        match v.as_str() {
            "yes" | "y" | "true" => Some(true),
            "no" | "n" | "false" => Some(false),
            _ => None,
        }
    }
}

/// Splits a completion on `Answer N:` markers into `(N, segment)` pairs.
fn split_answers(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, usize, usize)> = Vec::new(); // (number, content_start, marker_start)
    let marker = "Answer ";
    let mut cursor = 0;
    while let Some(found) = text[cursor..].find(marker) {
        let at = cursor + found;
        let after = &text[at + marker.len()..];
        let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
        let rest = &after[digits.len()..];
        if !digits.is_empty() && rest.starts_with(':') {
            let content_start = at + marker.len() + digits.len() + 1;
            out.push((digits.parse().unwrap_or(0), content_start, at));
            cursor = content_start;
        } else {
            cursor = at + marker.len();
        }
    }
    let mut segments = Vec::with_capacity(out.len());
    for (i, &(number, start, _)) in out.iter().enumerate() {
        let end = out
            .get(i + 1)
            .map_or(text.len(), |&(_, _, next_marker)| next_marker);
        segments.push((number, text[start..end].trim().to_string()));
    }
    segments
}

/// Parses a completion into answers keyed by question number (1-based).
///
/// `expect_reason` says whether the prompt requested the two-line format:
/// when true, the last line of a segment is the value and the earlier lines
/// are the reason; when false, the whole segment is the value. Duplicate
/// numbers keep the first occurrence.
pub fn parse_response(text: &str, expect_reason: bool) -> BTreeMap<usize, ExtractedAnswer> {
    let mut answers = BTreeMap::new();
    for (number, segment) in split_answers(text) {
        if number == 0 || answers.contains_key(&number) {
            continue;
        }
        let lines: Vec<&str> = segment
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let extracted = match (expect_reason, lines.as_slice()) {
            (_, []) => continue,
            (false, all) => ExtractedAnswer {
                reason: None,
                value: all.join(" "),
            },
            (true, [only]) => ExtractedAnswer {
                reason: None,
                value: (*only).to_string(),
            },
            (true, [reason @ .., value]) => ExtractedAnswer {
                reason: Some(reason.join(" ")),
                value: (*value).to_string(),
            },
        };
        answers.insert(number, extracted);
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_line_answers() {
        let text = "Answer 1: The area code suggests Marietta.\nmarietta\n\
                    Answer 2: The brand token is Sony.\nsony\n";
        let answers = parse_response(text, true);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[&1].value, "marietta");
        assert_eq!(
            answers[&1].reason.as_deref(),
            Some("The area code suggests Marietta.")
        );
        assert_eq!(answers[&2].value, "sony");
    }

    #[test]
    fn parses_single_line_answers() {
        let text = "Answer 1: yes\nAnswer 2: no\n";
        let answers = parse_response(text, false);
        assert_eq!(answers[&1].value, "yes");
        assert_eq!(answers[&1].reason, None);
        assert_eq!(answers[&2].as_yes_no(), Some(false));
    }

    #[test]
    fn missing_segments_are_absent() {
        let text = "Answer 1: yes\nWell, the second question is hard to say.\n";
        let answers = parse_response(text, false);
        assert_eq!(answers.len(), 1);
        assert!(!answers.contains_key(&2));
    }

    #[test]
    fn tolerates_out_of_order_numbers() {
        let text = "Answer 2: no\nAnswer 1: yes\n";
        let answers = parse_response(text, false);
        assert_eq!(answers[&1].value, "yes");
        assert_eq!(answers[&2].value, "no");
    }

    #[test]
    fn yes_no_interpretation() {
        let yes = ExtractedAnswer {
            reason: None,
            value: "Yes.".into(),
        };
        assert_eq!(yes.as_yes_no(), Some(true));
        let unclear = ExtractedAnswer {
            reason: None,
            value: "possibly".into(),
        };
        assert_eq!(unclear.as_yes_no(), None);
    }

    #[test]
    fn two_line_with_single_line_fallback() {
        // Model ignored the reasoning request; the single line is the value.
        let answers = parse_response("Answer 1: marietta\n", true);
        assert_eq!(answers[&1].value, "marietta");
        assert_eq!(answers[&1].reason, None);
    }

    #[test]
    fn rambling_without_markers_parses_to_nothing() {
        let text = "Well, regarding the first question, it is hard to say.";
        assert!(parse_response(text, true).is_empty());
    }

    #[test]
    fn duplicate_numbers_keep_first() {
        let answers = parse_response("Answer 1: yes\nAnswer 1: no\n", false);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[&1].value, "yes");
    }

    #[test]
    fn multi_line_reason_joined() {
        let text = "Answer 1: First consideration.\nSecond consideration.\nno\n";
        let answers = parse_response(text, true);
        assert_eq!(
            answers[&1].reason.as_deref(),
            Some("First consideration. Second consideration.")
        );
        assert_eq!(answers[&1].value, "no");
    }
}
