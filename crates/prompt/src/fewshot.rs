//! Few-shot prompting (§3.2).
//!
//! A handful of labeled instances condition the model: they teach error
//! criteria, imputation style, and matching strictness. Examples are
//! rendered as one user turn (the numbered questions) followed by one
//! assistant turn (the numbered answers, each with its human-written
//! reasoning when chain-of-thought is on).

use dprep_llm::Message;

use crate::task::TaskInstance;

/// One labeled few-shot example.
#[derive(Debug, Clone, PartialEq)]
pub struct FewShotExample {
    /// The data instance shown in the question.
    pub instance: TaskInstance,
    /// Plausible human-written reasoning (shown only under chain of
    /// thought). The paper requires users to provide this.
    pub reason: String,
    /// The gold answer.
    pub answer: String,
}

impl FewShotExample {
    /// Builds an example.
    pub fn new(
        instance: TaskInstance,
        reason: impl Into<String>,
        answer: impl Into<String>,
    ) -> Self {
        FewShotExample {
            instance,
            reason: reason.into(),
            answer: answer.into(),
        }
    }
}

/// Renders few-shot examples as a `(user, assistant)` message pair.
/// Returns `None` when `examples` is empty.
///
/// `reasoning` controls whether the assistant's answers include the
/// reasoning line, mirroring the answer format the zero-shot instruction
/// requests; `feature_indices` applies feature selection to example
/// records so examples look exactly like the batch questions.
pub fn render_examples(
    examples: &[FewShotExample],
    reasoning: bool,
    feature_indices: Option<&[usize]>,
) -> Option<(Message, Message)> {
    if examples.is_empty() {
        return None;
    }
    let mut questions = String::new();
    let mut answers = String::new();
    for (i, ex) in examples.iter().enumerate() {
        let n = i + 1;
        questions.push_str(&format!(
            "Question {n}: {}\n",
            ex.instance.question_text(feature_indices)
        ));
        if reasoning {
            answers.push_str(&format!("Answer {n}: {}\n{}\n", ex.reason, ex.answer));
        } else {
            answers.push_str(&format!("Answer {n}: {}\n", ex.answer));
        }
    }
    Some((Message::user(questions), Message::assistant(answers)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::AttrSpec;
    use dprep_llm::Role;

    fn example() -> FewShotExample {
        FewShotExample::new(
            TaskInstance::SchemaMatching {
                a: AttrSpec::new("zip", "postal code"),
                b: AttrSpec::new("postcode", "zip code"),
            },
            "Both name the mailing code of an address.",
            "yes",
        )
    }

    #[test]
    fn empty_examples_render_nothing() {
        assert!(render_examples(&[], true, None).is_none());
    }

    #[test]
    fn renders_numbered_pairs_with_reasoning() {
        let (user, assistant) = render_examples(&[example(), example()], true, None).unwrap();
        assert_eq!(user.role, Role::User);
        assert_eq!(assistant.role, Role::Assistant);
        assert!(user.content.contains("Question 1:"));
        assert!(user.content.contains("Question 2:"));
        assert!(assistant
            .content
            .contains("Answer 1: Both name the mailing code"));
        assert!(
            assistant.content.lines().count() >= 4,
            "two lines per answer"
        );
    }

    #[test]
    fn renders_single_line_answers_without_reasoning() {
        let (_, assistant) = render_examples(&[example()], false, None).unwrap();
        assert_eq!(assistant.content, "Answer 1: yes\n");
    }
}
