//! # dprep-prompt
//!
//! The paper's prompt-engineering framework (§3): everything between a data
//! instance and a chat request, and everything between the model's
//! completion text and a structured answer.
//!
//! ```text
//! You are a database engineer.     ─┐
//! [Zero-shot prompt]                │ system message   (template)
//! [Few-shot prompt]                ─┘ user+assistant   (fewshot)
//! [Batch prompt]                      final user turn  (builder + batch)
//! ```
//!
//! * [`task`] — the four preprocessing tasks and their data instances,
//! * [`template`] — zero-shot instruction text: task specification, answer
//!   format, chain-of-thought reasoning, the ED target-confirmation
//!   safeguard, DI data-type hints,
//! * [`fewshot`] — few-shot examples rendered as user/assistant turns,
//! * [`batch`] — batch prompting (§3.5): random batching and cluster
//!   batching over instance embeddings,
//! * [`builder`] — assembles complete [`ChatRequest`]s
//!   (contextualization §3.3 + feature selection §3.4 included),
//! * [`parse`] — extracts per-question answers back out of completions.
//!
//! [`ChatRequest`]: dprep_llm::ChatRequest

pub mod batch;
pub mod builder;
pub mod fewshot;
pub mod parse;
pub mod task;
pub mod template;

pub use batch::{make_batches, BatchStrategy};
pub use builder::{
    build_request, build_request_sections, PromptConfig, PromptContext, PromptSections,
};
pub use fewshot::FewShotExample;
#[doc(hidden)]
pub use parse::parse_response_legacy;
pub use parse::{parse_response, ExtractedAnswer};
pub use task::{AttrSpec, Task, TaskInstance};
