//! Assembles complete chat requests from the framework's components.

use std::sync::Arc;

use dprep_llm::{ChatRequest, Message};
use dprep_text::count_tokens;

use crate::fewshot::{render_examples, FewShotExample};
use crate::task::{Task, TaskInstance};
use crate::template::{system_sections, TemplateOptions};

/// Configuration of one prompt — the component switches of the paper's
/// Table 2 plus feature selection.
#[derive(Debug, Clone)]
pub struct PromptConfig {
    /// The task being performed.
    pub task: Task,
    /// Zero-shot chain-of-thought reasoning (ZS-R).
    pub reasoning: bool,
    /// The ED "confirm the target attribute" safeguard.
    pub confirm_target: bool,
    /// Optional DI data-type hint `(attribute, hint text)`.
    pub type_hint: Option<(String, String)>,
    /// Feature selection (§3.4): indices of attributes to keep in record
    /// contextualizations. `None` keeps everything.
    pub feature_indices: Option<Vec<usize>>,
}

impl PromptConfig {
    /// A default configuration for `task`: reasoning on, ED confirmation
    /// on, no hint, no feature selection — the paper's best setting.
    pub fn best(task: Task) -> Self {
        PromptConfig {
            task,
            reasoning: true,
            confirm_target: true,
            type_hint: None,
            feature_indices: None,
        }
    }

    /// Zero-shot task specification only (the Table 2 `ZS-T` row).
    pub fn zero_shot_task_only(task: Task) -> Self {
        PromptConfig {
            task,
            reasoning: false,
            confirm_target: false,
            type_hint: None,
            feature_indices: None,
        }
    }
}

/// Token counts of a built request's prompt components, for cost
/// attribution (the five tagged sections; message framing — role tags and
/// tokenization residue — is whatever the billed total leaves over).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromptSections {
    /// Persona + task specification + data-type hint.
    pub task_spec: usize,
    /// Contextualization-format / answer-numbering instructions and
    /// safeguards.
    pub answer_format: usize,
    /// The chain-of-thought answer instruction (zero when reasoning is
    /// off).
    pub cot: usize,
    /// Few-shot example questions and answers.
    pub few_shot: usize,
    /// The batched instance questions (contextualized, feature-selected).
    pub instances: usize,
}

impl PromptSections {
    /// The five counts in attribution order (task-spec, answer-format,
    /// cot, few-shot, instances) — the shape the executor reconciles
    /// against the billed total.
    pub fn as_array(&self) -> [usize; 5] {
        [
            self.task_spec,
            self.answer_format,
            self.cot,
            self.few_shot,
            self.instances,
        ]
    }
}

/// Builds the chat request for one batch of instances.
///
/// Message layout (matching §3's framework figure):
///
/// 1. system: persona + zero-shot instruction (+ safeguards/hints),
/// 2. optional user/assistant pair: few-shot questions and answers,
/// 3. user: the batch questions, numbered `Question 1..k`.
///
/// # Panics
/// Panics when `batch` is empty or an instance's task differs from
/// `config.task`.
pub fn build_request(
    config: &PromptConfig,
    examples: &[FewShotExample],
    batch: &[&TaskInstance],
) -> ChatRequest {
    build_request_sections(config, examples, batch).0
}

/// Builds the chat request together with its per-component token counts
/// ([`PromptSections`]). The request is byte-identical to
/// [`build_request`]; the counts tag each message's content with the
/// component it belongs to, so an executor can attribute every billed
/// prompt token.
///
/// # Panics
/// Panics when `batch` is empty or an instance's task differs from
/// `config.task`.
pub fn build_request_sections(
    config: &PromptConfig,
    examples: &[FewShotExample],
    batch: &[&TaskInstance],
) -> (ChatRequest, PromptSections) {
    PromptContext::new(config, examples).build(batch)
}

/// The full-text token contribution of one chat message: its role tag, the
/// `:` separator, and its content. [`ChatRequest::full_text`] renders
/// `"{tag}: {content}\n"` per message, and the tokenizer never merges runs
/// across the `:` or the newline, so per-message counts sum exactly to the
/// full-text count the serving model bills.
fn message_tokens(tag: &str, content: &str) -> usize {
    count_tokens(tag) + 1 + count_tokens(content)
}

/// Invariant prompt parts of one execution plan, rendered and tokenized
/// once.
///
/// The system message and the few-shot turns depend only on the prompt
/// configuration and the example set — never on the batch — yet a naive
/// builder re-renders and re-tokenizes them for every request. A plan
/// builds one `PromptContext` up front and stacks each batch's questions
/// under the shared (`Arc`-held) sections; the context also accumulates
/// the exact full-text token count as it goes, so the built request
/// carries [`ChatRequest::prompt_tokens_hint`] and the serving model
/// never tokenizes the prompt a second time.
#[derive(Debug, Clone)]
pub struct PromptContext {
    config: PromptConfig,
    system: Arc<str>,
    /// Section counts of the system message (task-spec, answer-format, cot).
    task_spec: usize,
    answer_format: usize,
    cot: usize,
    /// Full-text token contribution of the system message.
    system_message_tokens: usize,
    few_shot: Option<FewShotContext>,
}

/// The rendered few-shot user/assistant pair and its token counts.
#[derive(Debug, Clone)]
struct FewShotContext {
    user: Arc<str>,
    assistant: Arc<str>,
    /// The few-shot attribution section: content tokens of both turns.
    section_tokens: usize,
    /// Full-text token contribution of both messages (role tags included).
    message_tokens: usize,
}

impl PromptContext {
    /// Renders the plan-invariant sections for `config` and `examples`.
    pub fn new(config: &PromptConfig, examples: &[FewShotExample]) -> Self {
        let options = TemplateOptions {
            reasoning: config.reasoning,
            confirm_target: config.confirm_target,
            type_hint: config.type_hint.clone(),
        };
        let system = system_sections(config.task, &options);
        let system_message_tokens = message_tokens("system", &system.text);
        let few_shot = render_examples(
            examples,
            config.reasoning,
            config.feature_indices.as_deref(),
        )
        .map(|(user, assistant)| FewShotContext {
            section_tokens: count_tokens(&user.content) + count_tokens(&assistant.content),
            message_tokens: message_tokens("user", &user.content)
                + message_tokens("assistant", &assistant.content),
            user: user.content.into(),
            assistant: assistant.content.into(),
        });
        PromptContext {
            config: config.clone(),
            system: system.text.into(),
            task_spec: system.task_spec_tokens,
            answer_format: system.answer_format_tokens,
            cot: system.cot_tokens,
            system_message_tokens,
            few_shot,
        }
    }

    /// Builds the request for one batch under the shared sections. The
    /// request is byte-identical to [`build_request`] on the same inputs;
    /// only the batch body is rendered and tokenized per call.
    ///
    /// # Panics
    /// Panics when `batch` is empty or an instance's task differs from the
    /// context's configuration.
    pub fn build(&self, batch: &[&TaskInstance]) -> (ChatRequest, PromptSections) {
        assert!(!batch.is_empty(), "cannot build a prompt with no instances");
        assert!(
            batch.iter().all(|i| i.task() == self.config.task),
            "instance task does not match the prompt configuration"
        );
        let mut sections = PromptSections {
            task_spec: self.task_spec,
            answer_format: self.answer_format,
            cot: self.cot,
            ..PromptSections::default()
        };
        let mut full_text_tokens = self.system_message_tokens;
        let mut messages = vec![Message::system(self.system.to_string())];
        if let Some(fs) = &self.few_shot {
            sections.few_shot = fs.section_tokens;
            full_text_tokens += fs.message_tokens;
            messages.push(Message::user(fs.user.to_string()));
            messages.push(Message::assistant(fs.assistant.to_string()));
        }

        // The batch body is the one per-request render on the planning hot
        // path; write each question straight into the buffer instead of
        // allocating a `format!` temporary per line.
        let mut body = String::new();
        for (i, instance) in batch.iter().enumerate() {
            use std::fmt::Write;
            let _ = writeln!(
                body,
                "Question {}: {}",
                i + 1,
                instance.question_text(self.config.feature_indices.as_deref())
            );
        }
        sections.instances = count_tokens(&body);
        full_text_tokens += count_tokens("user") + 1 + sections.instances;
        messages.push(Message::user(body));

        (
            ChatRequest::new(messages).with_prompt_tokens_hint(full_text_tokens),
            sections,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::AttrSpec;
    use dprep_llm::comprehend::{comprehend, TaskKind};
    use dprep_llm::Role;
    use dprep_tabular::{Record, Schema, Value};

    fn di_instance(city_missing: bool) -> TaskInstance {
        let schema = Schema::all_text(&["name", "phone", "city"])
            .unwrap()
            .shared();
        let record = Record::new(
            schema,
            vec![
                Value::text("carey's corner"),
                Value::text("770-933-0909"),
                if city_missing {
                    Value::Missing
                } else {
                    Value::text("marietta")
                },
            ],
        )
        .unwrap();
        TaskInstance::Imputation {
            record,
            attribute: "city".into(),
        }
    }

    #[test]
    fn builds_three_part_request() {
        let config = PromptConfig::best(Task::Imputation);
        let examples = vec![FewShotExample::new(
            di_instance(false),
            "The 770 area code points to Marietta.",
            "marietta",
        )];
        let inst = di_instance(true);
        let req = build_request(&config, &examples, &[&inst]);
        assert_eq!(req.messages.len(), 4);
        assert_eq!(req.messages[0].role, Role::System);
        assert_eq!(req.messages[1].role, Role::User);
        assert_eq!(req.messages[2].role, Role::Assistant);
        assert_eq!(req.messages[3].role, Role::User);
    }

    #[test]
    fn round_trips_through_model_comprehension() {
        // The critical invariant: whatever this builder emits, the simulated
        // LLM's reader must understand.
        let config = PromptConfig::best(Task::Imputation);
        let examples = vec![FewShotExample::new(
            di_instance(false),
            "The 770 area code points to Marietta.",
            "marietta",
        )];
        let inst = di_instance(true);
        let req = build_request(&config, &examples, &[&inst, &inst]);
        let c = comprehend(&req);
        assert_eq!(c.task, Some(TaskKind::Imputation));
        assert!(c.wants_reason);
        assert_eq!(c.examples.len(), 1);
        assert_eq!(c.examples[0].answer, "marietta");
        assert_eq!(c.questions.len(), 2);
        assert_eq!(c.questions[0].target_attribute.as_deref(), Some("city"));
    }

    #[test]
    fn ed_round_trip_detects_confirmation() {
        let schema = Schema::all_text(&["age", "city"]).unwrap().shared();
        let record = Record::new(schema, vec![Value::text("250"), Value::text("atlanta")]).unwrap();
        let inst = TaskInstance::ErrorDetection {
            record,
            attribute: "age".into(),
        };
        let req = build_request(&PromptConfig::best(Task::ErrorDetection), &[], &[&inst]);
        let c = comprehend(&req);
        assert_eq!(c.task, Some(TaskKind::ErrorDetection));
        assert!(c.confirm_target);
        assert_eq!(c.questions[0].target_attribute.as_deref(), Some("age"));
    }

    #[test]
    fn sm_round_trip() {
        let inst = TaskInstance::SchemaMatching {
            a: AttrSpec::new("zip", "postal code"),
            b: AttrSpec::new("postcode", "zip code"),
        };
        let req = build_request(&PromptConfig::best(Task::SchemaMatching), &[], &[&inst]);
        let c = comprehend(&req);
        assert_eq!(c.task, Some(TaskKind::SchemaMatching));
        assert_eq!(c.questions[0].instances.len(), 2);
    }

    #[test]
    fn sections_partition_the_prompt_within_the_billed_total() {
        let config = PromptConfig::best(Task::Imputation);
        let examples = vec![FewShotExample::new(
            di_instance(false),
            "The 770 area code points to Marietta.",
            "marietta",
        )];
        let inst = di_instance(true);
        let (req, sections) = build_request_sections(&config, &examples, &[&inst, &inst]);
        assert_eq!(req, build_request(&config, &examples, &[&inst, &inst]));
        assert!(sections.task_spec > 0);
        assert!(sections.cot > 0, "reasoning is on");
        assert!(sections.few_shot > 0);
        assert!(sections.instances > 0);
        // The tagged sections never exceed what the model bills for the
        // full request text: the remainder is message framing (role tags).
        let billed = dprep_text::count_tokens(&req.full_text());
        let tagged: usize = sections.as_array().iter().sum();
        assert!(
            tagged <= billed,
            "tagged {tagged} tokens exceed billed {billed}"
        );
        // Framing is small: two tokens per message tag plus residue.
        assert!(billed - tagged <= 4 * req.messages.len());
    }

    #[test]
    fn context_build_matches_one_shot_build_and_hints_exactly() {
        let config = PromptConfig::best(Task::Imputation);
        let examples = vec![FewShotExample::new(
            di_instance(false),
            "The 770 area code points to Marietta.",
            "marietta",
        )];
        let inst = di_instance(true);
        let context = PromptContext::new(&config, &examples);
        for k in 1..=3usize {
            let batch: Vec<&TaskInstance> = std::iter::repeat_n(&inst, k).collect();
            let (req, sections) = context.build(&batch);
            let (oneshot, oneshot_sections) = build_request_sections(&config, &examples, &batch);
            assert_eq!(req, oneshot, "shared sections must not change bytes");
            assert_eq!(sections, oneshot_sections);
            // The hint is exact: the serving model trusts it in place of
            // re-tokenizing the prompt.
            assert_eq!(
                req.prompt_tokens_hint,
                Some(dprep_text::count_tokens(&req.full_text())),
                "batch size {k}"
            );
        }
        // Without few-shot examples (and without reasoning) too.
        let plain = PromptContext::new(&PromptConfig::zero_shot_task_only(Task::Imputation), &[]);
        let (req, _) = plain.build(&[&inst]);
        assert_eq!(
            req.prompt_tokens_hint,
            Some(dprep_text::count_tokens(&req.full_text()))
        );
        assert_eq!(req.messages.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no instances")]
    fn empty_batch_panics() {
        build_request(&PromptConfig::best(Task::Imputation), &[], &[]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn task_mismatch_panics() {
        let inst = di_instance(true);
        build_request(&PromptConfig::best(Task::EntityMatching), &[], &[&inst]);
    }
}
