use dprep_prompt::parse_response;

#[test]
fn garbled_contamination() {
    let text = "Answer 1: Because the titles agree.\nyes\nWell, regarding the second question, it is hard to say definitively without more context. One might lean toward yes but several caveats apply, and overall I would want to verify further.\nAnswer 3: Because.\nno\n";
    let answers = parse_response(text, true);
    println!("answer1 value = {:?}", answers.get(&1).map(|a| a.value.clone()));
    println!("answer1 yes/no = {:?}", answers.get(&1).and_then(|a| a.as_yes_no()));
    println!("answer3 = {:?}", answers.get(&3).map(|a| a.value.clone()));
}
