//! Property tests for the prompt layer: the response parser is total
//! (never panics), and rendering→parsing is a faithful round trip.

use proptest::prelude::*;

use dprep_prompt::parse_response;

fn answer_value() -> impl Strategy<Value = String> {
    // Single-line, non-blank values without the "Answer " marker inside
    // (an all-whitespace answer is legitimately unparseable).
    proptest::string::string_regex("[a-z0-9.,%$-][a-z0-9 .,%$-]{0,24}").expect("valid regex")
}

proptest! {
    #[test]
    fn parser_is_total(text in proptest::string::string_regex("(.|\n){0,300}").unwrap(),
                       expect_reason in proptest::bool::ANY) {
        let _ = parse_response(&text, expect_reason);
    }

    #[test]
    fn rendered_answers_round_trip(values in proptest::collection::vec(answer_value(), 1..8),
                                   with_reason in proptest::bool::ANY) {
        let mut text = String::new();
        for (i, v) in values.iter().enumerate() {
            if with_reason {
                text.push_str(&format!("Answer {}: Some reasoning sentence here.\n{v}\n", i + 1));
            } else {
                text.push_str(&format!("Answer {}: {v}\n", i + 1));
            }
        }
        let parsed = parse_response(&text, with_reason);
        prop_assert_eq!(parsed.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            let got = &parsed[&(i + 1)];
            prop_assert_eq!(got.value.trim(), v.trim());
            if with_reason {
                prop_assert_eq!(got.reason.as_deref(), Some("Some reasoning sentence here."));
            }
        }
    }

    #[test]
    fn parser_answers_subset_of_mentioned_numbers(
        numbers in proptest::collection::vec(1usize..20, 0..6),
    ) {
        let mut text = String::new();
        for n in &numbers {
            text.push_str(&format!("Answer {n}: yes\n"));
        }
        let parsed = parse_response(&text, false);
        for key in parsed.keys() {
            prop_assert!(numbers.contains(key));
        }
    }
}
