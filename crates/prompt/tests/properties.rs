//! Property-style tests for the prompt layer: the response parser is total
//! (never panics), and rendering→parsing is a faithful round trip.
//!
//! Cases are generated with the in-tree [`dprep_rng`] generator from a
//! fixed seed, so every run exercises the same inputs.

use dprep_prompt::parse_response;
use dprep_rng::Rng;

const CASES: usize = 256;

/// Single-line, non-blank values without the "Answer " marker inside
/// (an all-whitespace answer is legitimately unparseable). Mirrors the
/// old proptest regex `[a-z0-9.,%$-][a-z0-9 .,%$-]{0,24}`.
fn answer_value(rng: &mut Rng) -> String {
    let first: Vec<u8> = (b'a'..=b'z').chain(b'0'..=b'9').chain(*b".,%$-").collect();
    let rest: Vec<u8> = first.iter().copied().chain([b' ']).collect();
    let mut s = rng.ascii_string(&first, 1);
    let len = rng.range_incl(0usize, 24);
    s.push_str(&rng.ascii_string(&rest, len));
    s
}

#[test]
fn parser_is_total() {
    let mut rng = Rng::seed_from_u64(0x9a05_0001);
    let alphabet: Vec<u8> = (b' '..=b'~').chain([b'\n']).collect();
    for _ in 0..CASES {
        let len = rng.range_incl(0usize, 300);
        let text = rng.ascii_string(&alphabet, len);
        let expect_reason = rng.bool(0.5);
        let _ = parse_response(&text, expect_reason);
    }
}

#[test]
fn rendered_answers_round_trip() {
    let mut rng = Rng::seed_from_u64(0x9a05_0002);
    for _ in 0..CASES {
        let values: Vec<String> = (0..rng.range_incl(1usize, 7))
            .map(|_| answer_value(&mut rng))
            .collect();
        let with_reason = rng.bool(0.5);
        let mut text = String::new();
        for (i, v) in values.iter().enumerate() {
            if with_reason {
                text.push_str(&format!(
                    "Answer {}: Some reasoning sentence here.\n{v}\n",
                    i + 1
                ));
            } else {
                text.push_str(&format!("Answer {}: {v}\n", i + 1));
            }
        }
        let parsed = parse_response(&text, with_reason);
        assert_eq!(parsed.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            let got = &parsed[&(i + 1)];
            assert_eq!(got.value.trim(), v.trim());
            if with_reason {
                assert_eq!(got.reason.as_deref(), Some("Some reasoning sentence here."));
            }
        }
    }
}

#[test]
fn parser_answers_subset_of_mentioned_numbers() {
    let mut rng = Rng::seed_from_u64(0x9a05_0003);
    for _ in 0..CASES {
        let numbers: Vec<usize> = (0..rng.range(0usize, 6))
            .map(|_| rng.range(1usize, 20))
            .collect();
        let mut text = String::new();
        for n in &numbers {
            text.push_str(&format!("Answer {n}: yes\n"));
        }
        let parsed = parse_response(&text, false);
        for key in parsed.keys() {
            assert!(numbers.contains(key));
        }
    }
}
