//! Seeded equivalence suite: the index-based answer scanner must match the
//! legacy `parse_response` implementation byte-for-byte on every completion.
//!
//! The legacy parser (retained as `parse_response_legacy`) is the oracle; the
//! fuzzer assembles completions from the fragment classes the serving layer
//! actually sees — well-formed `Answer N:` segments, duplicate and
//! out-of-order numbers, number 0 (reserved/skipped), empty segments,
//! markers without colons, markers embedded mid-line, rambling filler, CRLF
//! endings, and whitespace-only lines — plus pure random ASCII noise.

use dprep_prompt::{parse_response, parse_response_legacy};
use dprep_rng::Rng;

/// Builds one fuzzed completion from `rng`: a random mix of fragments that
/// cover every branch of the segment grammar.
fn fuzz_completion(rng: &mut Rng) -> (String, bool) {
    let expect_reason = rng.bool(0.5);
    let fragments = rng.range_usize(0, 12);
    let mut text = String::new();
    for _ in 0..fragments {
        match rng.range_usize(0, 10) {
            // Well-formed segment, 1-3 content lines.
            0..=3 => {
                let number = rng.range_usize(0, 7); // 0 is the skipped sentinel
                text.push_str(&format!("Answer {number}:"));
                let lines = rng.range_usize(0, 4);
                for _ in 0..lines {
                    let word_count = rng.range_usize(1, 4);
                    for _ in 0..word_count {
                        let len = rng.range_usize(1, 8);
                        text.push(' ');
                        text.push_str(&rng.ascii_string(b"abcdeyn ", len));
                    }
                    text.push(if rng.bool(0.2) { '\r' } else { ' ' });
                    text.push('\n');
                }
            }
            // Marker missing its colon (invalid, scanner must skip).
            4 => text.push_str("Answer 3 maybe\n"),
            // Marker with no digits (invalid).
            5 => text.push_str("Answer : unclear\n"),
            // Marker embedded mid-line inside a previous segment.
            6 => text.push_str("see Answer 2: embedded verdict\n"),
            // Rambling filler with no marker.
            7 => text.push_str("Well, regarding the question, hard to say.\n"),
            // Whitespace-only lines and blank runs.
            8 => text.push_str(" \t \n\n  \r\n"),
            // Random ASCII noise, may contain partial markers.
            _ => {
                let len = rng.range_usize(0, 24);
                text.push_str(&rng.ascii_string(b"Answer 123:\n ", len));
            }
        }
    }
    (text, expect_reason)
}

#[test]
fn scanner_matches_legacy_on_fuzzed_completions() {
    let mut rng = Rng::seed_from_u64(0x5eed_9a75);
    for case in 0..4000 {
        let (text, expect_reason) = fuzz_completion(&mut rng);
        let new = parse_response(&text, expect_reason);
        let old = parse_response_legacy(&text, expect_reason);
        assert_eq!(
            new, old,
            "case {case}: scanner diverged from legacy on {text:?} (expect_reason={expect_reason})"
        );
    }
}

#[test]
fn scanner_matches_legacy_on_handwritten_edges() {
    let cases: &[&str] = &[
        "",
        "Answer 1:",
        "Answer 1: \n",
        "Answer 0: skipped\nAnswer 1: kept\n",
        "Answer 1: yes\nAnswer 1: no\n",
        "Answer 2: no\nAnswer 1: yes\n",
        "Answer 1: reason line\nvalue\n",
        "Answer 1: a\nb\nc\n",
        "Answer 1: trailing marker Answer ",
        "Answer 1: see Answer 2: nested\n",
        "Answer 12: multi digit\n",
        "Answer 99999999999999999999999999: overflow digits\n",
        "Answer 1:no leading space\n",
        "Answer 1: crlf line\r\nvalue\r\n",
        "prefix Answer 1: indented\n  padded value  \n",
        "Answer 1: only\n\n\n  \nAnswer 2: second\n",
        "AnswerAnswer 1: stutter\n",
        "Answer 1: Answer 1: dup inline\n",
    ];
    for text in cases {
        for expect_reason in [false, true] {
            assert_eq!(
                parse_response(text, expect_reason),
                parse_response_legacy(text, expect_reason),
                "diverged on {text:?} (expect_reason={expect_reason})"
            );
        }
    }
}

/// The duplicate-number rule is first-wins in both implementations, even when
/// the first occurrence's segment is empty (both then skip it, letting a
/// later duplicate land — replicated behavior, pinned here on purpose).
#[test]
fn empty_first_duplicate_lets_second_land_in_both() {
    let text = "Answer 1:\nAnswer 1: late\n";
    let new = parse_response(text, false);
    let old = parse_response_legacy(text, false);
    assert_eq!(new, old);
    assert_eq!(new[&1].value, "late");
}
