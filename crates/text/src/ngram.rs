//! Character and word n-grams.

/// Character n-grams of `text` (over the raw character sequence, including
/// spaces). Returns an empty vector when the text is shorter than `n`.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> = text.chars().collect();
    if chars.len() < n {
        return Vec::new();
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Word n-grams over whitespace-separated words.
pub fn word_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.len() < n {
        return Vec::new();
    }
    (0..=words.len() - n)
        .map(|i| words[i..i + n].join(" "))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_bigrams() {
        assert_eq!(char_ngrams("abc", 2), vec!["ab", "bc"]);
    }

    #[test]
    fn char_ngrams_short_text() {
        assert!(char_ngrams("ab", 3).is_empty());
        assert_eq!(char_ngrams("ab", 2), vec!["ab"]);
    }

    #[test]
    fn char_ngrams_unicode() {
        assert_eq!(char_ngrams("東京タ", 2), vec!["東京", "京タ"]);
    }

    #[test]
    fn word_bigrams() {
        assert_eq!(
            word_ngrams("new york city", 2),
            vec!["new york", "york city"]
        );
        assert!(word_ngrams("single", 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_panics() {
        char_ngrams("abc", 0);
    }
}
