//! # dprep-text
//!
//! Text-processing substrate: a deterministic subword tokenizer used for LLM
//! token accounting, normalization helpers, character/word n-grams, and the
//! string-similarity measures that power the simulated LLM's matching
//! heuristics and the classical baselines (edit distance, Jaro-Winkler,
//! Jaccard, Dice, TF cosine).

pub mod ngram;
pub mod normalize;
pub mod similarity;
pub mod tokenize;

pub use ngram::{char_ngrams, word_ngrams};
pub use normalize::{collapse_whitespace, normalize};
pub use similarity::{
    cosine_tf, dice_char_ngrams, jaccard_tokens, jaro, jaro_winkler, levenshtein,
    normalized_levenshtein, overlap_tokens,
};
pub use tokenize::{count_tokens, tokenize, Token};
