//! String-similarity measures.
//!
//! These power (a) the simulated LLM's internal matching heuristics — a real
//! LLM's latent sense of "these two product titles look like the same
//! thing" is modeled as a weighted combination of these measures — and
//! (b) the classical baselines (Magellan-style feature vectors, SMAT-style
//! similarity matrices).

use std::collections::{HashMap, HashSet};

use crate::ngram::char_ngrams;
use crate::normalize::normalized_words;

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let next = (row[j + 1] + 1).min(row[j] + 1).min(prev_diag + cost);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Levenshtein similarity normalized to `[0, 1]` (1 = identical).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = vec![false; a.len()];
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                a_matched[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions between the matched subsequences.
    let a_seq: Vec<char> = a
        .iter()
        .zip(&a_matched)
        .filter_map(|(c, &m)| m.then_some(*c))
        .collect();
    let b_seq: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter_map(|(c, &m)| m.then_some(*c))
        .collect();
    let transpositions = a_seq.iter().zip(&b_seq).filter(|(x, y)| x != y).count() / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity (prefix bonus up to 4 chars, scaling 0.1).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Jaccard similarity over normalized word sets.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = normalized_words(a).into_iter().collect();
    let sb: HashSet<String> = normalized_words(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Overlap coefficient over normalized word sets:
/// `|A ∩ B| / min(|A|, |B|)`. More forgiving than Jaccard when one string is
/// a short form of the other (e.g. abbreviated product titles).
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = normalized_words(a).into_iter().collect();
    let sb: HashSet<String> = normalized_words(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

/// Dice coefficient over character n-grams (multiset-free, set semantics).
pub fn dice_char_ngrams(a: &str, b: &str, n: usize) -> f64 {
    let sa: HashSet<String> = char_ngrams(a, n).into_iter().collect();
    let sb: HashSet<String> = char_ngrams(b, n).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

/// Cosine similarity over normalized-word term frequencies.
pub fn cosine_tf(a: &str, b: &str) -> f64 {
    let mut ta: HashMap<String, f64> = HashMap::new();
    for w in normalized_words(a) {
        *ta.entry(w).or_insert(0.0) += 1.0;
    }
    let mut tb: HashMap<String, f64> = HashMap::new();
    for w in normalized_words(b) {
        *tb.entry(w).or_insert(0.0) += 1.0;
    }
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dot: f64 = ta
        .iter()
        .filter_map(|(w, x)| tb.get(w).map(|y| x * y))
        .sum();
    let na: f64 = ta.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = tb.values().map(|x| x * x).sum::<f64>().sqrt();
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let s = normalized_levenshtein("hospital", "hospitol");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaro_known_values() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert!((jaro("martha", "marhta") - 0.944_444).abs() < 1e-3);
        assert!((jaro("dixon", "dicksonx") - 0.766_666).abs() < 1e-3);
    }

    #[test]
    fn jaro_winkler_prefix_bonus() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.961_111).abs() < 1e-3);
        assert!(jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes"));
    }

    #[test]
    fn jaccard_and_overlap() {
        assert_eq!(jaccard_tokens("new york", "new york"), 1.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert!((jaccard_tokens("new york city", "new york") - 2.0 / 3.0).abs() < 1e-12);
        // Overlap forgives the missing word entirely.
        assert_eq!(overlap_tokens("new york city", "new york"), 1.0);
        assert_eq!(overlap_tokens("abc", ""), 0.0);
    }

    #[test]
    fn dice_ngrams() {
        assert_eq!(dice_char_ngrams("night", "night", 2), 1.0);
        let d = dice_char_ngrams("night", "nacht", 2);
        assert!(d > 0.0 && d < 1.0);
        assert_eq!(dice_char_ngrams("", "", 2), 1.0);
        assert_eq!(dice_char_ngrams("ab", "", 2), 0.0);
    }

    #[test]
    fn cosine_tf_behaviour() {
        assert!((cosine_tf("a b c", "a b c") - 1.0).abs() < 1e-12);
        assert_eq!(cosine_tf("a b", "x y"), 0.0);
        let c = cosine_tf("apple iphone 12", "apple iphone 13");
        assert!(c > 0.5 && c < 1.0);
    }

    #[test]
    fn similarity_measures_are_symmetric() {
        let pairs = [("hello world", "world hello"), ("abc def", "abd cef")];
        for (a, b) in pairs {
            assert!((jaccard_tokens(a, b) - jaccard_tokens(b, a)).abs() < 1e-12);
            assert!((cosine_tf(a, b) - cosine_tf(b, a)).abs() < 1e-12);
            assert!((dice_char_ngrams(a, b, 2) - dice_char_ngrams(b, a, 2)).abs() < 1e-12);
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }
}
