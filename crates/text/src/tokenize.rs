//! A deterministic subword tokenizer approximating GPT-style BPE.
//!
//! The workspace needs token counts for three things the paper measures:
//! prompt/response usage, dollar cost (price × tokens), and virtual latency
//! (per-token generation time). A faithful BPE vocabulary is unnecessary —
//! what matters is that token counts scale like real BPE counts (≈ 4
//! characters per token on English text, punctuation as separate tokens) and
//! are stable across runs. This tokenizer:
//!
//! 1. splits text into alphanumeric runs and punctuation characters,
//! 2. keeps short alphanumeric runs (≤ `MAX_PIECE_CHARS` chars) as single
//!    tokens,
//! 3. splits longer runs into `MAX_PIECE_CHARS`-char pieces,
//! 4. emits every punctuation character as its own token; whitespace only
//!    separates.

/// Maximum characters per subword piece (mirrors BPE's ≈4 chars/token).
const MAX_PIECE_CHARS: usize = 4;

/// One token: its text and byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's text.
    pub text: String,
    /// Byte offset of the token's first character in the source string.
    pub offset: usize,
}

/// Tokenizes `text` into subword tokens.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut run_start: Option<usize> = None;

    let flush_run = |tokens: &mut Vec<Token>, text: &str, start: usize, end: usize| {
        let run = &text[start..end];
        let chars: Vec<(usize, char)> = run.char_indices().collect();
        let mut i = 0;
        while i < chars.len() {
            let piece_end = (i + MAX_PIECE_CHARS).min(chars.len());
            let byte_start = chars[i].0;
            let byte_end = if piece_end == chars.len() {
                run.len()
            } else {
                chars[piece_end].0
            };
            tokens.push(Token {
                text: run[byte_start..byte_end].to_string(),
                offset: start + byte_start,
            });
            i = piece_end;
        }
    };

    for (i, c) in text.char_indices() {
        if c.is_alphanumeric() {
            if run_start.is_none() {
                run_start = Some(i);
            }
        } else {
            if let Some(start) = run_start.take() {
                flush_run(&mut tokens, text, start, i);
            }
            if !c.is_whitespace() {
                tokens.push(Token {
                    text: c.to_string(),
                    offset: i,
                });
            }
        }
    }
    if let Some(start) = run_start {
        flush_run(&mut tokens, text, start, text.len());
    }
    tokens
}

/// Number of tokens in `text` (see [`tokenize`]) without allocating tokens.
pub fn count_tokens(text: &str) -> usize {
    let mut count = 0usize;
    let mut run_len = 0usize;
    for c in text.chars() {
        if c.is_alphanumeric() {
            run_len += 1;
        } else {
            if run_len > 0 {
                count += run_len.div_ceil(MAX_PIECE_CHARS);
                run_len = 0;
            }
            if !c.is_whitespace() {
                count += 1;
            }
        }
    }
    if run_len > 0 {
        count += run_len.div_ceil(MAX_PIECE_CHARS);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_has_no_tokens() {
        assert!(tokenize("").is_empty());
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t"), 0);
    }

    #[test]
    fn short_words_are_single_tokens() {
        let toks = tokenize("the cat sat");
        assert_eq!(
            toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["the", "cat", "sat"]
        );
    }

    #[test]
    fn long_words_split_into_pieces() {
        let toks = tokenize("preprocessing");
        // 13 chars -> ceil(13/4) = 4 pieces.
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[0].text, "prep");
        assert_eq!(toks[3].text, "g");
        let rejoined: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rejoined, "preprocessing");
    }

    #[test]
    fn punctuation_is_tokenized_separately() {
        let toks = tokenize("a,b.c");
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[1].text, ",");
        assert_eq!(toks[3].text, ".");
    }

    #[test]
    fn count_matches_tokenize() {
        for text in [
            "",
            "hello world",
            "a,b,c",
            "[name: \"carey's corner\", phone: \"770-933-0909\"]",
            "antidisestablishmentarianism",
            "multi\nline\ttext with  spaces",
        ] {
            assert_eq!(count_tokens(text), tokenize(text).len(), "for {text:?}");
        }
    }

    #[test]
    fn offsets_point_at_source() {
        let src = "ab cd";
        let toks = tokenize(src);
        assert_eq!(&src[toks[1].offset..toks[1].offset + 2], "cd");
    }

    #[test]
    fn unicode_is_handled() {
        let toks = tokenize("café 東京タワー");
        let rejoined: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rejoined, "café東京タワー");
        assert_eq!(count_tokens("café 東京タワー"), toks.len());
    }

    #[test]
    fn token_density_approximates_bpe() {
        // English prose should land around 0.2–0.5 tokens per character,
        // similar to real BPE tokenizers.
        let prose = "Large language models are capable of understanding and \
                     generating human-like text across a diverse range of topics.";
        let ratio = count_tokens(prose) as f64 / prose.len() as f64;
        assert!(ratio > 0.15 && ratio < 0.55, "ratio = {ratio}");
    }
}
