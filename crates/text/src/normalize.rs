//! Text normalization used before similarity comparisons.

/// Lowercases, replaces punctuation with spaces, and collapses whitespace.
///
/// This is the canonical form the simulated LLM and the baselines compare
/// strings in — e.g. `"St. John's"` and `"st johns"` normalize identically
/// apart from the possessive.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        let mapped = if c.is_alphanumeric() {
            Some(c.to_lowercase().next().unwrap_or(c))
        } else if c.is_whitespace() || c.is_ascii_punctuation() {
            None
        } else {
            Some(c)
        };
        match mapped {
            Some(c) => {
                out.push(c);
                last_space = false;
            }
            None => {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Collapses runs of whitespace into single spaces and trims the ends.
pub fn collapse_whitespace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Normalized word list of a string (see [`normalize`]).
pub fn normalized_words(text: &str) -> Vec<String> {
    normalize(text)
        .split(' ')
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(normalize("St. John's Pub!"), "st john s pub");
    }

    #[test]
    fn collapses_internal_whitespace() {
        assert_eq!(normalize("a   b\t\nc"), "a b c");
        assert_eq!(collapse_whitespace("  a   b  "), "a b");
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("!!! ..."), "");
        assert_eq!(collapse_whitespace("   "), "");
    }

    #[test]
    fn unicode_preserved() {
        assert_eq!(normalize("Café TOKYO"), "café tokyo");
    }

    #[test]
    fn word_split() {
        assert_eq!(
            normalized_words("Bob's Diner, NYC"),
            vec!["bob", "s", "diner", "nyc"]
        );
        assert!(normalized_words("...").is_empty());
    }
}
