//! Property-style tests for the text substrate: metric bounds, symmetry,
//! and tokenizer consistency on arbitrary input.
//!
//! Cases are generated with the in-tree [`dprep_rng`] generator from a
//! fixed seed, so every run exercises the same inputs.

use dprep_rng::Rng;
use dprep_text::{
    count_tokens, dice_char_ngrams, jaccard_tokens, jaro, jaro_winkler, levenshtein, normalize,
    normalized_levenshtein, tokenize,
};

const CASES: usize = 256;

/// Printable ASCII plus two multi-byte characters (é, 东) — the same
/// alphabet the proptest regex `[ -~é东]{0,40}` used to draw from.
fn any_text(rng: &mut Rng) -> String {
    let mut alphabet: Vec<char> = (' '..='~').collect();
    alphabet.push('\u{e9}');
    alphabet.push('\u{4e1c}');
    let len = rng.range_incl(0usize, 40);
    (0..len)
        .map(|_| *rng.choose(&alphabet).expect("nonempty"))
        .collect()
}

#[test]
fn count_tokens_matches_tokenize() {
    let mut rng = Rng::seed_from_u64(0x7e17_0001);
    for _ in 0..CASES {
        let text = any_text(&mut rng);
        assert_eq!(count_tokens(&text), tokenize(&text).len(), "{text:?}");
    }
}

#[test]
fn tokens_rejoin_to_non_whitespace_content() {
    let mut rng = Rng::seed_from_u64(0x7e17_0002);
    for _ in 0..CASES {
        let text = any_text(&mut rng);
        let rejoined: String = tokenize(&text).iter().map(|t| t.text.as_str()).collect();
        let expected: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(rejoined, expected, "{text:?}");
    }
}

#[test]
fn levenshtein_is_a_metric() {
    let mut rng = Rng::seed_from_u64(0x7e17_0003);
    for _ in 0..CASES {
        let a = any_text(&mut rng);
        let b = any_text(&mut rng);
        let c = any_text(&mut rng);
        // Symmetry.
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Identity.
        assert_eq!(levenshtein(&a, &a), 0);
        // Triangle inequality.
        assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }
}

#[test]
fn similarity_scores_are_bounded() {
    let mut rng = Rng::seed_from_u64(0x7e17_0004);
    for _ in 0..CASES {
        let a = any_text(&mut rng);
        let b = any_text(&mut rng);
        for s in [
            normalized_levenshtein(&a, &b),
            jaro(&a, &b),
            jaro_winkler(&a, &b),
            jaccard_tokens(&a, &b),
            dice_char_ngrams(&a, &b, 2),
        ] {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&s),
                "score {s} out of bounds for {a:?} / {b:?}"
            );
        }
    }
}

#[test]
fn self_similarity_is_one() {
    let mut rng = Rng::seed_from_u64(0x7e17_0005);
    for _ in 0..CASES {
        let a = any_text(&mut rng);
        assert!((jaro(&a, &a) - 1.0).abs() < 1e-9);
        assert!((normalized_levenshtein(&a, &a) - 1.0).abs() < 1e-9);
        assert!((jaccard_tokens(&a, &a) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn normalize_is_idempotent() {
    let mut rng = Rng::seed_from_u64(0x7e17_0006);
    for _ in 0..CASES {
        let a = any_text(&mut rng);
        let once = normalize(&a);
        assert_eq!(normalize(&once), once.clone(), "{a:?}");
    }
}

#[test]
fn normalize_output_is_clean() {
    let mut rng = Rng::seed_from_u64(0x7e17_0007);
    for _ in 0..CASES {
        let a = any_text(&mut rng);
        let n = normalize(&a);
        assert!(!n.starts_with(' ') && !n.ends_with(' '));
        assert!(!n.contains("  "), "double space in {n:?}");
        assert!(n.chars().all(|c| !c.is_ascii_punctuation() || c == ' '));
        assert!(n.chars().all(|c| !c.is_uppercase()));
    }
}
