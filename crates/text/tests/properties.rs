//! Property tests for the text substrate: metric bounds, symmetry, and
//! tokenizer consistency on arbitrary input.

use proptest::prelude::*;

use dprep_text::{
    count_tokens, dice_char_ngrams, jaccard_tokens, jaro, jaro_winkler, levenshtein, normalize,
    normalized_levenshtein, tokenize,
};

fn any_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\u{e9}\u{4e1c}]{0,40}").expect("valid regex")
}

proptest! {
    #[test]
    fn count_tokens_matches_tokenize(text in any_text()) {
        prop_assert_eq!(count_tokens(&text), tokenize(&text).len());
    }

    #[test]
    fn tokens_rejoin_to_non_whitespace_content(text in any_text()) {
        let rejoined: String = tokenize(&text).iter().map(|t| t.text.as_str()).collect();
        let expected: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(rejoined, expected);
    }

    #[test]
    fn levenshtein_is_a_metric(a in any_text(), b in any_text(), c in any_text()) {
        // Symmetry.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Identity.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn similarity_scores_are_bounded(a in any_text(), b in any_text()) {
        for s in [
            normalized_levenshtein(&a, &b),
            jaro(&a, &b),
            jaro_winkler(&a, &b),
            jaccard_tokens(&a, &b),
            dice_char_ngrams(&a, &b, 2),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "score {s} out of bounds");
        }
    }

    #[test]
    fn self_similarity_is_one(a in any_text()) {
        prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((normalized_levenshtein(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((jaccard_tokens(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_is_idempotent(a in any_text()) {
        let once = normalize(&a);
        prop_assert_eq!(normalize(&once), once);
    }

    #[test]
    fn normalize_output_is_clean(a in any_text()) {
        let n = normalize(&a);
        prop_assert!(!n.starts_with(' ') && !n.ends_with(' '));
        prop_assert!(!n.contains("  "), "double space in {n:?}");
        prop_assert!(n.chars().all(|c| !c.is_ascii_punctuation() || c == ' '));
        prop_assert!(n.chars().all(|c| !c.is_uppercase()));
    }
}
