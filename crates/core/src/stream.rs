//! The streaming planner: bounded-memory plan shards for million-row runs.
//!
//! [`crate::exec::ExecutionPlan`] materializes every request, section array,
//! and fingerprint before the first dispatch — planner memory grows linearly
//! with the corpus. [`PlanStream`] yields the *same* plan in fixed-size
//! shards of batches instead, so the executor holds at most one shard of
//! rendered requests (plus the responses still referenced by a later batch)
//! at a time.
//!
//! ## Two passes
//!
//! The stream is built in a cheap **survey pass** and consumed in a
//! **render pass**:
//!
//! 1. **Survey** ([`PlanStream::new`]): walk every batch in plan order,
//!    render its request, fingerprint it for dedup, then *drop the request
//!    strings*. What survives is O(batches) indices and O(unique) `u64`s:
//!    the batch→unique-request map, the unique fingerprint list (hence the
//!    global plan fingerprint, known **before** any dispatch — the journal
//!    header and resume check are byte-identical to the materialized path),
//!    per-unique batch/instance totals, and each unique request's last
//!    referencing batch (the executor's response-retention horizon).
//! 2. **Render** ([`PlanStream::next_shard`]): re-render only the requests
//!    *first seen* in the next `shard_size` batches and hand them to the
//!    executor as a [`PlanShard`]. A `debug_assert` checks each re-render
//!    against the surveyed fingerprint.
//!
//! Deduplication order, fingerprints, sections, and batch membership are
//! bit-identical to `ExecutionPlan::build` because both walk the same
//! `make_batches` output in the same order with the same dedup key. The
//! price of bounded memory is one extra render per *unique* request (once
//! surveyed, once sharded); planning is a small fraction of run wall time,
//! and the rendering itself reuses one scratch buffer of instance refs per
//! stream.

use std::collections::HashMap;

use dprep_llm::{request_fingerprint, ChatModel, ChatRequest};
use dprep_prompt::{make_batches, FewShotExample, PromptConfig, PromptContext, TaskInstance};

use crate::config::PipelineConfig;
use crate::exec::{effective_strategy, fold_plan_fingerprint, PlannedBatch};

/// One slice of a streamed plan: `shard_size` consecutive batches plus the
/// unique requests that first occur in them. Request indices in
/// [`batches`](Self::batches) are **global** (into the whole plan's unique
/// request sequence); requests already seen in an earlier shard are not
/// re-rendered — the executor still holds their responses.
#[derive(Debug)]
pub struct PlanShard {
    /// Global index of the first batch in this shard.
    pub first_batch: usize,
    /// The shard's batches, in plan order; `request_index` is global.
    pub batches: Vec<PlannedBatch>,
    /// Global index of the first request in `requests`.
    pub first_request: usize,
    /// Unique requests first seen in this shard (global indices
    /// `first_request..first_request + requests.len()`).
    pub requests: Vec<ChatRequest>,
    /// Prompt-component token counts, aligned with `requests`.
    pub sections: Vec<[usize; 5]>,
    /// Request fingerprints, aligned with `requests`.
    pub fingerprints: Vec<u64>,
}

/// A plan yielded incrementally as fixed-size shards (see the module docs).
pub struct PlanStream<'a> {
    shard_size: usize,
    /// Instance-index batches from `make_batches`; each inner vec is moved
    /// into its shard when yielded.
    batches: Vec<Vec<usize>>,
    /// Per batch: the global unique-request index serving it.
    batch_request: Vec<usize>,
    /// Per unique request: its dedup fingerprint, in first-occurrence order.
    fingerprints: Vec<u64>,
    /// Per unique request: the last batch referencing it — the executor
    /// drops a response once the plan cursor passes this batch.
    last_batch_of: Vec<usize>,
    /// Per unique request: how many batches it serves.
    batches_per: Vec<usize>,
    /// Per unique request: how many instances those batches cover.
    instances_per: Vec<usize>,
    /// Next batch to yield.
    cursor: usize,
    /// Next unique request to render (first-occurrence order).
    next_request: usize,
    n_instances: usize,
    prompt_config: PromptConfig,
    context: PromptContext,
    instances: &'a [TaskInstance],
    temperature: Option<f64>,
    /// Wall-clock seconds deciding batch membership and dedup, aggregated
    /// across the survey pass and every shard yielded so far.
    plan_wall_secs: f64,
    /// Wall-clock seconds rendering prompts, aggregated the same way.
    prompt_build_wall_secs: f64,
    /// Scratch buffer of instance refs, reused for every batch render.
    scratch_refs: Vec<&'a TaskInstance>,
}

impl<'a> PlanStream<'a> {
    /// Surveys the whole plan (batching, dedup, fingerprints) without
    /// retaining any rendered request, ready to yield shards of
    /// `shard_size` batches. `shard_size` is clamped to at least 1.
    pub fn new<M: ChatModel + ?Sized>(
        model: &M,
        config: &PipelineConfig,
        instances: &'a [TaskInstance],
        examples: &[FewShotExample],
        shard_size: usize,
    ) -> PlanStream<'a> {
        let shots: &[FewShotExample] = if config.components.few_shot {
            examples
        } else {
            &[]
        };
        let prompt_config = config.prompt_config();
        let strategy = effective_strategy(model, config, instances, shots);

        let plan_started = std::time::Instant::now();
        let context_started = std::time::Instant::now();
        let context = PromptContext::new(&prompt_config, shots);
        let mut prompt_build_wall_secs = context_started.elapsed().as_secs_f64();

        let batches = make_batches(instances, &strategy, config.seed);
        let mut batch_request = Vec::with_capacity(batches.len());
        let mut fingerprints: Vec<u64> = Vec::new();
        let mut last_batch_of: Vec<usize> = Vec::new();
        let mut batches_per: Vec<usize> = Vec::new();
        let mut instances_per: Vec<usize> = Vec::new();
        let mut seen: HashMap<u64, usize> = HashMap::new();
        let mut scratch_refs: Vec<&'a TaskInstance> = Vec::new();
        for (batch_idx, batch) in batches.iter().enumerate() {
            scratch_refs.clear();
            scratch_refs.extend(batch.iter().map(|&i| &instances[i]));
            let build_started = std::time::Instant::now();
            let (mut request, _sections) = context.build(&scratch_refs);
            prompt_build_wall_secs += build_started.elapsed().as_secs_f64();
            if let Some(t) = config.temperature {
                request = request.with_temperature(t);
            }
            // Same dedup key as the materialized planner (and the cache
            // layer): everything that determines a deterministic model's
            // response. The rendered request dies here — only the key and
            // the bookkeeping survive the survey.
            let key = request_fingerprint(model, &request);
            let request_index = *seen.entry(key).or_insert_with(|| {
                fingerprints.push(key);
                last_batch_of.push(batch_idx);
                batches_per.push(0);
                instances_per.push(0);
                fingerprints.len() - 1
            });
            last_batch_of[request_index] = batch_idx;
            batches_per[request_index] += 1;
            instances_per[request_index] += batch.len();
            batch_request.push(request_index);
        }

        PlanStream {
            shard_size: shard_size.max(1),
            batches,
            batch_request,
            fingerprints,
            last_batch_of,
            batches_per,
            instances_per,
            cursor: 0,
            next_request: 0,
            n_instances: instances.len(),
            prompt_config,
            context,
            instances,
            temperature: config.temperature,
            plan_wall_secs: (plan_started.elapsed().as_secs_f64() - prompt_build_wall_secs)
                .max(0.0),
            prompt_build_wall_secs,
            scratch_refs,
        }
    }

    /// Renders and yields the next shard, or `None` when the plan is
    /// exhausted. Timing accrues into
    /// [`plan_wall_secs`](Self::plan_wall_secs) /
    /// [`prompt_build_wall_secs`](Self::prompt_build_wall_secs) so the
    /// totals aggregate across every shard instead of reflecting only the
    /// last one.
    pub fn next_shard<M: ChatModel + ?Sized>(&mut self, model: &M) -> Option<PlanShard> {
        if self.cursor >= self.batches.len() {
            return None;
        }
        let shard_started = std::time::Instant::now();
        let first_batch = self.cursor;
        let end = self.batches.len().min(self.cursor + self.shard_size);
        let first_request = self.next_request;
        let mut shard_batches = Vec::with_capacity(end - first_batch);
        let mut requests: Vec<ChatRequest> = Vec::new();
        let mut sections: Vec<[usize; 5]> = Vec::new();
        let mut fingerprints: Vec<u64> = Vec::new();
        let mut render_secs = 0.0;
        for batch_idx in first_batch..end {
            let request_index = self.batch_request[batch_idx];
            let instance_indices = std::mem::take(&mut self.batches[batch_idx]);
            if request_index >= self.next_request {
                // First occurrence of this unique request: uniques are
                // numbered in first-occurrence order, so walking batches in
                // order reaches them contiguously.
                debug_assert_eq!(
                    request_index, self.next_request,
                    "unique order is contiguous"
                );
                self.scratch_refs.clear();
                self.scratch_refs
                    .extend(instance_indices.iter().map(|&i| &self.instances[i]));
                let build_started = std::time::Instant::now();
                let (mut request, request_sections) = self.context.build(&self.scratch_refs);
                render_secs += build_started.elapsed().as_secs_f64();
                if let Some(t) = self.temperature {
                    request = request.with_temperature(t);
                }
                debug_assert_eq!(
                    request_fingerprint(model, &request),
                    self.fingerprints[request_index],
                    "shard re-render diverged from the survey pass"
                );
                requests.push(request);
                sections.push(request_sections.as_array());
                fingerprints.push(self.fingerprints[request_index]);
                self.next_request = request_index + 1;
            }
            shard_batches.push(PlannedBatch {
                instance_indices,
                request_index,
            });
        }
        self.cursor = end;
        self.prompt_build_wall_secs += render_secs;
        self.plan_wall_secs += (shard_started.elapsed().as_secs_f64() - render_secs).max(0.0);
        Some(PlanShard {
            first_batch,
            batches: shard_batches,
            first_request,
            requests,
            sections,
            fingerprints,
        })
    }

    /// The global plan fingerprint — identical to
    /// [`crate::exec::ExecutionPlan::fingerprint`] on the same inputs, and
    /// known before any shard is yielded (the journal header and resume
    /// check don't wait for planning to finish).
    pub fn fingerprint(&self) -> u64 {
        fold_plan_fingerprint(&self.fingerprints)
    }

    /// Total batches in the plan.
    pub fn n_batches(&self) -> usize {
        self.batch_request.len()
    }

    /// Total unique requests in the plan.
    pub fn n_requests(&self) -> usize {
        self.fingerprints.len()
    }

    /// Instances covered by the plan.
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }

    /// Batches served by deduplication against an earlier identical batch.
    pub fn deduped_batches(&self) -> usize {
        self.n_batches() - self.n_requests()
    }

    /// Batches the given unique request serves (global totals, matching the
    /// materialized planner's `Planned` event).
    pub fn batches_per(&self, request_index: usize) -> usize {
        self.batches_per[request_index]
    }

    /// Instances the given unique request covers (global totals).
    pub fn instances_per(&self, request_index: usize) -> usize {
        self.instances_per[request_index]
    }

    /// The last batch referencing the given unique request: once the plan
    /// cursor passes it, the response can be dropped.
    pub fn last_batch_of(&self, request_index: usize) -> usize {
        self.last_batch_of[request_index]
    }

    /// Whether prompts request the two-line reasoning format.
    pub fn reasoning(&self) -> bool {
        self.prompt_config.reasoning
    }

    /// The instance slice the plan covers (outlives the stream borrow).
    pub fn instances(&self) -> &'a [TaskInstance] {
        self.instances
    }

    /// The sampling temperature applied to every request.
    pub(crate) fn temperature(&self) -> Option<f64> {
        self.temperature
    }

    /// The shared prompt context (degradation ladder re-renders through it).
    pub(crate) fn context(&self) -> &PromptContext {
        &self.context
    }

    /// Wall-clock seconds spent deciding batch membership and dedup, across
    /// the survey and every shard yielded so far.
    pub fn plan_wall_secs(&self) -> f64 {
        self.plan_wall_secs
    }

    /// Wall-clock seconds spent rendering prompts, across the survey and
    /// every shard yielded so far.
    pub fn prompt_build_wall_secs(&self) -> f64 {
        self.prompt_build_wall_secs
    }
}

impl std::fmt::Debug for PlanStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStream")
            .field("shard_size", &self.shard_size)
            .field("n_batches", &self.n_batches())
            .field("n_requests", &self.n_requests())
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::exec::ExecutionPlan;
    use dprep_llm::{ChatModel, ChatResponse, Usage};
    use dprep_prompt::Task;
    use dprep_tabular::{Record, Schema, Value};

    struct EchoModel;

    impl ChatModel for EchoModel {
        fn name(&self) -> &str {
            "echo"
        }
        fn context_window(&self) -> usize {
            100_000
        }
        fn cost_usd(&self, usage: &Usage) -> f64 {
            usage.total_tokens() as f64 * 1e-6
        }
        fn chat(&self, request: &dprep_llm::ChatRequest) -> ChatResponse {
            let body = &request.messages.last().unwrap().content;
            let count = body.matches("Question ").count().max(1);
            let mut text = String::new();
            for i in 1..=count {
                text.push_str(&format!("Answer {i}: yes\n"));
            }
            ChatResponse::new(text, Usage::default(), 0.5)
        }
    }

    fn em_instances(n: usize, dup_every: usize) -> Vec<TaskInstance> {
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        (0..n)
            .map(|i| {
                let label = if dup_every > 0 && i % dup_every == 0 {
                    "duplicate product".to_string()
                } else {
                    format!("product {i}")
                };
                let rec = Record::new(schema.clone(), vec![Value::text(label)]).unwrap();
                TaskInstance::EntityMatching {
                    a: rec.clone(),
                    b: rec,
                }
            })
            .collect()
    }

    fn config() -> PipelineConfig {
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.batch_size = 3;
        config
    }

    /// Reassembling every shard must reproduce the materialized plan
    /// byte-for-byte: batches, requests, sections, fingerprints, and the
    /// global plan fingerprint.
    #[test]
    fn shards_reassemble_into_the_materialized_plan() {
        let model = EchoModel;
        let config = config();
        // batch_size 1 on duplicated instances also exercises dedup.
        for (n, dup_every, shard_size) in
            [(10, 0, 1), (10, 0, 2), (23, 0, 4), (23, 0, 100), (12, 3, 2)]
        {
            let mut config = config.clone();
            if dup_every > 0 {
                config.components.batching = false;
            }
            let instances = em_instances(n, dup_every);
            let plan = ExecutionPlan::build(&model, &config, &instances, &[]);
            let mut stream = PlanStream::new(&model, &config, &instances, &[], shard_size);
            assert_eq!(stream.fingerprint(), plan.fingerprint());
            assert_eq!(stream.n_batches(), plan.batches().len());
            assert_eq!(stream.n_requests(), plan.requests().len());
            assert_eq!(stream.deduped_batches(), plan.deduped_batches());

            let mut batches = Vec::new();
            let mut requests = Vec::new();
            let mut sections = Vec::new();
            let mut fingerprints = Vec::new();
            while let Some(shard) = stream.next_shard(&model) {
                assert_eq!(shard.first_batch, batches.len());
                assert_eq!(shard.first_request, requests.len());
                assert!(shard.batches.len() <= shard_size.max(1));
                batches.extend(shard.batches);
                requests.extend(shard.requests);
                sections.extend(shard.sections);
                fingerprints.extend(shard.fingerprints);
            }
            for (streamed, planned) in batches.iter().zip(plan.batches()) {
                assert_eq!(streamed.instance_indices, planned.instance_indices);
                assert_eq!(streamed.request_index, planned.request_index);
            }
            assert_eq!(batches.len(), plan.batches().len());
            assert_eq!(requests.len(), plan.requests().len());
            for (streamed, planned) in requests.iter().zip(plan.requests()) {
                assert_eq!(streamed.messages.len(), planned.messages.len());
                for (a, b) in streamed.messages.iter().zip(&planned.messages) {
                    assert_eq!(a.content, b.content);
                }
                assert_eq!(streamed.prompt_tokens_hint, planned.prompt_tokens_hint);
            }
            assert_eq!(sections, plan.sections());
            assert_eq!(fingerprints, plan.fingerprints());
        }
    }

    /// Per-unique totals must be global (all shards), matching what the
    /// materialized executor reports in `Planned` events.
    #[test]
    fn per_request_totals_are_global_across_shards() {
        let model = EchoModel;
        let mut config = config();
        config.components.batching = false;
        // Every instance identical -> one unique request serving all 7
        // batches, first seen in shard 0 but referenced by every shard.
        let instances = em_instances(7, 1);
        let mut stream = PlanStream::new(&model, &config, &instances, &[], 2);
        assert_eq!(stream.n_requests(), 1);
        assert_eq!(stream.batches_per(0), 7);
        assert_eq!(stream.instances_per(0), 7);
        assert_eq!(stream.last_batch_of(0), 6);
        let first = stream.next_shard(&model).expect("one shard");
        assert_eq!(first.requests.len(), 1);
        let mut rest = 0;
        while let Some(shard) = stream.next_shard(&model) {
            assert!(shard.requests.is_empty(), "request must not re-render");
            rest += shard.batches.len();
        }
        assert_eq!(rest, 5);
    }

    /// Timing aggregates across shards: each yielded shard can only grow
    /// the totals, never replace them with its own slice.
    #[test]
    fn stage_timing_accumulates_across_shards() {
        let model = EchoModel;
        let config = config();
        let instances = em_instances(30, 0);
        let mut stream = PlanStream::new(&model, &config, &instances, &[], 2);
        let survey_build = stream.prompt_build_wall_secs();
        assert!(survey_build > 0.0, "survey renders every batch");
        let mut last_build = survey_build;
        let mut last_plan = stream.plan_wall_secs();
        while let Some(shard) = stream.next_shard(&model) {
            assert!(
                stream.prompt_build_wall_secs() >= last_build,
                "prompt-build wall must be monotone across shards"
            );
            assert!(stream.plan_wall_secs() >= last_plan);
            if !shard.requests.is_empty() {
                assert!(stream.prompt_build_wall_secs() > last_build);
            }
            last_build = stream.prompt_build_wall_secs();
            last_plan = stream.plan_wall_secs();
        }
    }
}
