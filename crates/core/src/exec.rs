//! The plan/execute split: batch planning up front, dispatch across worker
//! threads, deterministic reassembly.
//!
//! The serial pipeline interleaved four concerns in one loop: deciding the
//! batches, building each prompt, calling the model, and folding usage.
//! This module separates them:
//!
//! 1. [`ExecutionPlan::build`] precomputes everything that does not require
//!    the model to answer — batch membership (including context-window
//!    fitting), one [`ChatRequest`] per batch, and deduplication of
//!    byte-identical requests,
//! 2. [`Executor::run`] dispatches the plan's unique requests across `N`
//!    worker threads (`std::thread::scope`, work-stealing off an atomic
//!    cursor), then reassembles responses **in plan order**.
//!
//! Because batch membership, request payloads, and deduplication are all
//! fixed before the first dispatch, and aggregation walks the plan rather
//! than completion order, a run with 8 workers is bit-identical to a run
//! with 1 — same predictions, same usage totals, same counters. Parallelism
//! changes wall-clock time and nothing else.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dprep_llm::{ChatModel, ChatRequest, UsageTotals};
use dprep_prompt::{build_request, make_batches, parse_response, FewShotExample, TaskInstance};
use dprep_rng::stable_hash;

use crate::config::PipelineConfig;
use crate::pipeline::{FailureKind, Prediction, RunResult};

/// One planned batch: which instances it covers and which unique request
/// serves it.
#[derive(Debug, Clone)]
pub struct PlannedBatch {
    /// Indices into the input instance slice, in prompt question order
    /// (question `k` is instance `instance_indices[k - 1]`).
    pub instance_indices: Vec<usize>,
    /// Index into [`ExecutionPlan::requests`] of the request that serves
    /// this batch. Several batches share an index when their prompts are
    /// byte-identical.
    pub request_index: usize,
}

/// Everything about a run that is decided before the model is called.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    batches: Vec<PlannedBatch>,
    requests: Vec<ChatRequest>,
    n_instances: usize,
    reasoning: bool,
}

impl ExecutionPlan {
    /// Plans a run: batches `instances` per the configuration (clamping the
    /// batch size to what fits the model's context window when
    /// `fit_context` is set), builds one request per batch, and deduplicates
    /// identical requests so each is dispatched once.
    pub fn build<M: ChatModel + ?Sized>(
        model: &M,
        config: &PipelineConfig,
        instances: &[TaskInstance],
        examples: &[FewShotExample],
    ) -> ExecutionPlan {
        let shots: &[FewShotExample] = if config.components.few_shot {
            examples
        } else {
            &[]
        };
        let prompt_config = config.prompt_config();
        let mut strategy = config.batch_strategy();
        if config.fit_context {
            let clamped = context_fitted_batch_size(model, config, instances, shots);
            strategy = match strategy {
                dprep_prompt::BatchStrategy::Random { batch_size } => {
                    dprep_prompt::BatchStrategy::Random {
                        batch_size: batch_size.min(clamped),
                    }
                }
                dprep_prompt::BatchStrategy::Cluster {
                    batch_size,
                    clusters,
                } => dprep_prompt::BatchStrategy::Cluster {
                    batch_size: batch_size.min(clamped),
                    clusters,
                },
            };
        }

        let mut batches = Vec::new();
        let mut requests: Vec<ChatRequest> = Vec::new();
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for batch in make_batches(instances, &strategy, config.seed) {
            let batch_refs: Vec<&TaskInstance> = batch.iter().map(|&i| &instances[i]).collect();
            let mut request = build_request(&prompt_config, shots, &batch_refs);
            if let Some(t) = config.temperature {
                request = request.with_temperature(t);
            }
            // Dedup key: everything that determines a deterministic model's
            // response. Doing this at plan time (not in a cache layer racing
            // under the executor) keeps hit counts worker-independent.
            let descriptor = format!(
                "{:?}|{}|{}",
                request.temperature,
                request.retry_salt,
                request.full_text()
            );
            let key = stable_hash(0x00de_d001, descriptor.as_bytes());
            let request_index = *seen.entry(key).or_insert_with(|| {
                requests.push(request);
                requests.len() - 1
            });
            batches.push(PlannedBatch {
                instance_indices: batch,
                request_index,
            });
        }

        ExecutionPlan {
            batches,
            requests,
            n_instances: instances.len(),
            reasoning: prompt_config.reasoning,
        }
    }

    /// The planned batches, in dispatch order.
    pub fn batches(&self) -> &[PlannedBatch] {
        &self.batches
    }

    /// The unique requests the plan dispatches (deduplicated).
    pub fn requests(&self) -> &[ChatRequest] {
        &self.requests
    }

    /// Batches whose request is served by an earlier identical batch.
    pub fn deduped_batches(&self) -> usize {
        self.batches.len() - self.requests.len()
    }
}

/// How the executor dispatches a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionOptions {
    /// Worker threads. 1 = serial in the calling thread (no threads
    /// spawned); the output is identical either way.
    pub workers: usize,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions { workers: 1 }
    }
}

/// Serving-layer counters for one run, aggregated from response metadata in
/// plan order (worker-count independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Unique requests dispatched to the model.
    pub requests: usize,
    /// Batches served by deduplication against an identical earlier batch.
    pub deduped: usize,
    /// Total retry attempts spent by the retry middleware.
    pub retries: usize,
    /// Responses served from the cache middleware.
    pub cache_hits: usize,
    /// Responses that still carried a fault after all middleware ran.
    pub faulted: usize,
}

impl ExecStats {
    /// Folds another run's counters into this one (multi-pass pipelines).
    pub fn merge(&mut self, other: &ExecStats) {
        self.requests += other.requests;
        self.deduped += other.deduped;
        self.retries += other.retries;
        self.cache_hits += other.cache_hits;
        self.faulted += other.faulted;
    }
}

/// Dispatches an [`ExecutionPlan`] and reassembles a [`RunResult`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    options: ExecutionOptions,
}

impl Executor {
    /// An executor with the given options.
    pub fn new(options: ExecutionOptions) -> Self {
        Executor { options }
    }

    /// A serial executor (`workers == 1`).
    pub fn serial() -> Self {
        Executor::default()
    }

    /// Runs the plan against `model`.
    ///
    /// With `workers > 1`, requests are claimed off an atomic cursor by
    /// scoped threads; each response lands in its plan slot, and all
    /// aggregation (usage totals, counters, per-instance predictions)
    /// happens afterwards in plan order — so the result is bit-identical to
    /// a serial run.
    pub fn run<M: ChatModel + ?Sized>(&self, model: &M, plan: &ExecutionPlan) -> RunResult {
        let responses = self.dispatch(model, plan);

        let mut predictions =
            vec![Prediction::Failed(FailureKind::SkippedAnswer); plan.n_instances];
        let mut usage = UsageTotals::default();
        let mut stats = ExecStats {
            requests: plan.requests.len(),
            deduped: plan.deduped_batches(),
            ..ExecStats::default()
        };

        // Usage and serving counters: once per unique request, plan order.
        for response in &responses {
            usage.record(
                &response.usage,
                model.cost_usd(&response.usage),
                response.latency_secs,
            );
            stats.retries += response.meta.retries as usize;
            stats.cache_hits += usize::from(response.meta.cache_hit);
            stats.faulted += usize::from(response.meta.fault.is_some());
        }

        // Predictions: parse each batch's response and classify the misses.
        for batch in &plan.batches {
            let response = &responses[batch.request_index];
            let answers = parse_response(&response.text, plan.reasoning);
            let overflowed = response.usage.prompt_tokens > model.context_window();
            for (position, &instance_idx) in batch.instance_indices.iter().enumerate() {
                predictions[instance_idx] = match answers.get(&(position + 1)) {
                    Some(extracted) => Prediction::Answered(extracted.clone()),
                    None => Prediction::Failed(classify_miss(
                        response.meta.fault.is_some(),
                        response.meta.retries,
                        overflowed,
                        answers.is_empty(),
                    )),
                };
            }
        }

        RunResult {
            predictions,
            usage,
            stats,
        }
    }

    fn dispatch<M: ChatModel + ?Sized>(
        &self,
        model: &M,
        plan: &ExecutionPlan,
    ) -> Vec<dprep_llm::ChatResponse> {
        let requests = &plan.requests;
        if self.options.workers <= 1 || requests.len() <= 1 {
            return requests.iter().map(|r| model.chat(r)).collect();
        }

        let slots: Vec<Mutex<Option<dprep_llm::ChatResponse>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.options.workers.min(requests.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= requests.len() {
                        break;
                    }
                    let response = model.chat(&requests[idx]);
                    *slots[idx].lock().expect("slot poisoned") = Some(response);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

/// Why an instance's answer is missing from an otherwise-delivered response.
fn classify_miss(
    faulted: bool,
    retries: u32,
    overflowed: bool,
    nothing_parsed: bool,
) -> FailureKind {
    if faulted {
        if retries > 0 {
            FailureKind::RetriesExhausted
        } else {
            FailureKind::Faulted
        }
    } else if overflowed {
        FailureKind::ContextOverflow
    } else if nothing_parsed {
        FailureKind::FormatViolation
    } else {
        FailureKind::SkippedAnswer
    }
}

/// Largest batch size whose prompt fits in ~85% of the model's context
/// window, estimated from a one-instance sample request.
///
/// Returns the configured batch size unchanged when batching is off or
/// there is nothing to sample; returns 1 when even the fixed prompt
/// overhead (instructions + few-shot examples + one question) blows the
/// budget — a single oversized question cannot be split further.
pub fn context_fitted_batch_size<M: ChatModel + ?Sized>(
    model: &M,
    config: &PipelineConfig,
    instances: &[TaskInstance],
    shots: &[FewShotExample],
) -> usize {
    let configured = config.effective_batch_size();
    if configured <= 1 || instances.is_empty() {
        return configured.max(1);
    }
    let prompt_config = config.prompt_config();
    let sample = build_request(&prompt_config, shots, &[&instances[0]]);
    let fixed_plus_one = dprep_text::count_tokens(&sample.full_text());
    let per_question = dprep_text::count_tokens(
        &instances[0].question_text(prompt_config.feature_indices.as_deref()),
    ) + 8;
    let budget = (model.context_window() as f64 * 0.85) as usize;
    if fixed_plus_one >= budget {
        return 1;
    }
    (1 + (budget - fixed_plus_one) / per_question.max(1)).min(configured)
}
