//! The plan/execute split: batch planning up front, dispatch across worker
//! threads, deterministic reassembly.
//!
//! The serial pipeline interleaved four concerns in one loop: deciding the
//! batches, building each prompt, calling the model, and folding usage.
//! This module separates them:
//!
//! 1. [`ExecutionPlan::build`] precomputes everything that does not require
//!    the model to answer — batch membership (including context-window
//!    fitting), one [`ChatRequest`] per batch, and deduplication of
//!    byte-identical requests,
//! 2. [`Executor::run`] dispatches the plan's unique requests across `N`
//!    worker threads (`std::thread::scope`, work-stealing off an atomic
//!    cursor), then reassembles responses **in plan order**.
//!
//! Because batch membership, request payloads, and deduplication are all
//! fixed before the first dispatch, and aggregation walks the plan rather
//! than completion order, a run with 8 workers is bit-identical to a run
//! with 1 — same predictions, same usage totals, same counters. Parallelism
//! changes wall-clock time and nothing else.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dprep_llm::{
    is_complete, request_fingerprint, ChatModel, ChatRequest, ChatResponse, FaultKind, RouteFold,
    RouteOutcome, RoutePending, SettledLeg, Usage, UsageTotals,
};
use dprep_obs::{
    DurableJournal, JournalEntry, MetricsRecorder, NullTracer, RouteLegRecord, TerminalKind,
    TraceEvent, Tracer,
};
use dprep_prompt::{
    build_request, make_batches, parse_response, FewShotExample, PromptConfig, PromptContext,
    TaskInstance,
};

use crate::config::PipelineConfig;
use crate::pipeline::{FailureKind, Prediction, RunResult};
use crate::serve::ShardGate;

/// One planned batch: which instances it covers and which unique request
/// serves it.
#[derive(Debug, Clone)]
pub struct PlannedBatch {
    /// Indices into the input instance slice, in prompt question order
    /// (question `k` is instance `instance_indices[k - 1]`).
    pub instance_indices: Vec<usize>,
    /// Index into [`ExecutionPlan::requests`] of the request that serves
    /// this batch. Several batches share an index when their prompts are
    /// byte-identical.
    pub request_index: usize,
}

/// Everything about a run that is decided before the model is called.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    batches: Vec<PlannedBatch>,
    requests: Vec<ChatRequest>,
    /// Per-request prompt-component token counts, aligned with `requests`
    /// (attribution order: task-spec, answer-format, cot, few-shot,
    /// instances).
    sections: Vec<[usize; 5]>,
    /// `request_fingerprint` of each unique request, aligned with
    /// `requests` — the dedup keys, kept because they are also the
    /// journal's request identities and the plan fingerprint's input.
    fingerprints: Vec<u64>,
    n_instances: usize,
    /// Prompt configuration retained for response parsing (reasoning mode).
    prompt_config: PromptConfig,
    /// Prompt-building context with the plan-invariant sections (system
    /// message, few-shot turns) rendered and tokenized exactly once; reused
    /// when graceful degradation rebuilds smaller sub-batches.
    context: PromptContext,
    instances: Vec<TaskInstance>,
    temperature: Option<f64>,
    /// Wall-clock seconds spent deciding batch membership and deduplication.
    plan_wall_secs: f64,
    /// Wall-clock seconds spent rendering prompts.
    prompt_build_wall_secs: f64,
}

impl ExecutionPlan {
    /// Plans a run: batches `instances` per the configuration (clamping the
    /// batch size to what fits the model's context window when
    /// `fit_context` is set), builds one request per batch, and deduplicates
    /// identical requests so each is dispatched once.
    pub fn build<M: ChatModel + ?Sized>(
        model: &M,
        config: &PipelineConfig,
        instances: &[TaskInstance],
        examples: &[FewShotExample],
    ) -> ExecutionPlan {
        let shots: &[FewShotExample] = if config.components.few_shot {
            examples
        } else {
            &[]
        };
        let prompt_config = config.prompt_config();
        let strategy = effective_strategy(model, config, instances, shots);

        let plan_started = std::time::Instant::now();
        // Render the plan-invariant sections (system message, few-shot
        // turns) exactly once; every batch below shares them and only the
        // per-batch question body is rendered and tokenized per request.
        let context_started = std::time::Instant::now();
        let context = PromptContext::new(&prompt_config, shots);
        let mut prompt_build_wall_secs = context_started.elapsed().as_secs_f64();
        let mut batches = Vec::new();
        let mut requests: Vec<ChatRequest> = Vec::new();
        let mut sections: Vec<[usize; 5]> = Vec::new();
        let mut fingerprints: Vec<u64> = Vec::new();
        let mut seen: HashMap<u64, usize> = HashMap::new();
        // One scratch buffer of instance refs, reused across every batch —
        // the planning loop allocates nothing per batch beyond the rendered
        // request itself.
        let mut batch_refs: Vec<&TaskInstance> = Vec::new();
        for batch in make_batches(instances, &strategy, config.seed) {
            batch_refs.clear();
            batch_refs.extend(batch.iter().map(|&i| &instances[i]));
            let build_started = std::time::Instant::now();
            let (mut request, request_sections) = context.build(&batch_refs);
            prompt_build_wall_secs += build_started.elapsed().as_secs_f64();
            if let Some(t) = config.temperature {
                request = request.with_temperature(t);
            }
            // Dedup key: everything that determines a deterministic model's
            // response. Doing this at plan time (not in a cache layer racing
            // under the executor) keeps hit counts worker-independent. The
            // key is the same fingerprint `CacheLayer` memoizes by — both
            // resolve the temperature first, so an unset `None` and an
            // explicit default can never defeat dedup on one side only.
            let key = request_fingerprint(model, &request);
            let request_index = *seen.entry(key).or_insert_with(|| {
                requests.push(request);
                sections.push(request_sections.as_array());
                fingerprints.push(key);
                requests.len() - 1
            });
            batches.push(PlannedBatch {
                instance_indices: batch,
                request_index,
            });
        }

        ExecutionPlan {
            batches,
            requests,
            sections,
            fingerprints,
            n_instances: instances.len(),
            prompt_config,
            context,
            instances: instances.to_vec(),
            temperature: config.temperature,
            plan_wall_secs: (plan_started.elapsed().as_secs_f64() - prompt_build_wall_secs)
                .max(0.0),
            prompt_build_wall_secs,
        }
    }

    /// The planned batches, in dispatch order.
    pub fn batches(&self) -> &[PlannedBatch] {
        &self.batches
    }

    /// The unique requests the plan dispatches (deduplicated).
    pub fn requests(&self) -> &[ChatRequest] {
        &self.requests
    }

    /// Per-request prompt-component token counts, aligned with
    /// [`requests`](Self::requests). Order: task-spec, answer-format, cot,
    /// few-shot, instances (message framing is the billed remainder).
    pub fn sections(&self) -> &[[usize; 5]] {
        &self.sections
    }

    /// Batches whose request is served by an earlier identical batch.
    pub fn deduped_batches(&self) -> usize {
        self.batches.len() - self.requests.len()
    }

    /// `request_fingerprint` of each unique request, aligned with
    /// [`requests`](Self::requests).
    pub fn fingerprints(&self) -> &[u64] {
        &self.fingerprints
    }

    /// A stable fingerprint of the whole plan: a deterministic fold over
    /// the unique request fingerprints in plan order. Two plans built from
    /// the same model, configuration, instances, and seed always agree; any
    /// change to a prompt, the batch shape, the temperature, or the model
    /// changes it. This is the identity a run journal is recorded under —
    /// a resumed run refuses a journal whose plan fingerprint differs.
    pub fn fingerprint(&self) -> u64 {
        fold_plan_fingerprint(&self.fingerprints)
    }
}

/// The plan-fingerprint fold shared by the materialized and streaming
/// planners: a deterministic fold over the unique request fingerprints in
/// plan order. Both planners visit batches in the same order and dedup by
/// the same key, so they always agree on this value.
pub(crate) fn fold_plan_fingerprint(fingerprints: &[u64]) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64 ^ (fingerprints.len() as u64);
    for &f in fingerprints {
        acc = acc.rotate_left(13) ^ f.wrapping_mul(0x0100_0000_01b3);
    }
    acc
}

/// The batching strategy a run actually uses: the configured strategy with
/// its batch size clamped to what fits the model's context window (when
/// `fit_context` is set). Shared by [`ExecutionPlan::build`] and the
/// streaming [`crate::stream::PlanStream`] so both plan identical batches.
pub(crate) fn effective_strategy<M: ChatModel + ?Sized>(
    model: &M,
    config: &PipelineConfig,
    instances: &[TaskInstance],
    shots: &[FewShotExample],
) -> dprep_prompt::BatchStrategy {
    let strategy = config.batch_strategy();
    if !config.fit_context {
        return strategy;
    }
    let clamped = context_fitted_batch_size(model, config, instances, shots);
    match strategy {
        dprep_prompt::BatchStrategy::Random { batch_size } => dprep_prompt::BatchStrategy::Random {
            batch_size: batch_size.min(clamped),
        },
        dprep_prompt::BatchStrategy::Cluster {
            batch_size,
            clusters,
        } => dprep_prompt::BatchStrategy::Cluster {
            batch_size: batch_size.min(clamped),
            clusters,
        },
    }
}

/// How the executor dispatches a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionOptions {
    /// Worker threads. 1 = serial in the calling thread (no threads
    /// spawned); the output is identical either way.
    pub workers: usize,
    /// Virtual-time deadline for the run, in seconds. The request whose
    /// billed latency reaches the deadline still completes; every later
    /// unique request is cancelled unbilled and its instances fail with
    /// [`FailureKind::BudgetExhausted`].
    pub deadline_secs: Option<f64>,
    /// Ceiling on billed tokens (prompt + completion) for the run, with the
    /// same reach-then-stop semantics as `deadline_secs`. Cache hits bill
    /// zero and never consume budget.
    pub token_budget: Option<usize>,
    /// Graceful batch degradation: a multi-instance batch left with
    /// unanswered instances is deterministically split into smaller
    /// sub-batches (halving down to single instances) before any instance
    /// is marked failed.
    pub degrade: bool,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            workers: 1,
            deadline_secs: None,
            token_budget: None,
            degrade: false,
        }
    }
}

/// Serving-layer counters for one run, aggregated from response metadata in
/// plan order (worker-count independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Unique requests dispatched to the model.
    pub requests: usize,
    /// Batches served by deduplication against an identical earlier batch.
    pub deduped: usize,
    /// Total retry attempts spent by the retry middleware on *fresh*
    /// responses (a cache hit replays its recorded metadata without
    /// spending anything, so it does not count here).
    pub retries: usize,
    /// Responses served from the cache middleware.
    pub cache_hits: usize,
    /// Fresh responses that still carried a fault after all middleware ran.
    pub faulted: usize,
    /// Unique requests cancelled unbilled by a tripped deadline or token
    /// budget.
    pub cancelled: usize,
    /// Degradation sub-batches dispatched after splitting a failing batch.
    pub splits: usize,
    /// Instances recovered by a degradation sub-batch after the original
    /// batch left them unanswered.
    pub split_recovered: usize,
}

impl ExecStats {
    /// Folds another run's counters into this one (multi-pass pipelines).
    pub fn merge(&mut self, other: &ExecStats) {
        self.requests += other.requests;
        self.deduped += other.deduped;
        self.retries += other.retries;
        self.cache_hits += other.cache_hits;
        self.faulted += other.faulted;
        self.cancelled += other.cancelled;
        self.splits += other.splits;
        self.split_recovered += other.split_recovered;
    }
}

/// Durable-run wiring for an executor: an optional journal that records
/// every terminal request, and (on resume) a replay map of completed
/// requests recovered from a previous journal plus the plan fingerprint
/// that journal was recorded under.
///
/// A `Durability` value is shared across the sequential runs of a
/// multi-pass pipeline (clean = detect + impute): the expected plan
/// fingerprint is validated once, by the first run — later passes derive
/// deterministically from the first run's results and are covered by it.
/// Each replay entry is consumed by the first request that matches it;
/// later duplicates of the same fingerprint dispatch normally and are
/// served by the (journal-warmed) cache layer, exactly as they would have
/// been in the uninterrupted run.
#[derive(Debug, Clone, Default)]
pub struct Durability {
    journal: Option<Arc<DurableJournal>>,
    replay: Arc<Mutex<HashMap<u64, JournalEntry>>>,
    expected_plan: Arc<Mutex<Option<u64>>>,
    /// Torn-tail truncations performed by a recovery whose journal handle
    /// is not carried here (read-only resume, or resume into a different
    /// journal file). Drained into the first run's `JournalState`.
    truncated: Arc<Mutex<usize>>,
    /// Whether this durability was built from a recovered journal (kept
    /// separate from the replay map, which drains as entries are consumed).
    resumed: bool,
}

impl Durability {
    /// Durability that neither journals nor replays (the default).
    pub fn new() -> Self {
        Durability::default()
    }

    /// Appends every terminal request to `journal`.
    pub fn with_journal(mut self, journal: Arc<DurableJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Rehydrates completed requests from recovered journal `entries` and
    /// arms the plan-fingerprint check: the first run must compute exactly
    /// `expected_plan` or it is rejected before any request executes.
    /// Cancelled entries are ignored — they billed nothing and re-execute.
    pub fn with_replay(mut self, entries: &[JournalEntry], expected_plan: u64) -> Self {
        let map: HashMap<u64, JournalEntry> = entries
            .iter()
            .filter(|e| e.kind == TerminalKind::Completed)
            .map(|e| (e.fingerprint, e.clone()))
            .collect();
        self.replay = Arc::new(Mutex::new(map));
        self.expected_plan = Arc::new(Mutex::new(Some(expected_plan)));
        self.resumed = true;
        self
    }

    /// Records `count` torn-tail truncations performed by a recovery whose
    /// journal handle is not attached here (read-only resume, or resume
    /// into a different journal file). Reported once in `JournalState`.
    pub fn with_truncated(self, count: usize) -> Self {
        *self.truncated.lock().expect("truncated lock") = count;
        self
    }

    /// The journal, when one is attached.
    pub fn journal(&self) -> Option<&Arc<DurableJournal>> {
        self.journal.as_ref()
    }

    /// Whether runs under this durability journal or replay at all.
    fn active(&self) -> bool {
        self.journal.is_some() || self.resumed
    }

    /// Consumes the replay entry for `fingerprint`, if one remains.
    fn take_replay(&self, fingerprint: u64) -> Option<JournalEntry> {
        self.replay
            .lock()
            .expect("replay lock")
            .remove(&fingerprint)
    }

    /// Drains the recovery-time truncation count (reported at most once).
    fn take_truncated(&self) -> usize {
        std::mem::take(&mut *self.truncated.lock().expect("truncated lock"))
    }
}

/// A seeded abort trigger for kill-point drills: fires after the Nth
/// terminal event reaches the journal, making the executor return early
/// exactly where a crash at that point would have stopped it (minus the
/// process exit). The partial [`RunResult`] it returns is what a crashed
/// process would never have delivered — drills discard it and assert that
/// a resumed run reproduces the uninterrupted one.
#[derive(Debug, Clone)]
pub struct KillSwitch {
    countdown: Arc<AtomicUsize>,
    fired: Arc<AtomicBool>,
}

impl KillSwitch {
    /// A switch that fires after the `n`th terminal event (`n >= 1`).
    pub fn after(n: usize) -> KillSwitch {
        assert!(n >= 1, "a kill switch must allow at least one terminal");
        KillSwitch {
            countdown: Arc::new(AtomicUsize::new(n)),
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A switch that never fires on its own: the countdown is parked at
    /// `usize::MAX` so terminal events cannot plausibly drain it, and only
    /// an explicit [`trigger`](Self::trigger) (or a later
    /// [`arm_after`](Self::arm_after)) fires it. Serve drains hand one of
    /// these to every in-flight job as its checkpoint halt handle.
    pub fn unarmed() -> KillSwitch {
        KillSwitch {
            countdown: Arc::new(AtomicUsize::new(usize::MAX)),
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Re-arms the countdown so the switch fires after `n` further
    /// terminal events (`n >= 1`). Existing clones observe the new
    /// countdown: the counter is shared.
    pub fn arm_after(&self, n: usize) {
        assert!(n >= 1, "a kill switch must allow at least one terminal");
        self.countdown.store(n, Ordering::Relaxed);
    }

    /// Fires the switch immediately. The owning run stops at its next
    /// journaled terminal boundary, exactly as if the countdown had just
    /// drained there.
    pub fn trigger(&self) {
        self.fired.store(true, Ordering::Relaxed);
    }

    /// Whether the switch has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Counts one terminal event; true once the switch has fired.
    fn on_terminal(&self) -> bool {
        if !self.fired() && self.countdown.fetch_sub(1, Ordering::Relaxed) <= 1 {
            self.fired.store(true, Ordering::Relaxed);
        }
        self.fired()
    }
}

/// Dispatches an [`ExecutionPlan`] and reassembles a [`RunResult`].
#[derive(Clone)]
pub struct Executor {
    options: ExecutionOptions,
    tracer: Arc<dyn Tracer>,
    durability: Durability,
    kill: Option<KillSwitch>,
    gate: Option<Arc<dyn ShardGate>>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            options: ExecutionOptions::default(),
            tracer: Arc::new(NullTracer),
            durability: Durability::default(),
            kill: None,
            gate: None,
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// An executor with the given options.
    pub fn new(options: ExecutionOptions) -> Self {
        Executor {
            options,
            ..Executor::default()
        }
    }

    /// A serial executor (`workers == 1`).
    pub fn serial() -> Self {
        Executor::default()
    }

    /// Streams request-lifecycle events into `tracer` during [`run`]
    /// (`Executor::run`): run start/finish, planned/deduped requests, live
    /// per-worker dispatches with virtual-time spans, completions, and
    /// per-instance parse/failure outcomes. Wire the *same* tracer into the
    /// middleware stack (`with_tracer` on the retry/cache/fault layers) so
    /// their events correlate by request id.
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Journals terminal requests and/or replays a recovered journal
    /// during runs (see [`Durability`]).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Arms a kill-point drill: the run aborts right after the Nth terminal
    /// event is journaled (see [`KillSwitch`]).
    pub fn with_kill_switch(mut self, kill: KillSwitch) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Brackets every streaming plan-shard iteration with
    /// `gate.acquire()` / `gate.release()`, so concurrent jobs sharing a
    /// [`ShardGate`] (e.g. a serve turnstile) interleave at shard
    /// granularity. Each turn still uses the executor's full worker pool,
    /// and shard boundaries don't affect results, so gating never changes
    /// a run's output — only when its shards execute. The materialized
    /// path ([`run`](Self::run) on a whole plan) has a single implicit
    /// shard and is not gated.
    pub fn with_shard_gate(mut self, gate: Arc<dyn ShardGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Runs the plan against `model`.
    ///
    /// With `workers > 1`, requests are claimed off an atomic cursor by
    /// scoped threads; each response lands in its plan slot, and all
    /// aggregation (usage totals, counters, per-instance predictions)
    /// happens afterwards in plan order — so the result is bit-identical to
    /// a serial run. Only the live `dispatched` events interleave
    /// nondeterministically in a trace; every total, counter, and the
    /// metrics snapshot are worker-count independent.
    ///
    /// **Ledger semantics.** [`UsageTotals`] bills *fresh* model work only:
    /// a cache-hit response replays recorded text and metadata but spends
    /// zero tokens, zero dollars, and zero virtual time, so it contributes
    /// nothing (its original attempt was billed by the run that missed).
    /// Likewise `stats.retries` / `stats.faulted` count fresh responses
    /// only. Context-overflow classification compares a **single attempt's**
    /// prompt size against the window ([`dprep_llm::ResponseMeta`]'s
    /// `attempt_usage`), never the retry-accumulated total.
    ///
    /// # Panics
    /// Panics when durability rejects the run ([`try_run`](Self::try_run)
    /// returns the rejection as an error instead).
    pub fn run<M: ChatModel + ?Sized>(&self, model: &M, plan: &ExecutionPlan) -> RunResult {
        self.try_run(model, plan).expect("durable run rejected")
    }

    /// [`run`](Self::run), with durability failures surfaced as errors: a
    /// resumed journal whose plan fingerprint does not match this plan is
    /// rejected **before any request executes**, and a journal write
    /// failure aborts the run at the request it could not record.
    pub fn try_run<M: ChatModel + ?Sized>(
        &self,
        model: &M,
        plan: &ExecutionPlan,
    ) -> Result<RunResult, String> {
        let plan_fp = plan.fingerprint();
        if let Some(expected) = self
            .durability
            .expected_plan
            .lock()
            .expect("plan lock")
            .take()
        {
            if expected != plan_fp {
                return Err(format!(
                    "journal was recorded for plan {expected:016x} but this run plans \
                     {plan_fp:016x} (model, config, data, or seed changed); refusing to resume"
                ));
            }
        }
        if let Some(journal) = &self.durability.journal {
            journal
                .ensure_header(plan_fp)
                .map_err(|e| journal_write_error(journal.path(), &e))?;
        }
        let written_before = self
            .durability
            .journal
            .as_deref()
            .map_or(0, DurableJournal::written);
        let run_id = dprep_obs::next_run_id();
        let base_id = dprep_obs::reserve_request_ids(plan.requests.len());
        let recorder = MetricsRecorder::new();
        // Plan-order events feed both the run's own metrics snapshot and
        // the external tracer.
        let emit = |event: TraceEvent| {
            recorder.record(&event);
            self.tracer.record(&event);
        };

        emit(TraceEvent::RunStarted {
            run: run_id,
            instances: plan.n_instances,
            batches: plan.batches.len(),
            requests: plan.requests.len(),
        });
        let mut batches_per = vec![0usize; plan.requests.len()];
        let mut instances_per = vec![0usize; plan.requests.len()];
        for batch in &plan.batches {
            batches_per[batch.request_index] += 1;
            instances_per[batch.request_index] += batch.instance_indices.len();
        }
        for i in 0..plan.requests.len() {
            emit(TraceEvent::Planned {
                request: base_id + i as u64,
                batches: batches_per[i],
                instances: instances_per[i],
            });
        }
        let mut dispatches_seen = vec![false; plan.requests.len()];
        for (batch_idx, batch) in plan.batches.iter().enumerate() {
            if dispatches_seen[batch.request_index] {
                emit(TraceEvent::Deduped {
                    request: base_id + batch.request_index as u64,
                    batch: batch_idx,
                });
            } else {
                dispatches_seen[batch.request_index] = true;
            }
        }
        emit(TraceEvent::Stage {
            run: run_id,
            stage: "plan",
            wall_secs: plan.plan_wall_secs,
            vt_secs: 0.0,
        });
        emit(TraceEvent::Stage {
            run: run_id,
            stage: "prompt-build",
            wall_secs: plan.prompt_build_wall_secs,
            vt_secs: 0.0,
        });

        let dispatch_started = std::time::Instant::now();
        let mut clocks = vec![0.0; self.options.workers.max(1)];
        let mut dispatched = self.dispatch_slice(
            model,
            &plan.requests,
            &plan.fingerprints,
            base_id,
            &mut clocks,
        );
        let dispatch_wall_secs = dispatch_started.elapsed().as_secs_f64();

        let mut predictions =
            vec![Prediction::Failed(FailureKind::SkippedAnswer); plan.n_instances];
        let mut usage = UsageTotals::default();
        let mut stats = ExecStats {
            requests: plan.requests.len(),
            deduped: plan.deduped_batches(),
            ..ExecStats::default()
        };

        // Usage and serving counters: once per unique request, plan order.
        // Cache hits bill zero fresh tokens/cost/latency — the run that
        // missed already paid for the attempt this response replays.
        //
        // The budget gauge folds along the same walk. Every request was
        // dispatched speculatively (so cache state and response content stay
        // worker-count independent), but the gauge is authoritative: once
        // the cumulative billed latency or tokens reach a configured
        // ceiling, every later response is discarded unbilled — a
        // `cancelled` terminal event instead of a completion.
        let mut gauge = BudgetGauge::new(self.options.deadline_secs, self.options.token_budget);
        let mut route_fold = RouteFold::default();
        let mut request_cancelled = vec![false; plan.requests.len()];
        let mut replayed_count = 0usize;
        for (i, d) in dispatched.iter_mut().enumerate() {
            let (cancelled, killed) = self.fold_terminal(
                model,
                base_id + i as u64,
                plan.fingerprints[i],
                &plan.requests[i],
                plan.sections[i],
                d,
                &mut route_fold,
                &mut gauge,
                &mut usage,
                &mut stats,
                &mut replayed_count,
                &emit,
            )?;
            request_cancelled[i] = cancelled;
            if killed {
                return Ok(RunResult {
                    predictions,
                    usage,
                    stats,
                    metrics: recorder.snapshot(),
                });
            }
        }
        emit(TraceEvent::Stage {
            run: run_id,
            stage: "dispatch",
            wall_secs: dispatch_wall_secs,
            vt_secs: usage.latency_secs,
        });

        // Predictions: parse each batch's response and classify the misses.
        // A batch whose request was budget-cancelled fails wholesale; a
        // multi-instance batch with unanswered instances enters the
        // degradation ladder when enabled (failure events for its missed
        // instances are deferred until the ladder exhausts, so every
        // instance gets exactly one terminal event).
        let parse_started = std::time::Instant::now();
        let mut answered = 0usize;
        let mut ladder_requests = 0usize;
        for batch in &plan.batches {
            let d =
                (!request_cancelled[batch.request_index]).then(|| &dispatched[batch.request_index]);
            let killed = self.parse_one_batch(
                model,
                &batch.instance_indices,
                base_id + batch.request_index as u64,
                d,
                plan.prompt_config.reasoning,
                &plan.instances,
                &plan.context,
                plan.temperature,
                &mut gauge,
                &mut usage,
                &mut stats,
                &mut predictions,
                &mut answered,
                &mut ladder_requests,
                &mut replayed_count,
                &emit,
            )?;
            if killed {
                return Ok(RunResult {
                    predictions,
                    usage,
                    stats,
                    metrics: recorder.snapshot(),
                });
            }
        }

        emit(TraceEvent::Stage {
            run: run_id,
            stage: "parse",
            wall_secs: parse_started.elapsed().as_secs_f64(),
            vt_secs: 0.0,
        });

        if let Some(reason) = gauge.tripped {
            emit(TraceEvent::BudgetTripped {
                run: run_id,
                reason,
                cancelled: stats.cancelled,
            });
        }

        if self.durability.active() {
            let journal = self.durability.journal.as_deref();
            emit(TraceEvent::JournalState {
                run: run_id,
                replayed: replayed_count,
                written: journal.map_or(0, |j| j.written() - written_before),
                truncated: journal.map_or(0, DurableJournal::take_truncated)
                    + self.durability.take_truncated(),
            });
        }

        let total_requests = plan.requests.len() + ladder_requests;
        emit(TraceEvent::RunFinished {
            run: run_id,
            instances: plan.n_instances,
            answered,
            failed: plan.n_instances - answered,
            requests: total_requests,
            fresh_requests: total_requests - stats.cache_hits - stats.cancelled,
            cache_hits: stats.cache_hits,
            prompt_tokens: usage.prompt_tokens,
            completion_tokens: usage.completion_tokens,
            cost_usd: usage.cost_usd,
            latency_secs: usage.latency_secs,
        });

        Ok(RunResult {
            predictions,
            usage,
            stats,
            metrics: recorder.snapshot(),
        })
    }

    /// [`try_run`](Self::try_run) over a streaming plan: consumes `stream`
    /// shard by shard — dispatching, folding, and parsing each shard before
    /// the next is rendered — so the executor holds at most one shard of
    /// rendered requests plus the responses still referenced by a later
    /// batch, instead of the whole plan.
    ///
    /// **Equivalence.** Predictions, usage totals, serving counters, and the
    /// metrics snapshot are bit-identical to the materialized path at any
    /// shard size and worker count: dedup and batch membership come from the
    /// same survey ([`crate::stream::PlanStream`]), unique requests are
    /// folded in the same global plan order (each worker's virtual clock
    /// persists across shards), and the budget gauge charges along the same
    /// sequence. The journal is byte-identical too when no degradation
    /// ladder runs; with a ladder, the same entry *set* is written but
    /// ladder entries interleave at shard boundaries instead of trailing the
    /// whole dispatch, a budget that trips mid-run can cancel a
    /// different (never larger) suffix of requests because streaming charges
    /// ladder work as soon as its shard parses, and the billed `cost_usd` /
    /// `latency_secs` totals — the same per-request addends summed in shard
    /// order — can differ from the materialized total in the last ulp. Streaming runs resumed from
    /// streaming journals are always bit-identical. Trace-event differences:
    /// `Planned`/`Deduped` arrive per shard (same payloads, global totals),
    /// and the four `Stage` events arrive once at the end with wall-clock
    /// totals aggregated across every shard.
    pub fn try_run_stream<M: ChatModel + ?Sized>(
        &self,
        model: &M,
        stream: &mut crate::stream::PlanStream<'_>,
    ) -> Result<RunResult, String> {
        let plan_fp = stream.fingerprint();
        if let Some(expected) = self
            .durability
            .expected_plan
            .lock()
            .expect("plan lock")
            .take()
        {
            if expected != plan_fp {
                return Err(format!(
                    "journal was recorded for plan {expected:016x} but this run plans \
                     {plan_fp:016x} (model, config, data, or seed changed); refusing to resume"
                ));
            }
        }
        if let Some(journal) = &self.durability.journal {
            journal
                .ensure_header(plan_fp)
                .map_err(|e| journal_write_error(journal.path(), &e))?;
        }
        let written_before = self
            .durability
            .journal
            .as_deref()
            .map_or(0, DurableJournal::written);
        let run_id = dprep_obs::next_run_id();
        let base_id = dprep_obs::reserve_request_ids(stream.n_requests());
        let recorder = MetricsRecorder::new();
        let emit = |event: TraceEvent| {
            recorder.record(&event);
            self.tracer.record(&event);
        };

        let n_instances = stream.n_instances();
        let n_requests = stream.n_requests();
        let n_batches = stream.n_batches();
        // Copies of the stream's shared pieces, so parsing can borrow them
        // while `next_shard` holds the stream mutably.
        let instances = stream.instances();
        let context = stream.context().clone();
        let temperature = stream.temperature();
        let reasoning = stream.reasoning();

        emit(TraceEvent::RunStarted {
            run: run_id,
            instances: n_instances,
            batches: n_batches,
            requests: n_requests,
        });

        let mut predictions = vec![Prediction::Failed(FailureKind::SkippedAnswer); n_instances];
        let mut usage = UsageTotals::default();
        let mut stats = ExecStats {
            requests: n_requests,
            deduped: stream.deduped_batches(),
            ..ExecStats::default()
        };
        let mut gauge = BudgetGauge::new(self.options.deadline_secs, self.options.token_budget);
        // One settlement fold for the whole run: breaker state carries
        // across shards exactly as it does across the materialized path's
        // single plan-order walk.
        let mut route_fold = RouteFold::default();
        let mut request_cancelled = vec![false; n_requests];
        let mut batch_seen = vec![false; n_requests];
        // Responses that a batch in a not-yet-parsed shard still references;
        // bounded by how far dedup reaches across shards, not by plan size.
        let mut live: HashMap<usize, DispatchedResponse> = HashMap::new();
        // Worker virtual clocks persist across shards, so the virtual-time
        // span layout matches one uninterrupted dispatch of the whole plan.
        let mut clocks = vec![0.0; self.options.workers.max(1)];
        let mut replayed_count = 0usize;
        let mut answered = 0usize;
        let mut ladder_requests = 0usize;
        let mut dispatch_wall_secs = 0.0;
        let mut dispatch_vt_secs = 0.0;
        let mut parse_wall_secs = 0.0;
        let mut killed = false;

        loop {
            // One gate turn spans the whole shard iteration — planning,
            // dispatch, fold, and parse — and is released even on an
            // error return, so a failing job never wedges the rotation.
            let _turn = self.gate.as_deref().map(GateTurn::acquire);
            let Some(shard) = stream.next_shard(model) else {
                break;
            };
            for i in 0..shard.requests.len() {
                let g = shard.first_request + i;
                emit(TraceEvent::Planned {
                    request: base_id + g as u64,
                    batches: stream.batches_per(g),
                    instances: stream.instances_per(g),
                });
            }
            for (offset, batch) in shard.batches.iter().enumerate() {
                if batch_seen[batch.request_index] {
                    emit(TraceEvent::Deduped {
                        request: base_id + batch.request_index as u64,
                        batch: shard.first_batch + offset,
                    });
                } else {
                    batch_seen[batch.request_index] = true;
                }
            }

            let dispatch_started = std::time::Instant::now();
            let dispatched = self.dispatch_slice(
                model,
                &shard.requests,
                &shard.fingerprints,
                base_id + shard.first_request as u64,
                &mut clocks,
            );
            dispatch_wall_secs += dispatch_started.elapsed().as_secs_f64();

            let vt_before_fold = usage.latency_secs;
            for (i, mut d) in dispatched.into_iter().enumerate() {
                let g = shard.first_request + i;
                let (cancelled, fired) = self.fold_terminal(
                    model,
                    base_id + g as u64,
                    shard.fingerprints[i],
                    &shard.requests[i],
                    shard.sections[i],
                    &mut d,
                    &mut route_fold,
                    &mut gauge,
                    &mut usage,
                    &mut stats,
                    &mut replayed_count,
                    &emit,
                )?;
                request_cancelled[g] = cancelled;
                if !cancelled {
                    live.insert(g, d);
                }
                if fired {
                    killed = true;
                    break;
                }
            }
            dispatch_vt_secs += usage.latency_secs - vt_before_fold;
            if killed {
                break;
            }

            let parse_started = std::time::Instant::now();
            for batch in &shard.batches {
                let g = batch.request_index;
                let d = (!request_cancelled[g]).then(|| {
                    live.get(&g)
                        .expect("response retained until its last referencing batch")
                });
                let fired = self.parse_one_batch(
                    model,
                    &batch.instance_indices,
                    base_id + g as u64,
                    d,
                    reasoning,
                    instances,
                    &context,
                    temperature,
                    &mut gauge,
                    &mut usage,
                    &mut stats,
                    &mut predictions,
                    &mut answered,
                    &mut ladder_requests,
                    &mut replayed_count,
                    &emit,
                )?;
                if fired {
                    killed = true;
                    break;
                }
            }
            parse_wall_secs += parse_started.elapsed().as_secs_f64();
            if killed {
                break;
            }

            // Drop responses no later batch references: `frontier` is the
            // first batch of the next shard, so anything whose last use is
            // behind it is done.
            let frontier = shard.first_batch + shard.batches.len();
            live.retain(|&g, _| stream.last_batch_of(g) >= frontier);
        }

        if killed {
            return Ok(RunResult {
                predictions,
                usage,
                stats,
                metrics: recorder.snapshot(),
            });
        }

        // Stage wall-clock totals aggregate across every shard (the survey
        // pass counts toward plan/prompt-build); emitted once so a span
        // profile reads like the materialized run's.
        emit(TraceEvent::Stage {
            run: run_id,
            stage: "plan",
            wall_secs: stream.plan_wall_secs(),
            vt_secs: 0.0,
        });
        emit(TraceEvent::Stage {
            run: run_id,
            stage: "prompt-build",
            wall_secs: stream.prompt_build_wall_secs(),
            vt_secs: 0.0,
        });
        emit(TraceEvent::Stage {
            run: run_id,
            stage: "dispatch",
            wall_secs: dispatch_wall_secs,
            vt_secs: dispatch_vt_secs,
        });
        emit(TraceEvent::Stage {
            run: run_id,
            stage: "parse",
            wall_secs: parse_wall_secs,
            vt_secs: 0.0,
        });

        if let Some(reason) = gauge.tripped {
            emit(TraceEvent::BudgetTripped {
                run: run_id,
                reason,
                cancelled: stats.cancelled,
            });
        }

        if self.durability.active() {
            let journal = self.durability.journal.as_deref();
            emit(TraceEvent::JournalState {
                run: run_id,
                replayed: replayed_count,
                written: journal.map_or(0, |j| j.written() - written_before),
                truncated: journal.map_or(0, DurableJournal::take_truncated)
                    + self.durability.take_truncated(),
            });
        }

        let total_requests = n_requests + ladder_requests;
        emit(TraceEvent::RunFinished {
            run: run_id,
            instances: n_instances,
            answered,
            failed: n_instances - answered,
            requests: total_requests,
            fresh_requests: total_requests - stats.cache_hits - stats.cancelled,
            cache_hits: stats.cache_hits,
            prompt_tokens: usage.prompt_tokens,
            completion_tokens: usage.completion_tokens,
            cost_usd: usage.cost_usd,
            latency_secs: usage.latency_secs,
        });

        Ok(RunResult {
            predictions,
            usage,
            stats,
            metrics: recorder.snapshot(),
        })
    }

    /// Appends one terminal entry to the journal, when one is attached.
    fn journal_append(&self, entry: &JournalEntry) -> Result<(), String> {
        let Some(journal) = &self.durability.journal else {
            return Ok(());
        };
        journal
            .append(entry)
            .map_err(|e| journal_write_error(journal.path(), &e))
    }

    /// Folds one dispatched request's terminal into the ledger: either a
    /// budget cancellation (the gauge tripped before this request's slot in
    /// plan order) or a completion with its billing, component attribution,
    /// and journal append. Shared by the materialized and streaming run
    /// paths — both walk unique requests in plan order, so the fold sequence
    /// (and therefore the journal, the gauge, and every counter) is
    /// identical between them.
    ///
    /// The `Completed` / `Parsed` / `Failed` / `Cancelled` events this fold
    /// emits are the observability plane's deterministic spine: the sliding
    /// window ([`dprep_obs::WindowAggregator`]) and the SLO engine advance
    /// their sequential-account virtual clock by each fresh completion's
    /// `latency_secs` in this fold order, never by the worker-thread
    /// `Dispatched` stream, which is why windowed rates and alert timelines
    /// are bit-identical at any `--workers` count.
    ///
    /// Returns `(cancelled, killed)`; `killed` means an armed kill switch
    /// fired on this terminal and the run must return its partial result.
    #[allow(clippy::too_many_arguments)]
    fn fold_terminal<M: ChatModel + ?Sized>(
        &self,
        model: &M,
        request_id: u64,
        fingerprint: u64,
        request: &ChatRequest,
        sections: [usize; 5],
        d: &mut DispatchedResponse,
        route_fold: &mut RouteFold,
        gauge: &mut BudgetGauge,
        usage: &mut UsageTotals,
        stats: &mut ExecStats,
        replayed_count: &mut usize,
        emit: &dyn Fn(TraceEvent),
    ) -> Result<(bool, bool), String> {
        if let Some(reason) = gauge.tripped {
            stats.cancelled += 1;
            emit(TraceEvent::Cancelled {
                request: request_id,
                reason,
            });
            self.journal_append(&JournalEntry::cancelled(fingerprint))?;
            let killed = self.kill.as_ref().is_some_and(KillSwitch::on_terminal);
            return Ok((true, killed));
        }
        if d.replayed {
            // The journal already holds this request's completion: no
            // model call happened, but its billed numbers re-enter the
            // ledger so the resumed run's totals match the
            // uninterrupted run's.
            *replayed_count += 1;
            emit(TraceEvent::Replayed {
                request: request_id,
            });
            if !d.legs.is_empty() {
                // A routed completion: re-advance the settlement breaker
                // from the journaled outcomes and re-emit the legs, so a
                // resumed run's breaker state, trace, and per-route
                // ledger match the uninterrupted run's exactly.
                let outcomes: Vec<(String, RouteOutcome, Option<FaultKind>)> = d
                    .legs
                    .iter()
                    .filter_map(|leg| {
                        RouteOutcome::from_label(&leg.outcome).map(|outcome| {
                            (
                                leg.route.clone(),
                                outcome,
                                leg.fault.as_deref().and_then(FaultKind::from_label),
                            )
                        })
                    })
                    .collect();
                route_fold.replay(&outcomes);
                for (index, leg) in d.legs.iter().enumerate() {
                    emit(route_leg_event(request_id, index, leg));
                }
            }
        }
        // Replayed completions re-bill the journaled cost: a routed entry's
        // settled per-leg sum is not reconstructible from summed usage.
        let mut settled_cost = d.replay_cost;
        if let Some(pending) = d.pending.take() {
            // Settle the speculative cascade in plan order: breaker
            // decisions happen here, not at dispatch, so they are
            // worker-count independent. The settled response replaces
            // the speculative one for billing, parsing, and journaling.
            let settlement = route_fold.settle(pending);
            d.legs = settlement.legs.iter().map(settled_leg_record).collect();
            for (index, leg) in d.legs.iter().enumerate() {
                emit(route_leg_event(request_id, index, leg));
            }
            d.response = settlement.response;
            settled_cost = Some(settlement.cost_usd);
        }
        let response = &d.response;
        let fresh = !response.meta.cache_hit;
        let attempt = response.meta.attempt_usage.unwrap_or(response.usage);
        let cost = if fresh {
            // A settled cascade bills each leg at its own route's pricing;
            // the composite model's price does not apply.
            settled_cost.unwrap_or_else(|| model.cost_usd(&response.usage))
        } else {
            0.0
        };
        if fresh {
            usage.record(&response.usage, cost, response.latency_secs);
            stats.retries += response.meta.retries as usize;
            stats.faulted += usize::from(response.meta.fault.is_some());
            gauge.charge(response.latency_secs, response.usage.total_tokens());
        } else {
            stats.cache_hits += 1;
        }
        emit(TraceEvent::Completed {
            request: request_id,
            worker: d.worker,
            cache_hit: response.meta.cache_hit,
            retries: response.meta.retries,
            fault: response.meta.fault.map(FaultKind::label),
            prompt_tokens: response.usage.prompt_tokens,
            completion_tokens: response.usage.completion_tokens,
            attempt_prompt_tokens: attempt.prompt_tokens,
            attempt_completion_tokens: attempt.completion_tokens,
            cost_usd: cost,
            latency_secs: response.latency_secs,
            vt_start_secs: d.vt_start_secs,
            vt_end_secs: d.vt_end_secs,
        });
        // Attribute every billed prompt token to a prompt component.
        // Each retry attempt re-bills the same prompt, so the planned
        // section counts scale by the attempt count; the framing
        // remainder (role tags, tokenization residue) reconciles the
        // sum to exactly the billed total. A cache hit billed nothing
        // fresh and attributes zero everywhere.
        let attributed = if fresh {
            let attempts = response.meta.retries as usize + 1;
            let scaled = sections.map(|n| n * attempts);
            dprep_obs::component::reconcile(scaled, response.usage.prompt_tokens)
        } else {
            [0; 6]
        };
        emit(TraceEvent::PromptComponents {
            request: request_id,
            cache_hit: response.meta.cache_hit,
            task_spec: attributed[0],
            answer_format: attributed[1],
            cot: attributed[2],
            few_shot: attributed[3],
            instances: attributed[4],
            framing: attributed[5],
        });
        let mut entry = completion_entry(fingerprint, request, response, attempt, cost);
        entry.legs = d.legs.clone();
        self.journal_append(&entry)?;
        let killed = self.kill.as_ref().is_some_and(KillSwitch::on_terminal);
        Ok((false, killed))
    }

    /// Parses one batch's response into predictions: answered instances get
    /// their extracted answers, misses are classified (or handed to the
    /// degradation ladder when enabled), and a batch whose request was
    /// budget-cancelled (`d` is `None`) fails wholesale. Shared by the
    /// materialized and streaming run paths. Returns whether an armed kill
    /// switch fired mid-ladder.
    #[allow(clippy::too_many_arguments)]
    fn parse_one_batch<M: ChatModel + ?Sized>(
        &self,
        model: &M,
        instance_indices: &[usize],
        request_id: u64,
        d: Option<&DispatchedResponse>,
        reasoning: bool,
        instances: &[TaskInstance],
        context: &PromptContext,
        temperature: Option<f64>,
        gauge: &mut BudgetGauge,
        usage: &mut UsageTotals,
        stats: &mut ExecStats,
        predictions: &mut [Prediction],
        answered: &mut usize,
        ladder_requests: &mut usize,
        replayed_count: &mut usize,
        emit: &dyn Fn(TraceEvent),
    ) -> Result<bool, String> {
        let Some(d) = d else {
            for &instance_idx in instance_indices {
                emit(TraceEvent::Failed {
                    request: request_id,
                    instance: instance_idx,
                    kind: FailureKind::BudgetExhausted.label(),
                });
                predictions[instance_idx] = Prediction::Failed(FailureKind::BudgetExhausted);
            }
            return Ok(false);
        };
        let response = &d.response;
        let answers = parse_response(&response.text, reasoning);
        // A retried request accumulates usage over attempts; only the
        // final attempt's own prompt says whether the window overflowed.
        let attempt_prompt = response
            .meta
            .attempt_usage
            .unwrap_or(response.usage)
            .prompt_tokens;
        let overflowed = attempt_prompt > model.context_window();
        let mut missed: Vec<usize> = Vec::new();
        for (position, &instance_idx) in instance_indices.iter().enumerate() {
            match answers.get(&(position + 1)) {
                Some(extracted) => {
                    *answered += 1;
                    emit(TraceEvent::Parsed {
                        request: request_id,
                        instance: instance_idx,
                    });
                    predictions[instance_idx] = Prediction::Answered(extracted.clone());
                }
                None => missed.push(instance_idx),
            }
        }
        if missed.is_empty() {
            return Ok(false);
        }
        if self.options.degrade && instance_indices.len() > 1 {
            *answered += self.degrade_batch(
                model,
                instances,
                context,
                temperature,
                reasoning,
                d,
                request_id,
                &missed,
                instance_indices.len(),
                gauge,
                usage,
                stats,
                predictions,
                ladder_requests,
                replayed_count,
                emit,
            )?;
            return Ok(self.kill.as_ref().is_some_and(KillSwitch::fired));
        }
        let kind = classify_miss(
            response.meta.fault,
            response.meta.retries,
            overflowed,
            answers.is_empty(),
        );
        for &instance_idx in &missed {
            emit(TraceEvent::Failed {
                request: request_id,
                instance: instance_idx,
                kind: kind.label(),
            });
            predictions[instance_idx] = Prediction::Failed(kind);
        }
        Ok(false)
    }

    /// The graceful-degradation ladder for one failing batch: rebuilds the
    /// missed instances into smaller sub-batches and dispatches them
    /// serially (plan order, single virtual clock) until every instance is
    /// answered or has shrunk to a single-instance request that still
    /// fails. Returns the number of instances recovered.
    ///
    /// The ladder never re-dispatches a group identical to the batch it is
    /// degrading — a deterministic model given the same prompt and salt
    /// returns the same response, faults included. When a strict subset of
    /// the batch missed, that subset is retried whole (its prompt already
    /// differs from the parent's); when the whole batch missed, the ladder
    /// seeds with its halves. Each sub-request is planned, completed, and
    /// billed exactly like a primary request, so the ledger invariants
    /// (one terminal event per request, attempt-reconciled billing) hold
    /// under audit, and the budget gauge keeps charging — a mid-ladder trip
    /// fails the remaining groups with `BudgetExhausted`.
    #[allow(clippy::too_many_arguments)]
    fn degrade_batch<M: ChatModel + ?Sized>(
        &self,
        model: &M,
        instances: &[TaskInstance],
        context: &PromptContext,
        temperature: Option<f64>,
        reasoning: bool,
        parent: &DispatchedResponse,
        parent_request_id: u64,
        missed: &[usize],
        batch_len: usize,
        gauge: &mut BudgetGauge,
        usage: &mut UsageTotals,
        stats: &mut ExecStats,
        predictions: &mut [Prediction],
        ladder_requests: &mut usize,
        replayed_count: &mut usize,
        emit: &dyn Fn(TraceEvent),
    ) -> Result<usize, String> {
        let mut recovered = 0usize;
        let mut ladder_clock = parent.vt_end_secs;
        let mut queue: std::collections::VecDeque<Vec<usize>> = std::collections::VecDeque::new();
        if missed.len() < batch_len {
            queue.push_back(missed.to_vec());
        } else {
            let mid = missed.len().div_ceil(2);
            queue.push_back(missed[..mid].to_vec());
            queue.push_back(missed[mid..].to_vec());
        }
        while let Some(group) = queue.pop_front() {
            if gauge.tripped.is_some() {
                // The budget ran out mid-ladder: the remaining groups are
                // never dispatched (nothing to cancel — they were never
                // planned), their instances fail as budget-exhausted.
                for &instance_idx in &group {
                    emit(TraceEvent::Failed {
                        request: parent_request_id,
                        instance: instance_idx,
                        kind: FailureKind::BudgetExhausted.label(),
                    });
                    predictions[instance_idx] = Prediction::Failed(FailureKind::BudgetExhausted);
                }
                continue;
            }
            let sub_id = dprep_obs::reserve_request_ids(1);
            let refs: Vec<&TaskInstance> = group.iter().map(|&i| &instances[i]).collect();
            let (mut request, request_sections) = context.build(&refs);
            if let Some(t) = temperature {
                request = request.with_temperature(t);
            }
            let request = request.with_trace_id(sub_id);
            let fingerprint = request_fingerprint(model, &request);
            emit(TraceEvent::Planned {
                request: sub_id,
                batches: 1,
                instances: group.len(),
            });
            emit(TraceEvent::BatchSplit {
                request: sub_id,
                instances: group.len(),
            });
            stats.splits += 1;
            stats.requests += 1;
            *ladder_requests += 1;
            self.tracer.record(&TraceEvent::Dispatched {
                request: sub_id,
                worker: parent.worker,
                vt_start_secs: ladder_clock,
            });
            let (mut response, mut legs, pending, replay_cost) =
                match self.durability.take_replay(fingerprint) {
                    Some(entry) => {
                        *replayed_count += 1;
                        emit(TraceEvent::Replayed { request: sub_id });
                        let response = replay_response(&entry);
                        (response, entry.legs, None, Some(entry.cost_usd))
                    }
                    None => {
                        let response = model.chat(&request);
                        let pending = model.take_route_pending(sub_id);
                        (response, Vec::new(), pending, None)
                    }
                };
            let mut settled_cost = replay_cost;
            if let Some(pending) = pending {
                // Ladder sub-requests settle statelessly: their position
                // relative to later primary folds differs between the
                // materialized and streaming paths, so advancing the
                // shared breaker here would break the two paths'
                // equivalence. Every leg bills and the last one serves.
                let settlement = RouteFold::settle_passthrough(pending);
                legs = settlement.legs.iter().map(settled_leg_record).collect();
                response = settlement.response;
                settled_cost = Some(settlement.cost_usd);
            }
            for (index, leg) in legs.iter().enumerate() {
                emit(route_leg_event(sub_id, index, leg));
            }
            let vt_start_secs = ladder_clock;
            ladder_clock += response.latency_secs;
            let fresh = !response.meta.cache_hit;
            let attempt = response.meta.attempt_usage.unwrap_or(response.usage);
            let cost = if fresh {
                settled_cost.unwrap_or_else(|| model.cost_usd(&response.usage))
            } else {
                0.0
            };
            if fresh {
                usage.record(&response.usage, cost, response.latency_secs);
                stats.retries += response.meta.retries as usize;
                stats.faulted += usize::from(response.meta.fault.is_some());
                gauge.charge(response.latency_secs, response.usage.total_tokens());
            } else {
                stats.cache_hits += 1;
            }
            emit(TraceEvent::Completed {
                request: sub_id,
                worker: parent.worker,
                cache_hit: response.meta.cache_hit,
                retries: response.meta.retries,
                fault: response.meta.fault.map(FaultKind::label),
                prompt_tokens: response.usage.prompt_tokens,
                completion_tokens: response.usage.completion_tokens,
                attempt_prompt_tokens: attempt.prompt_tokens,
                attempt_completion_tokens: attempt.completion_tokens,
                cost_usd: cost,
                latency_secs: response.latency_secs,
                vt_start_secs,
                vt_end_secs: ladder_clock,
            });
            let attributed = if fresh {
                let attempts = response.meta.retries as usize + 1;
                let scaled = request_sections.as_array().map(|n| n * attempts);
                dprep_obs::component::reconcile(scaled, response.usage.prompt_tokens)
            } else {
                [0; 6]
            };
            emit(TraceEvent::PromptComponents {
                request: sub_id,
                cache_hit: response.meta.cache_hit,
                task_spec: attributed[0],
                answer_format: attributed[1],
                cot: attributed[2],
                few_shot: attributed[3],
                instances: attributed[4],
                framing: attributed[5],
            });
            let mut entry = completion_entry(fingerprint, &request, &response, attempt, cost);
            entry.legs = legs;
            self.journal_append(&entry)?;
            if self.kill.as_ref().is_some_and(KillSwitch::on_terminal) {
                return Ok(recovered);
            }
            let answers = parse_response(&response.text, reasoning);
            let overflowed = attempt.prompt_tokens > model.context_window();
            let mut still_missed: Vec<usize> = Vec::new();
            for (position, &instance_idx) in group.iter().enumerate() {
                match answers.get(&(position + 1)) {
                    Some(extracted) => {
                        recovered += 1;
                        stats.split_recovered += 1;
                        emit(TraceEvent::Parsed {
                            request: sub_id,
                            instance: instance_idx,
                        });
                        predictions[instance_idx] = Prediction::Answered(extracted.clone());
                    }
                    None => still_missed.push(instance_idx),
                }
            }
            if still_missed.is_empty() {
                continue;
            }
            if group.len() == 1 {
                let kind = classify_miss(
                    response.meta.fault,
                    response.meta.retries,
                    overflowed,
                    answers.is_empty(),
                );
                emit(TraceEvent::Failed {
                    request: sub_id,
                    instance: still_missed[0],
                    kind: kind.label(),
                });
                predictions[still_missed[0]] = Prediction::Failed(kind);
            } else if still_missed.len() < group.len() {
                queue.push_back(still_missed);
            } else {
                let mid = still_missed.len().div_ceil(2);
                queue.push_back(still_missed[..mid].to_vec());
                queue.push_back(still_missed[mid..].to_vec());
            }
        }
        Ok(recovered)
    }

    /// Dispatches a slice of unique requests across the configured workers,
    /// continuing each worker's virtual clock from `clocks` (and writing the
    /// advanced clocks back). The materialized path calls this once with
    /// zeroed clocks; the streaming path calls it once per plan shard so
    /// virtual-time spans accumulate across shards exactly as they would in
    /// one uninterrupted dispatch.
    ///
    /// Request ids are `base_id + index`. A request whose fingerprint is in
    /// the replay map rehydrates from its journal entry instead of reaching
    /// the model; its journaled latency still advances the worker's virtual
    /// clock, so the span layout matches the uninterrupted run at the same
    /// worker count.
    fn dispatch_slice<M: ChatModel + ?Sized>(
        &self,
        model: &M,
        requests: &[ChatRequest],
        fingerprints: &[u64],
        base_id: u64,
        clocks: &mut [f64],
    ) -> Vec<DispatchedResponse> {
        // A routed model stack stashes its speculative cascade legs keyed
        // by trace id; collecting them here (still on the dispatching
        // worker) keeps settlement a pure plan-order fold.
        type Served = (
            ChatResponse,
            bool,
            Option<RoutePending>,
            Vec<RouteLegRecord>,
            Option<f64>,
        );
        let serve = |idx: usize, request: &ChatRequest| -> Served {
            match self.durability.take_replay(fingerprints[idx]) {
                Some(entry) => {
                    let response = replay_response(&entry);
                    (response, true, None, entry.legs, Some(entry.cost_usd))
                }
                None => {
                    let response = model.chat(request);
                    let pending = model.take_route_pending(request.trace_id);
                    (response, false, pending, Vec::new(), None)
                }
            }
        };
        if self.options.workers <= 1 || requests.len() <= 1 {
            let clock = &mut clocks[0];
            return requests
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let request = r.clone().with_trace_id(base_id + i as u64);
                    self.tracer.record(&TraceEvent::Dispatched {
                        request: request.trace_id,
                        worker: 0,
                        vt_start_secs: *clock,
                    });
                    let (response, replayed, pending, legs, replay_cost) = serve(i, &request);
                    let vt_start_secs = *clock;
                    *clock += response.latency_secs;
                    DispatchedResponse {
                        response,
                        replayed,
                        pending,
                        legs,
                        replay_cost,
                        worker: 0,
                        vt_start_secs,
                        vt_end_secs: *clock,
                    }
                })
                .collect();
        }

        let slots: Vec<Mutex<Option<DispatchedResponse>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.options.workers.min(requests.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let slots = &slots;
                    let cursor = &cursor;
                    let tracer = &self.tracer;
                    let serve = &serve;
                    // Each worker runs its own virtual clock: spans on one
                    // worker are sequential, workers overlap.
                    let mut clock = clocks[worker];
                    scope.spawn(move || {
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= requests.len() {
                                break;
                            }
                            let request = requests[idx].clone().with_trace_id(base_id + idx as u64);
                            tracer.record(&TraceEvent::Dispatched {
                                request: request.trace_id,
                                worker,
                                vt_start_secs: clock,
                            });
                            let (response, replayed, pending, legs, replay_cost) =
                                serve(idx, &request);
                            let vt_start_secs = clock;
                            clock += response.latency_secs;
                            *slots[idx].lock().expect("slot poisoned") = Some(DispatchedResponse {
                                response,
                                replayed,
                                pending,
                                legs,
                                replay_cost,
                                worker,
                                vt_start_secs,
                                vt_end_secs: clock,
                            });
                        }
                        clock
                    })
                })
                .collect();
            for (worker, handle) in handles.into_iter().enumerate() {
                clocks[worker] = handle.join().expect("worker panicked");
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

/// RAII shard turn: acquired at the top of a streaming shard iteration,
/// released when the iteration ends — including early `?` returns and
/// kill-switch breaks.
struct GateTurn<'a>(&'a dyn ShardGate);

impl<'a> GateTurn<'a> {
    fn acquire(gate: &'a dyn ShardGate) -> GateTurn<'a> {
        gate.acquire();
        GateTurn(gate)
    }
}

impl Drop for GateTurn<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A response plus where and when (in virtual time) it was served.
struct DispatchedResponse {
    response: ChatResponse,
    /// Rehydrated from a run journal — no model call happened.
    replayed: bool,
    /// Speculative cascade legs awaiting plan-order settlement (present
    /// only for fresh dispatches through a routed model stack).
    pending: Option<RoutePending>,
    /// Settled route legs, journaled with the completion; pre-filled from
    /// the journal entry on replay, filled at settlement otherwise.
    legs: Vec<RouteLegRecord>,
    /// The journaled billed cost on replay. A routed completion bills the
    /// settled per-leg sum, which the composite model's own pricing cannot
    /// re-derive from the summed usage.
    replay_cost: Option<f64>,
    worker: usize,
    vt_start_secs: f64,
    vt_end_secs: f64,
}

/// Builds the `RouteLeg` trace event for one leg record at cascade
/// position `index`. Labels round-trip through the vocabulary interner so
/// replayed (journal-parsed) legs carry the same static spellings live
/// settlements do.
fn route_leg_event(request: u64, index: usize, leg: &RouteLegRecord) -> TraceEvent {
    TraceEvent::RouteLeg {
        request,
        route: leg.route.clone(),
        index: index as u32,
        outcome: dprep_obs::component::intern_label(&leg.outcome),
        fault: leg
            .fault
            .as_deref()
            .and_then(FaultKind::from_label)
            .map(FaultKind::label),
        retries: leg.retries,
        prompt_tokens: leg.prompt_tokens,
        completion_tokens: leg.completion_tokens,
        cost_usd: leg.cost_usd,
        latency_secs: leg.latency_secs,
    }
}

/// Converts one settled cascade leg into the record its journal entry
/// (and a resumed run's re-emitted trace) carries.
fn settled_leg_record(leg: &SettledLeg) -> RouteLegRecord {
    RouteLegRecord {
        route: leg.route.clone(),
        outcome: leg.outcome.label().to_string(),
        fault: leg.fault.map(|f| f.label().to_string()),
        retries: leg.retries,
        prompt_tokens: leg.usage.prompt_tokens,
        completion_tokens: leg.usage.completion_tokens,
        cost_usd: leg.cost_usd,
        latency_secs: leg.latency_secs,
    }
}

/// Renders a journal I/O failure as an operator-facing error instead of a
/// raw io error: it names the journal path, states that the job's
/// checkpoint is incomplete (a resume replays only the entries that were
/// flushed before the failure), and tags the two causes with a known
/// remedy — a full disk and a short write.
pub fn journal_write_error(path: &std::path::Path, e: &std::io::Error) -> String {
    use std::io::ErrorKind;
    let hint = if e.kind() == ErrorKind::StorageFull || e.raw_os_error() == Some(28) {
        " (disk full: free space on the journal volume and resume)"
    } else if e.kind() == ErrorKind::WriteZero {
        " (short write: the entry was not fully flushed)"
    } else {
        ""
    };
    format!(
        "journal write failed, job checkpoint incomplete: {}: {e}{hint}",
        path.display()
    )
}

/// Reconstructs the response a journaled completion recorded: same text,
/// billed and final-attempt usage, retry count, fault, and latency, so the
/// plan-order fold re-bills it exactly as the original run did.
fn replay_response(entry: &JournalEntry) -> ChatResponse {
    let mut response = ChatResponse::new(
        entry.text.clone(),
        Usage {
            prompt_tokens: entry.prompt_tokens,
            completion_tokens: entry.completion_tokens,
        },
        entry.latency_secs,
    );
    response.meta.retries = entry.retries;
    response.meta.cache_hit = entry.cache_hit;
    response.meta.fault = entry.fault.as_deref().and_then(FaultKind::from_label);
    response.meta.attempt_usage = Some(Usage {
        prompt_tokens: entry.attempt_prompt_tokens,
        completion_tokens: entry.attempt_completion_tokens,
    });
    response
}

/// The journal entry for a completed request. `complete` records whether
/// the response fully served the request — exactly the condition the cache
/// layer memoizes under, so a journal-warmed cache on resume holds the same
/// entries the uninterrupted run's store would.
fn completion_entry(
    fingerprint: u64,
    request: &ChatRequest,
    response: &ChatResponse,
    attempt: Usage,
    cost: f64,
) -> JournalEntry {
    JournalEntry {
        fingerprint,
        kind: TerminalKind::Completed,
        text: response.text.clone(),
        prompt_tokens: response.usage.prompt_tokens,
        completion_tokens: response.usage.completion_tokens,
        attempt_prompt_tokens: attempt.prompt_tokens,
        attempt_completion_tokens: attempt.completion_tokens,
        retries: response.meta.retries,
        fault: response.meta.fault.map(|f| f.label().to_string()),
        cache_hit: response.meta.cache_hit,
        complete: is_complete(request, response),
        cost_usd: cost,
        latency_secs: response.latency_secs,
        legs: Vec::new(),
    }
}

/// The run-level budget fold: cumulative billed virtual latency and billed
/// tokens, checked after each fresh completion (charge-then-check, so the
/// request that reaches a ceiling still completes).
#[derive(Debug)]
struct BudgetGauge {
    deadline_secs: Option<f64>,
    token_budget: Option<usize>,
    latency_secs: f64,
    tokens: usize,
    /// `Some(reason)` once a ceiling was reached ("deadline" or
    /// "token-budget"); the deadline wins when one completion trips both.
    tripped: Option<&'static str>,
}

impl BudgetGauge {
    fn new(deadline_secs: Option<f64>, token_budget: Option<usize>) -> BudgetGauge {
        BudgetGauge {
            deadline_secs,
            token_budget,
            latency_secs: 0.0,
            tokens: 0,
            tripped: None,
        }
    }

    fn charge(&mut self, latency_secs: f64, tokens: usize) {
        if self.tripped.is_some() {
            return;
        }
        self.latency_secs += latency_secs;
        self.tokens += tokens;
        if self.deadline_secs.is_some_and(|d| self.latency_secs >= d) {
            self.tripped = Some("deadline");
        } else if self.token_budget.is_some_and(|b| self.tokens >= b) {
            self.tripped = Some("token-budget");
        }
    }
}

/// Why an instance's answer is missing from an otherwise-delivered response.
fn classify_miss(
    fault: Option<FaultKind>,
    retries: u32,
    overflowed: bool,
    nothing_parsed: bool,
) -> FailureKind {
    if matches!(fault, Some(FaultKind::CircuitOpen)) {
        FailureKind::CircuitOpen
    } else if fault.is_some() {
        if retries > 0 {
            FailureKind::RetriesExhausted
        } else {
            FailureKind::Faulted
        }
    } else if overflowed {
        FailureKind::ContextOverflow
    } else if nothing_parsed {
        FailureKind::FormatViolation
    } else {
        FailureKind::SkippedAnswer
    }
}

/// Largest batch size whose prompt fits in ~85% of the model's context
/// window, estimated from a one-instance sample request.
///
/// Returns the configured batch size unchanged when batching is off or
/// there is nothing to sample; returns 1 when even the fixed prompt
/// overhead (instructions + few-shot examples + one question) blows the
/// budget — a single oversized question cannot be split further.
pub fn context_fitted_batch_size<M: ChatModel + ?Sized>(
    model: &M,
    config: &PipelineConfig,
    instances: &[TaskInstance],
    shots: &[FewShotExample],
) -> usize {
    let configured = config.effective_batch_size();
    if configured <= 1 || instances.is_empty() {
        return configured.max(1);
    }
    let prompt_config = config.prompt_config();
    let sample = build_request(&prompt_config, shots, &[&instances[0]]);
    let fixed_plus_one = dprep_text::count_tokens(&sample.full_text());
    let per_question = dprep_text::count_tokens(
        &instances[0].question_text(prompt_config.feature_indices.as_deref()),
    ) + 8;
    let budget = (model.context_window() as f64 * 0.85) as usize;
    if fixed_plus_one >= budget {
        return 1;
    }
    (1 + (budget - fixed_plus_one) / per_question.max(1)).min(configured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_llm::{CacheLayer, ChatResponse, RetryLayer, Usage};
    use dprep_prompt::Task;
    use dprep_tabular::{Record, Schema, Value};

    /// Answers every `Question N:` line (or all but the last when
    /// `answer_all` is off), billing 100 prompt tokens per attempt.
    struct CountingModel {
        window: usize,
        answer_all: bool,
    }

    impl ChatModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }
        fn context_window(&self) -> usize {
            self.window
        }
        fn cost_usd(&self, usage: &Usage) -> f64 {
            usage.total_tokens() as f64 * 1e-6
        }
        fn chat(&self, request: &ChatRequest) -> ChatResponse {
            let body = &request.messages.last().unwrap().content;
            let count = body
                .lines()
                .filter(|l| l.trim_start().starts_with("Question "))
                .count()
                .max(1);
            let n = if self.answer_all {
                count
            } else {
                count.saturating_sub(1)
            };
            let mut text = String::new();
            for i in 1..=n {
                text.push_str(&format!("Answer {i}: yes\n"));
            }
            ChatResponse::new(
                text,
                Usage {
                    prompt_tokens: 100,
                    completion_tokens: 10 * n,
                },
                2.0,
            )
        }
    }

    fn em_instances(n: usize) -> Vec<TaskInstance> {
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        (0..n)
            .map(|i| {
                let rec =
                    Record::new(schema.clone(), vec![Value::text(format!("product {i}"))]).unwrap();
                TaskInstance::EntityMatching {
                    a: rec.clone(),
                    b: rec,
                }
            })
            .collect()
    }

    fn plan_for<M: ChatModel + ?Sized>(
        model: &M,
        instances: &[TaskInstance],
        batch_size: usize,
    ) -> ExecutionPlan {
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.components.reasoning = false;
        config.batch_size = batch_size;
        // Keep the planned batch shape fixed even for tiny test windows —
        // these tests steer overflow via the window deliberately.
        config.fit_context = false;
        ExecutionPlan::build(model, &config, instances, &[])
    }

    #[test]
    fn cache_hits_bill_zero_fresh_usage() {
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let cached = CacheLayer::new(&base);
        let instances = em_instances(6);
        let plan = plan_for(&cached, &instances, 3);
        let exec = Executor::serial();
        let first = exec.run(&cached, &plan);
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.usage.requests, 2);
        assert!(first.usage.prompt_tokens > 0 && first.usage.cost_usd > 0.0);

        // The same plan again over the warm cache: every response replays,
        // so the run bills zero fresh tokens, cost, latency, and requests.
        let second = exec.run(&cached, &plan);
        assert_eq!(second.stats.cache_hits, first.stats.requests);
        assert_eq!(second.usage.requests, 0);
        assert_eq!(second.usage.prompt_tokens, 0);
        assert_eq!(second.usage.completion_tokens, 0);
        assert_eq!(second.usage.cost_usd, 0.0);
        assert_eq!(second.usage.latency_secs, 0.0);
        assert_eq!(second.predictions, first.predictions);
        // The metrics snapshot tells the same story.
        assert_eq!(second.metrics.cache_hits, first.stats.requests);
        assert_eq!(second.metrics.fresh_requests, 0);
        assert_eq!(second.metrics.prompt_tokens, 0);
        // Replayed metadata does not re-count retries or faults.
        assert_eq!(second.stats.retries, 0);
        assert_eq!(second.stats.faulted, 0);
    }

    #[test]
    fn retried_requests_are_not_misclassified_as_overflow() {
        // Window 250: a single attempt (100 prompt tokens) fits comfortably,
        // but the retry-accumulated total (3 × 100) does not. The final
        // attempt's own size decides overflow, so the missing answer is a
        // skip — not a phantom context overflow.
        let base = CountingModel {
            window: 250,
            answer_all: false,
        };
        let model = RetryLayer::new(&base, 2);
        let instances = em_instances(2);
        let plan = plan_for(&model, &instances, 2);
        let result = Executor::serial().run(&model, &plan);
        assert_eq!(result.stats.retries, 2, "budget spent");
        assert!(
            result.usage.prompt_tokens > model.context_window(),
            "accumulated usage exceeds the window — the bug's trigger"
        );
        let kinds: Vec<FailureKind> = result
            .predictions
            .iter()
            .filter_map(|p| p.failure())
            .collect();
        assert_eq!(kinds, vec![FailureKind::SkippedAnswer]);
    }

    #[test]
    fn single_oversized_attempt_still_classifies_as_overflow() {
        let base = CountingModel {
            window: 50,
            answer_all: false,
        };
        let instances = em_instances(2);
        let plan = plan_for(&base, &instances, 2);
        let result = Executor::serial().run(&base, &plan);
        let kinds: Vec<FailureKind> = result
            .predictions
            .iter()
            .filter_map(|p| p.failure())
            .collect();
        assert_eq!(kinds, vec![FailureKind::ContextOverflow]);
    }

    #[test]
    fn dedup_and_cache_agree_on_unset_vs_default_temperature() {
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let cached = CacheLayer::new(&base);
        let instances = em_instances(4);
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.components.reasoning = false;
        config.batch_size = 2;
        config.fit_context = false;
        // Plan A leaves the temperature unset; plan B pins it to the model's
        // default explicitly. Both fingerprint identically, so run B is
        // served entirely from run A's cache entries.
        config.temperature = None;
        let plan_unset = ExecutionPlan::build(&cached, &config, &instances, &[]);
        config.temperature = Some(cached.default_temperature());
        let plan_pinned = ExecutionPlan::build(&cached, &config, &instances, &[]);

        let exec = Executor::serial();
        let first = exec.run(&cached, &plan_unset);
        let second = exec.run(&cached, &plan_pinned);
        assert_eq!(second.stats.cache_hits, first.stats.requests);
        assert_eq!(second.usage.requests, 0, "no fresh dispatches");
        assert_eq!(second.predictions, first.predictions);
    }

    #[test]
    fn executor_emits_a_complete_event_stream() {
        use dprep_obs::CollectingTracer;
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let tracer = Arc::new(CollectingTracer::new());
        let instances = em_instances(4);
        let plan = plan_for(&base, &instances, 2);
        let exec = Executor::new(ExecutionOptions {
            workers: 2,
            ..ExecutionOptions::default()
        })
        .with_tracer(tracer.clone() as Arc<dyn Tracer>);
        let result = exec.run(&base, &plan);
        assert_eq!(tracer.count("run_started"), 1);
        assert_eq!(tracer.count("planned"), plan.requests().len());
        assert_eq!(tracer.count("dispatched"), plan.requests().len());
        assert_eq!(tracer.count("completed"), plan.requests().len());
        assert_eq!(tracer.count("prompt_components"), plan.requests().len());
        assert_eq!(
            tracer.count("stage"),
            4,
            "plan, prompt-build, dispatch, parse"
        );
        assert_eq!(tracer.count("parsed"), 4);
        assert_eq!(tracer.count("failed"), 0);
        assert_eq!(tracer.count("run_finished"), 1);
        assert_eq!(result.metrics.answered, 4);
        assert_eq!(result.metrics.fresh_requests, plan.requests().len());
        // Every billed prompt token lands in exactly one component.
        assert_eq!(
            result.metrics.component_tokens.values().sum::<usize>(),
            result.metrics.prompt_tokens
        );
    }

    #[test]
    fn token_budget_trips_mid_run_and_cancels_the_rest() {
        use dprep_obs::CollectingTracer;
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let audit = Arc::new(dprep_obs::AuditTracer::new());
        let instances = em_instances(6);
        let plan = plan_for(&base, &instances, 2);
        assert_eq!(plan.requests().len(), 3);
        let tracer = Arc::new(CollectingTracer::new());
        let fan = Arc::new(
            dprep_obs::MultiTracer::new()
                .with(audit.clone() as Arc<dyn Tracer>)
                .with(tracer.clone() as Arc<dyn Tracer>),
        );
        // Each request bills 120 tokens (100 prompt + 20 completion). A
        // 150-token ceiling lets two complete (charge-then-check: the
        // second crosses) and cancels the third unbilled.
        let exec = Executor::new(ExecutionOptions {
            token_budget: Some(150),
            ..ExecutionOptions::default()
        })
        .with_tracer(fan as Arc<dyn Tracer>);
        let result = exec.run(&base, &plan);
        assert_eq!(result.stats.cancelled, 1);
        assert_eq!(result.usage.prompt_tokens, 200, "third request unbilled");
        assert_eq!(result.metrics.cancelled, 1);
        assert_eq!(tracer.count("cancelled"), 1);
        assert_eq!(tracer.count("budget_tripped"), 1);
        let failed: Vec<FailureKind> = result
            .predictions
            .iter()
            .filter_map(|p| p.failure())
            .collect();
        assert_eq!(
            failed,
            vec![FailureKind::BudgetExhausted, FailureKind::BudgetExhausted],
            "the cancelled batch's two instances fail as budget-exhausted"
        );
        assert_eq!(result.predictions.len() - failed.len(), 4, "partial run");
        audit.assert_clean();
    }

    #[test]
    fn deadline_trips_on_virtual_latency() {
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let instances = em_instances(6);
        let plan = plan_for(&base, &instances, 2);
        // Each request takes 2.0s of virtual time; a 2.0s deadline is
        // reached by the first completion, cancelling the other two.
        let exec = Executor::new(ExecutionOptions {
            deadline_secs: Some(2.0),
            ..ExecutionOptions::default()
        });
        let result = exec.run(&base, &plan);
        assert_eq!(result.stats.cancelled, 2);
        assert!((result.usage.latency_secs - 2.0).abs() < 1e-12);
        assert_eq!(
            result
                .predictions
                .iter()
                .filter(|p| p.failure() == Some(FailureKind::BudgetExhausted))
                .count(),
            4
        );
    }

    /// Answers only single-question prompts; any larger batch gets an
    /// empty response.
    struct SingletonModel;

    impl ChatModel for SingletonModel {
        fn name(&self) -> &str {
            "singleton"
        }
        fn context_window(&self) -> usize {
            100_000
        }
        fn cost_usd(&self, usage: &Usage) -> f64 {
            usage.total_tokens() as f64 * 1e-6
        }
        fn chat(&self, request: &ChatRequest) -> ChatResponse {
            let body = &request.messages.last().unwrap().content;
            let count = body
                .lines()
                .filter(|l| l.trim_start().starts_with("Question "))
                .count()
                .max(1);
            let text = if count == 1 {
                "Answer 1: yes\n".to_string()
            } else {
                String::new()
            };
            ChatResponse::new(
                text,
                Usage {
                    prompt_tokens: 50,
                    completion_tokens: 5,
                },
                1.0,
            )
        }
    }

    #[test]
    fn degradation_splits_a_failing_batch_down_to_single_instances() {
        use dprep_obs::CollectingTracer;
        let audit = Arc::new(dprep_obs::AuditTracer::new());
        let tracer = Arc::new(CollectingTracer::new());
        let fan = Arc::new(
            dprep_obs::MultiTracer::new()
                .with(audit.clone() as Arc<dyn Tracer>)
                .with(tracer.clone() as Arc<dyn Tracer>),
        );
        let instances = em_instances(4);
        let plan = plan_for(&SingletonModel, &instances, 4);
        assert_eq!(plan.requests().len(), 1);

        // Without degradation the whole batch fails flat.
        let flat = Executor::serial().run(&SingletonModel, &plan);
        assert_eq!(flat.failed_count(), 4);

        // With degradation the ladder halves 4 -> (2, 2) -> four singles,
        // each of which answers: every instance recovers.
        let exec = Executor::new(ExecutionOptions {
            degrade: true,
            ..ExecutionOptions::default()
        })
        .with_tracer(fan as Arc<dyn Tracer>);
        let result = exec.run(&SingletonModel, &plan);
        assert_eq!(result.failed_count(), 0, "all four recovered");
        assert_eq!(result.stats.splits, 6, "two halves + four singles");
        assert_eq!(result.stats.split_recovered, 4);
        assert_eq!(result.stats.requests, 7);
        assert_eq!(tracer.count("batch_split"), 6);
        assert_eq!(tracer.count("planned"), 7);
        assert_eq!(result.metrics.batch_splits, 6);
        audit.assert_clean();
    }

    #[test]
    fn degradation_retries_a_partial_miss_whole_before_splitting() {
        // The parent batch answers questions 1 and 3 but skips 2: the miss
        // set is a strict subset, so the ladder retries it as one
        // single-instance request (a different prompt than the parent's)
        // and recovers it without further splitting.
        struct SkipSecond;
        impl ChatModel for SkipSecond {
            fn name(&self) -> &str {
                "skip-second"
            }
            fn context_window(&self) -> usize {
                100_000
            }
            fn cost_usd(&self, _usage: &Usage) -> f64 {
                0.0
            }
            fn chat(&self, request: &ChatRequest) -> ChatResponse {
                let body = &request.messages.last().unwrap().content;
                let count = body
                    .lines()
                    .filter(|l| l.trim_start().starts_with("Question "))
                    .count()
                    .max(1);
                let mut text = String::new();
                for i in 1..=count {
                    if i != 2 {
                        text.push_str(&format!("Answer {i}: yes\n"));
                    }
                }
                ChatResponse::new(text, Usage::default(), 0.5)
            }
        }
        let instances = em_instances(3);
        let plan = plan_for(&SkipSecond, &instances, 3);
        let exec = Executor::new(ExecutionOptions {
            degrade: true,
            ..ExecutionOptions::default()
        });
        let result = exec.run(&SkipSecond, &plan);
        assert_eq!(result.failed_count(), 0);
        assert_eq!(result.stats.splits, 1, "one whole-miss retry, no halving");
        assert_eq!(result.stats.split_recovered, 1);
    }

    #[test]
    fn degraded_run_is_bit_identical_across_worker_counts() {
        let instances = em_instances(12);
        let mut reference: Option<RunResult> = None;
        for workers in [1usize, 4] {
            let plan = plan_for(&SingletonModel, &instances, 3);
            let exec = Executor::new(ExecutionOptions {
                workers,
                degrade: true,
                token_budget: Some(260),
                ..ExecutionOptions::default()
            });
            let result = exec.run(&SingletonModel, &plan);
            if let Some(reference) = &reference {
                assert_eq!(result.predictions, reference.predictions);
                assert_eq!(result.stats, reference.stats);
                assert_eq!(result.metrics, reference.metrics, "workers={workers}");
            } else {
                reference = Some(result);
            }
        }
    }

    fn journal_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dprep-exec-test-{}-{name}.jsonl",
            std::process::id()
        ));
        p
    }

    #[test]
    fn killed_and_resumed_runs_are_bit_identical_at_every_kill_point() {
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let instances = em_instances(8);
        let plan = plan_for(&base, &instances, 2);
        assert_eq!(plan.requests().len(), 4);
        let reference = Executor::serial().run(&base, &plan);

        for kill_at in 1..=plan.requests().len() {
            let path = journal_path(&format!("kill-{kill_at}"));
            let journal = Arc::new(DurableJournal::fresh(&path, "counting", "cfg", 0).unwrap());
            let kill = KillSwitch::after(kill_at);
            let killed = Executor::serial()
                .with_durability(Durability::new().with_journal(journal))
                .with_kill_switch(kill.clone())
                .run(&base, &plan);
            assert!(kill.fired(), "kill_at={kill_at}");
            assert!(killed.usage.requests <= kill_at);

            let recovered = DurableJournal::resume(&path).unwrap();
            assert!(recovered.warning.is_none());
            assert_eq!(recovered.entries.len(), kill_at);
            let audit = Arc::new(dprep_obs::AuditTracer::new());
            let durability = Durability::new()
                .with_replay(&recovered.entries, recovered.require_header().unwrap().plan)
                .with_journal(Arc::new(recovered.journal));
            let resumed = Executor::serial()
                .with_durability(durability)
                .with_tracer(audit.clone() as Arc<dyn Tracer>)
                .run(&base, &plan);
            audit.assert_clean();
            assert_eq!(
                resumed.predictions, reference.predictions,
                "kill_at={kill_at}"
            );
            assert_eq!(resumed.stats, reference.stats, "kill_at={kill_at}");
            assert_eq!(resumed.usage.total_tokens(), reference.usage.total_tokens());
            assert!((resumed.usage.cost_usd - reference.usage.cost_usd).abs() < 1e-15);
            assert!((resumed.usage.latency_secs - reference.usage.latency_secs).abs() < 1e-15);
            // The metrics reconcile too, modulo the journal counters the
            // uninterrupted run never incremented.
            let mut metrics = resumed.metrics.clone();
            assert_eq!(metrics.journal_replayed, kill_at);
            assert_eq!(
                metrics.journal_written,
                plan.requests().len() - kill_at,
                "only the remainder is appended on resume"
            );
            metrics.journal_replayed = 0;
            metrics.journal_written = 0;
            metrics.journal_truncated = 0;
            assert_eq!(metrics, reference.metrics, "kill_at={kill_at}");
            // The journal now covers the whole run: a second resume replays
            // everything and appends nothing.
            let full = DurableJournal::resume(&path).unwrap();
            assert_eq!(full.entries.len(), plan.requests().len());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_plan() {
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let instances = em_instances(4);
        let plan = plan_for(&base, &instances, 2);
        let other_plan = plan_for(&base, &em_instances(6), 2);
        assert_ne!(plan.fingerprint(), other_plan.fingerprint());

        let path = journal_path("mismatch");
        let journal = Arc::new(DurableJournal::fresh(&path, "counting", "cfg", 0).unwrap());
        Executor::serial()
            .with_durability(Durability::new().with_journal(journal))
            .run(&base, &plan);
        let recovered = DurableJournal::resume(&path).unwrap();
        let durability = Durability::new()
            .with_replay(&recovered.entries, recovered.require_header().unwrap().plan);
        let err = Executor::serial()
            .with_durability(durability)
            .try_run(&base, &other_plan)
            .unwrap_err();
        assert!(err.contains("refusing to resume"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cancelled_entries_reexecute_and_stay_unbilled_on_resume() {
        // A token budget trips mid-run: the uninterrupted run completes two
        // requests and cancels the third. Kill after the cancellation is
        // journaled; the resumed run must re-execute (not replay) the
        // cancelled request, cancel it again at the same gauge state, and
        // bill exactly the reference totals.
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let instances = em_instances(6);
        let plan = plan_for(&base, &instances, 2);
        assert_eq!(plan.requests().len(), 3);
        let options = ExecutionOptions {
            token_budget: Some(150),
            ..ExecutionOptions::default()
        };
        let reference = Executor::new(options).run(&base, &plan);
        assert_eq!(reference.stats.cancelled, 1);

        let path = journal_path("cancelled");
        let journal = Arc::new(DurableJournal::fresh(&path, "counting", "cfg", 0).unwrap());
        let kill = KillSwitch::after(3);
        let _ = Executor::new(options)
            .with_durability(Durability::new().with_journal(journal))
            .with_kill_switch(kill.clone())
            .run(&base, &plan);
        assert!(kill.fired());
        let recovered = DurableJournal::resume(&path).unwrap();
        assert_eq!(recovered.entries.len(), 3);
        assert_eq!(recovered.entries[2].kind, TerminalKind::Cancelled);
        let durability = Durability::new()
            .with_replay(&recovered.entries, recovered.require_header().unwrap().plan)
            .with_journal(Arc::new(recovered.journal));
        let resumed = Executor::new(options)
            .with_durability(durability)
            .run(&base, &plan);
        assert_eq!(resumed.predictions, reference.predictions);
        assert_eq!(resumed.stats, reference.stats);
        assert_eq!(resumed.usage.total_tokens(), reference.usage.total_tokens());
        assert_eq!(
            resumed.metrics.journal_replayed, 2,
            "cancelled entry re-executes"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn audit_tracer_passes_on_a_faulty_retried_cached_run() {
        use dprep_llm::FaultLayer;
        let base = CountingModel {
            window: 100_000,
            answer_all: true,
        };
        let audit = Arc::new(dprep_obs::AuditTracer::new());
        let tracer = audit.clone() as Arc<dyn Tracer>;
        let stack = CacheLayer::new(
            RetryLayer::new(
                FaultLayer::new(&base, 0.2, 11).with_tracer(Arc::clone(&tracer)),
                2,
            )
            .with_tracer(Arc::clone(&tracer)),
        )
        .with_tracer(Arc::clone(&tracer));
        let instances = em_instances(20);
        let plan = plan_for(&stack, &instances, 2);
        let exec = Executor::new(ExecutionOptions {
            workers: 4,
            ..ExecutionOptions::default()
        })
        .with_tracer(Arc::clone(&tracer));
        let _ = exec.run(&stack, &plan);
        // A second run replays from the shared cache and must stay clean.
        let _ = exec.run(&stack, &plan);
        audit.assert_clean();
        assert_eq!(audit.runs_audited(), 2);
    }

    #[test]
    fn unarmed_kill_switch_fires_only_on_trigger_or_rearm() {
        let kill = KillSwitch::unarmed();
        assert!(!kill.fired());
        // Terminal events never drain an unarmed countdown.
        for _ in 0..1000 {
            assert!(!kill.on_terminal());
        }
        kill.trigger();
        assert!(kill.fired());
        assert!(kill.on_terminal());

        // Clones share the countdown, so a late arm_after is observed.
        let armed = KillSwitch::unarmed();
        let clone = armed.clone();
        armed.arm_after(2);
        assert!(!clone.on_terminal());
        assert!(clone.on_terminal());
        assert!(armed.fired());
    }

    #[test]
    fn journal_write_error_names_path_and_classifies_causes() {
        use std::io::{Error, ErrorKind};
        let path = std::path::Path::new("/tmp/jobs/j1.journal");

        let full = journal_write_error(path, &Error::new(ErrorKind::StorageFull, "quota"));
        assert!(full.starts_with("journal write failed, job checkpoint incomplete:"));
        assert!(full.contains("/tmp/jobs/j1.journal"));
        assert!(full.contains("disk full"));

        let enospc = journal_write_error(path, &Error::from_raw_os_error(28));
        assert!(
            enospc.contains("disk full"),
            "raw ENOSPC maps too: {enospc}"
        );

        let short = journal_write_error(path, &Error::new(ErrorKind::WriteZero, "0 of 64"));
        assert!(short.contains("short write"));
        assert!(short.contains("/tmp/jobs/j1.journal"));

        let other = journal_write_error(path, &Error::new(ErrorKind::PermissionDenied, "denied"));
        assert!(other.contains("journal write failed, job checkpoint incomplete:"));
        assert!(!other.contains("disk full") && !other.contains("short write"));
    }
}
