//! Multi-tenant serving: the `dprep serve` daemon's scheduling core.
//!
//! Long-running deployments want one resident process accepting
//! detect/impute/clean/match jobs from several tenants at once, with each
//! tenant's spend capped and no tenant able to starve another. This module
//! supplies the pieces, bottom-up:
//!
//! * [`ShardGate`] — the executor-side fairness hook: the streaming
//!   executor brackets every plan-shard iteration with
//!   `acquire`/`release`, so concurrent jobs interleave at shard
//!   granularity. Each shard turn still uses the job's full worker pool
//!   (time-sliced fairness, not core-partitioned), so a job running alone
//!   is exactly as fast as without the gate.
//! * [`Turnstile`] — the round-robin [`ShardGate`]: registered jobs take
//!   strict turns; a finished job leaves the rotation when its handle
//!   drops.
//! * [`TenantLedger`] — per-tenant token allowances and billed totals.
//!   Admission clamps a job's own token budget to the tenant's remaining
//!   allowance, so the job runs under a private [`ExecutionOptions`]
//!   budget gauge and stays **bit-identical to a one-shot run at that
//!   clamped budget** — tenancy never perturbs a job's results, only which
//!   budget it gets.
//! * [`JobScheduler`] — admission + turnstile registration + settlement,
//!   emitting `job_accepted` / `job_completed` / `job_rejected` trace
//!   events. An optional [`OverloadPolicy`] bounds admission: in-flight
//!   slots and a bounded wait queue (global and per-tenant caps), with
//!   excess load *shed* as a structured [`Rejection`] carrying a
//!   `retry_after` hint — shed jobs bill exactly zero tokens (`job_shed`
//!   events, audit invariant 10). A policy default deadline propagates
//!   into each job's [`ExecutionOptions::deadline_secs`] budget gauge, so
//!   a job that cannot finish by its deadline is rejected at admission
//!   (non-positive deadline) or cancelled at the shard boundary with
//!   deterministic plan-order partials. The scheduler also owns the
//!   graceful-drain state machine (`serving → draining → closed`): a
//!   drain stops admitting, fires every in-flight job's checkpoint
//!   [`KillSwitch`] so journaled jobs stop at their next terminal, and
//!   closes once nothing is in flight — a restart then resumes every
//!   checkpointed job bit-identically with exactly-once billing.
//! * [`OpsPlane`] — the live observability plane: per-tenant windowed
//!   metrics ([`dprep_obs::WindowAggregator`]) and SLO burn-rate alerting
//!   ([`dprep_obs::SloEngine`]) fed by each job's trace stream, plus an
//!   optional [`dprep_obs::FlightRecorder`] that dumps a postmortem when
//!   an alert pages. Windows and alert timelines fold only the executor's
//!   plan-ordered events over the sequential-account virtual clock, so
//!   they are bit-identical across `--workers` counts and repeat runs.
//! * [`Daemon`] — the TCP front end: newline-delimited JSON requests, one
//!   thread per connection, with `ping` / `submit` / `stats` / `metrics`
//!   (Prometheus text with a `tenant` label; `"format":"raw"` returns the
//!   scrape body verbatim) / `health` (per-tenant windowed rates and alert
//!   states, for `dprep top`) / `drain` / `shutdown` operations. The
//!   workload itself is supplied as a [`JobHandler`] closure, so the
//!   daemon core stays free of dataset and model-stack dependencies. The
//!   wire layer is hardened by [`WireLimits`]: a max NDJSON frame size,
//!   an idle timeout between frames, and a frame-completion timeout, so
//!   an oversized line, binary garbage, a torn frame, or a slow-loris
//!   client costs one connection thread at worst and never stalls the
//!   accept loop or other clients.
//!
//! Everything here is std-only, like the rest of the workspace.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dprep_obs::{
    render_prom_daemon, render_prom_tenants, FlightRecorder, Json, MetricsSnapshot, NullTracer,
    SloEngine, SloSpec, TraceEvent, Tracer, WindowAggregator, WindowConfig, WindowSnapshot,
};

use crate::exec::{ExecutionOptions, KillSwitch};
use crate::pipeline::RunResult;

/// The executor's cooperative fairness hook. The streaming executor calls
/// [`acquire`](ShardGate::acquire) before planning each shard and
/// [`release`](ShardGate::release) after parsing it (release always runs,
/// even when the shard errors), so an implementation can interleave
/// concurrent jobs at shard granularity. Both calls happen on the job's
/// own thread; `acquire` may block.
pub trait ShardGate: Send + Sync {
    /// Blocks until the job holds the turn. Balanced by `release`.
    fn acquire(&self);
    /// Gives the turn up; the next waiter may proceed.
    fn release(&self);
}

/// Shared state of a [`Turnstile`]: the rotation queue, front = current
/// turn-holder.
#[derive(Debug, Default)]
struct Rotation {
    queue: VecDeque<u64>,
}

/// A round-robin [`ShardGate`]: jobs registered with [`register`]
/// (`Turnstile::register`) take strict turns in registration order, each
/// turn covering one plan shard. Dropping a job's [`TurnstileHandle`]
/// removes it from the rotation, so finished (or crashed) jobs never block
/// the others.
#[derive(Debug, Default)]
pub struct Turnstile {
    rotation: Mutex<Rotation>,
    turned: Condvar,
}

impl Turnstile {
    /// An empty turnstile.
    pub fn new() -> Arc<Turnstile> {
        Arc::new(Turnstile::default())
    }

    /// Adds `job` to the back of the rotation and returns its gate handle.
    pub fn register(self: &Arc<Self>, job: u64) -> TurnstileHandle {
        self.rotation
            .lock()
            .expect("rotation lock")
            .queue
            .push_back(job);
        self.turned.notify_all();
        TurnstileHandle {
            turnstile: Arc::clone(self),
            job,
        }
    }

    /// Jobs currently in the rotation.
    pub fn len(&self) -> usize {
        self.rotation.lock().expect("rotation lock").queue.len()
    }

    /// Whether the rotation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One job's membership in a [`Turnstile`]. Implements [`ShardGate`];
/// dropping it leaves the rotation.
#[derive(Debug)]
pub struct TurnstileHandle {
    turnstile: Arc<Turnstile>,
    job: u64,
}

impl ShardGate for TurnstileHandle {
    fn acquire(&self) {
        let mut rotation = self.turnstile.rotation.lock().expect("rotation lock");
        while rotation.queue.front() != Some(&self.job) {
            rotation = self.turnstile.turned.wait(rotation).expect("rotation lock");
        }
    }

    fn release(&self) {
        let mut rotation = self.turnstile.rotation.lock().expect("rotation lock");
        if rotation.queue.front() == Some(&self.job) {
            rotation.queue.pop_front();
            rotation.queue.push_back(self.job);
        }
        drop(rotation);
        self.turnstile.turned.notify_all();
    }
}

impl Drop for TurnstileHandle {
    fn drop(&mut self) {
        let mut rotation = self.turnstile.rotation.lock().expect("rotation lock");
        rotation.queue.retain(|&j| j != self.job);
        drop(rotation);
        self.turnstile.turned.notify_all();
    }
}

/// One tenant's ledger row.
#[derive(Debug, Clone, Default)]
struct TenantState {
    budget: Option<usize>,
    tokens_billed: usize,
    cost_usd: f64,
    jobs_active: u64,
    jobs_completed: u64,
    jobs_failed: u64,
    jobs_rejected: u64,
    jobs_tripped: u64,
    jobs_shed: u64,
}

/// A tenant's billing snapshot (see [`TenantLedger::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantUsage {
    /// Tenant name.
    pub tenant: String,
    /// The tenant's token allowance, if capped.
    pub budget: Option<usize>,
    /// Tokens billed across the tenant's completed jobs.
    pub tokens_billed: usize,
    /// Dollars billed across the tenant's completed jobs.
    pub cost_usd: f64,
    /// Jobs admitted and still running.
    pub jobs_active: u64,
    /// Jobs that completed and settled.
    pub jobs_completed: u64,
    /// Jobs that errored while running.
    pub jobs_failed: u64,
    /// Jobs turned away at admission (allowance exhausted).
    pub jobs_rejected: u64,
    /// Completed jobs whose own deadline or token budget tripped.
    pub jobs_tripped: u64,
    /// Jobs shed by the overload policy before any work (billed zero).
    pub jobs_shed: u64,
}

/// Per-tenant token allowances and billed totals.
///
/// Admission is charge-aware, not reservation-based: a job is admitted
/// with `min(its own budget, tenant remaining)` as its effective token
/// budget and bills what it actually spent at settlement. Two concurrent
/// jobs of one tenant can therefore jointly overshoot the allowance by at
/// most one job's effective budget — the same charge-then-check semantics
/// the per-run [`ExecutionOptions::token_budget`] gauge uses.
#[derive(Debug, Default)]
pub struct TenantLedger {
    tenants: Mutex<BTreeMap<String, TenantState>>,
    /// Allowance for tenants never configured explicitly (None = uncapped).
    default_budget: Option<usize>,
}

impl TenantLedger {
    /// A ledger with uncapped tenants by default.
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    /// Caps tenants that were never configured explicitly.
    pub fn with_default_budget(mut self, tokens: Option<usize>) -> TenantLedger {
        self.default_budget = tokens;
        self
    }

    /// Sets (or lifts, with `None`) a tenant's token allowance.
    pub fn set_budget(&self, tenant: &str, tokens: Option<usize>) {
        let mut tenants = self.tenants.lock().expect("ledger lock");
        tenants.entry(tenant.to_string()).or_default().budget = tokens;
    }

    /// Admission check: the effective token budget a new job of `tenant`
    /// may run under, or why it cannot run at all.
    fn admit(&self, tenant: &str, requested: Option<usize>) -> Result<Option<usize>, String> {
        let mut tenants = self.tenants.lock().expect("ledger lock");
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                budget: self.default_budget,
                ..TenantState::default()
            });
        let Some(budget) = state.budget else {
            state.jobs_active += 1;
            return Ok(requested);
        };
        let remaining = budget.saturating_sub(state.tokens_billed);
        if remaining == 0 {
            state.jobs_rejected += 1;
            return Err(format!(
                "tenant {tenant:?} token allowance exhausted ({} billed of {budget})",
                state.tokens_billed
            ));
        }
        state.jobs_active += 1;
        Ok(Some(requested.map_or(remaining, |r| r.min(remaining))))
    }

    /// Settles a finished job's bill.
    fn settle(&self, tenant: &str, tokens: usize, cost_usd: f64, tripped: bool) {
        let mut tenants = self.tenants.lock().expect("ledger lock");
        let state = tenants.entry(tenant.to_string()).or_default();
        state.tokens_billed += tokens;
        state.cost_usd += cost_usd;
        // Saturating: direct settle calls (tests, replays) may not have
        // passed admission.
        state.jobs_active = state.jobs_active.saturating_sub(1);
        state.jobs_completed += 1;
        state.jobs_tripped += u64::from(tripped);
    }

    /// Records a job that errored after admission.
    fn fail(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("ledger lock");
        let state = tenants.entry(tenant.to_string()).or_default();
        state.jobs_active = state.jobs_active.saturating_sub(1);
        state.jobs_failed += 1;
    }

    /// Records a job the overload policy shed before any work was done.
    /// Shed jobs never held an active slot and bill nothing.
    fn shed(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("ledger lock");
        tenants.entry(tenant.to_string()).or_default().jobs_shed += 1;
    }

    /// Every tenant's row, in name order.
    pub fn snapshot(&self) -> Vec<TenantUsage> {
        let tenants = self.tenants.lock().expect("ledger lock");
        tenants
            .iter()
            .map(|(tenant, s)| TenantUsage {
                tenant: tenant.clone(),
                budget: s.budget,
                tokens_billed: s.tokens_billed,
                cost_usd: s.cost_usd,
                jobs_active: s.jobs_active,
                jobs_completed: s.jobs_completed,
                jobs_failed: s.jobs_failed,
                jobs_rejected: s.jobs_rejected,
                jobs_tripped: s.jobs_tripped,
                jobs_shed: s.jobs_shed,
            })
            .collect()
    }
}

/// Declarative overload limits for a [`JobScheduler`]. Every field
/// defaults to `None` (unlimited), which reproduces the unprotected
/// behavior exactly; setting any cap turns excess load into structured
/// shedding instead of unbounded queueing.
#[derive(Debug, Clone, Default)]
pub struct OverloadPolicy {
    /// Max jobs running concurrently (holding in-flight slots).
    pub max_inflight: Option<usize>,
    /// Max jobs waiting for an in-flight slot. `None` means *no* wait
    /// queue: once in-flight slots are full, excess jobs shed immediately
    /// — a bounded queue is opt-in, queueing forever is not on the menu.
    pub max_queued: Option<usize>,
    /// Max in-flight jobs per tenant. A tenant at its cap sheds rather
    /// than queues, so one tenant cannot camp the shared wait queue.
    pub tenant_inflight: Option<usize>,
    /// Deadline applied to jobs that did not request one, in virtual
    /// seconds (propagates into [`ExecutionOptions::deadline_secs`]).
    pub default_deadline_secs: Option<f64>,
}

/// A structured admission refusal: why the job was turned away before any
/// model work, and when (if ever) a retry is worthwhile.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Refusal class: `overloaded` / `draining` / `deadline` /
    /// `budget-exhausted`.
    pub kind: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Suggested client backoff before resubmitting, in seconds.
    /// `Some` for transient refusals (overload), `None` for refusals a
    /// retry cannot fix unchanged (exhausted allowance, dead deadline).
    pub retry_after_secs: Option<f64>,
}

/// How a job submitted to [`JobScheduler::run_job`] can fail: turned away
/// at admission with a structured [`Rejection`], or admitted but errored
/// while running.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Refused before any work: overload shed, drain, dead deadline, or
    /// exhausted tenant allowance. Bills zero tokens by construction.
    Rejected(Rejection),
    /// Admitted, ran, and failed; partial spend may have been billed.
    Failed(String),
}

impl JobError {
    /// The human-readable error message.
    pub fn message(&self) -> &str {
        match self {
            JobError::Rejected(rejection) => &rejection.message,
            JobError::Failed(message) => message,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

/// A point-in-time view of the scheduler's overload gate, for `health` /
/// `stats` / Prometheus surfacing.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadSnapshot {
    /// Drain state: `serving` / `draining` / `closed`.
    pub state: &'static str,
    /// Jobs holding in-flight slots.
    pub inflight: usize,
    /// Jobs waiting in the admission queue.
    pub queued: usize,
    /// Lifetime jobs admitted past the overload gate.
    pub admitted_total: u64,
    /// Lifetime jobs shed by the overload gate.
    pub shed_total: u64,
}

/// What the scheduler grants an admitted job: its id, its turnstile gate
/// (wire it into the executor with `with_shard_gate`), its effective
/// execution options — the requested options with `token_budget` clamped
/// to the tenant's remaining allowance — and its drain halt.
pub struct JobGrant {
    /// Job id (per-scheduler, starts at 1).
    pub job: u64,
    /// The job's slot in the shard-turn rotation.
    pub gate: Arc<dyn ShardGate>,
    /// Admission-clamped execution options for the run.
    pub options: ExecutionOptions,
    /// The job's checkpoint halt: unarmed at grant, fired by a drain.
    /// Journaled handlers should wire it into the executor
    /// (`with_kill_switch`) so a drain checkpoints the job at its next
    /// journaled terminal instead of losing billed work.
    pub halt: KillSwitch,
}

/// What a finished job reports back for settlement and the reply wire.
#[derive(Debug, Clone, Default)]
pub struct JobOutcome {
    /// Extra reply fields the daemon merges into the `submit` response.
    pub reply: Vec<(String, Json)>,
    /// Tokens billed by the run (fresh attempts only).
    pub tokens_billed: usize,
    /// Dollars billed by the run.
    pub cost_usd: f64,
    /// Whether the job's own deadline or token budget tripped.
    pub budget_tripped: bool,
    /// The run's metrics snapshot, folded into the tenant's registry.
    pub metrics: MetricsSnapshot,
}

/// The overload gate's mutable state: slot occupancy under one lock so
/// every admit/shed decision sees a consistent picture.
#[derive(Debug, Default)]
struct AdmissionState {
    inflight: usize,
    queued: usize,
    per_tenant: BTreeMap<String, usize>,
}

/// Drain states, packed into an atomic for lock-free reads.
const DRAIN_SERVING: u8 = 0;
const DRAIN_DRAINING: u8 = 1;
const DRAIN_CLOSED: u8 = 2;

/// Admission, fair-share registration, and settlement for concurrent jobs.
pub struct JobScheduler {
    ledger: TenantLedger,
    turnstile: Arc<Turnstile>,
    tracer: Arc<dyn Tracer>,
    next_job: AtomicU64,
    active: AtomicU64,
    policy: OverloadPolicy,
    admission: Mutex<AdmissionState>,
    /// Signalled whenever an in-flight slot frees or a drain begins, so
    /// queued jobs re-evaluate.
    slot_freed: Condvar,
    drain_state: AtomicU8,
    /// Checkpoint halts of in-flight jobs, fired all at once by a drain.
    halts: Mutex<HashMap<u64, KillSwitch>>,
    admitted_total: AtomicU64,
    shed_total: AtomicU64,
}

impl JobScheduler {
    /// A scheduler billing against `ledger`.
    pub fn new(ledger: TenantLedger) -> JobScheduler {
        JobScheduler {
            ledger,
            turnstile: Turnstile::new(),
            tracer: Arc::new(NullTracer),
            next_job: AtomicU64::new(1),
            active: AtomicU64::new(0),
            policy: OverloadPolicy::default(),
            admission: Mutex::new(AdmissionState::default()),
            slot_freed: Condvar::new(),
            drain_state: AtomicU8::new(DRAIN_SERVING),
            halts: Mutex::new(HashMap::new()),
            admitted_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
        }
    }

    /// Streams `job_accepted` / `job_completed` / `job_rejected` /
    /// `job_shed` / `queue_depth` / `drain_transition` events into
    /// `tracer`.
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> JobScheduler {
        self.tracer = tracer;
        self
    }

    /// Bounds admission with `policy` (see [`OverloadPolicy`]).
    pub fn with_policy(mut self, policy: OverloadPolicy) -> JobScheduler {
        self.policy = policy;
        self
    }

    /// The billing ledger.
    pub fn ledger(&self) -> &TenantLedger {
        &self.ledger
    }

    /// The admission policy.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Jobs currently running.
    pub fn active_jobs(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Whether a drain has started (or finished).
    pub fn draining(&self) -> bool {
        self.drain_state.load(Ordering::Relaxed) != DRAIN_SERVING
    }

    /// The drain state's label: `serving` / `draining` / `closed`.
    pub fn drain_label(&self) -> &'static str {
        match self.drain_state.load(Ordering::Relaxed) {
            DRAIN_SERVING => "serving",
            DRAIN_DRAINING => "draining",
            _ => "closed",
        }
    }

    /// The overload gate's current occupancy and lifetime totals.
    pub fn overload_snapshot(&self) -> OverloadSnapshot {
        let st = self.admission.lock().expect("admission lock");
        OverloadSnapshot {
            state: self.drain_label(),
            inflight: st.inflight,
            queued: st.queued,
            admitted_total: self.admitted_total.load(Ordering::Relaxed),
            shed_total: self.shed_total.load(Ordering::Relaxed),
        }
    }

    /// Whether the gate is idle: no in-flight slots held and nothing
    /// queued. A draining daemon closes at this point.
    pub fn quiesced(&self) -> bool {
        let st = self.admission.lock().expect("admission lock");
        st.inflight == 0 && st.queued == 0
    }

    /// Starts a drain: stop admitting (new and queued jobs shed with kind
    /// `draining`), fire every in-flight job's checkpoint halt so
    /// journaled jobs stop at their next journaled terminal, and emit the
    /// `serving → draining` transition. Idempotent.
    pub fn drain(&self) {
        if self
            .drain_state
            .compare_exchange(
                DRAIN_SERVING,
                DRAIN_DRAINING,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return;
        }
        let inflight = self.admission.lock().expect("admission lock").inflight;
        self.tracer.record(&TraceEvent::DrainTransition {
            from: "serving",
            to: "draining",
            inflight,
        });
        for halt in self.halts.lock().expect("halts lock").values() {
            halt.trigger();
        }
        // Wake queued jobs so they shed as draining instead of waiting on
        // slots that will never be granted to them.
        self.slot_freed.notify_all();
    }

    /// Completes the drain chain once nothing is in flight: emits the
    /// `draining → closed` transition. Idempotent; no-op unless draining.
    pub fn mark_closed(&self) {
        if self
            .drain_state
            .compare_exchange(
                DRAIN_DRAINING,
                DRAIN_CLOSED,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.tracer.record(&TraceEvent::DrainTransition {
                from: "draining",
                to: "closed",
                inflight: 0,
            });
        }
    }

    /// Books a shed: the zero-billing rejection trace plus per-tenant and
    /// lifetime counters. `queued`/`inflight` are the gate occupancy the
    /// decision was made against.
    fn book_shed(
        &self,
        job: u64,
        tenant: &str,
        rejection: &Rejection,
        queued: usize,
        inflight: usize,
    ) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
        self.ledger.shed(tenant);
        self.tracer.record(&TraceEvent::JobShed {
            job,
            tenant: tenant.to_string(),
            reason: rejection.kind.to_string(),
            retry_after_secs: rejection.retry_after_secs.unwrap_or(0.0),
            queued,
            inflight,
        });
    }

    /// The backoff hint for an overload shed: longer the deeper the
    /// backlog, so colliding clients spread their retries.
    fn retry_after(queued: usize, inflight: usize) -> f64 {
        0.5 * (queued + inflight + 1) as f64
    }

    /// Takes an in-flight slot for `job`, waiting in the bounded queue
    /// when the policy allows, or sheds. On `Ok` the slot is held and must
    /// be released with [`release_slot`](Self::release_slot).
    fn acquire_slot(&self, tenant: &str, job: u64) -> Result<(), Rejection> {
        let mut st = self.admission.lock().expect("admission lock");
        let mut queued_here = false;
        loop {
            if self.draining() {
                if queued_here {
                    st.queued -= 1;
                }
                let rejection = Rejection {
                    kind: "draining",
                    message: "daemon is draining and admits no new jobs".to_string(),
                    retry_after_secs: None,
                };
                self.book_shed(job, tenant, &rejection, st.queued, st.inflight);
                return Err(rejection);
            }
            let tenant_held = st.per_tenant.get(tenant).copied().unwrap_or(0);
            let tenant_capped = self
                .policy
                .tenant_inflight
                .is_some_and(|cap| tenant_held >= cap);
            let capped = self
                .policy
                .max_inflight
                .is_some_and(|cap| st.inflight >= cap);
            if !capped && !tenant_capped {
                st.inflight += 1;
                *st.per_tenant.entry(tenant.to_string()).or_default() += 1;
                if queued_here {
                    st.queued -= 1;
                }
                self.tracer.record(&TraceEvent::QueueDepth {
                    queued: st.queued,
                    inflight: st.inflight,
                });
                return Ok(());
            }
            // A tenant at its own cap sheds instead of queueing, so one
            // tenant cannot occupy the shared queue; likewise a full
            // queue sheds instead of blocking the wire thread forever.
            let queue_full = st.queued >= self.policy.max_queued.unwrap_or(0);
            if !queued_here && (tenant_capped || queue_full) {
                let rejection = Rejection {
                    kind: "overloaded",
                    message: if tenant_capped {
                        format!(
                            "tenant {tenant:?} is at its concurrency cap \
                             ({tenant_held} in flight)"
                        )
                    } else {
                        format!(
                            "admission queue is full ({} queued, {} in flight)",
                            st.queued, st.inflight
                        )
                    },
                    retry_after_secs: Some(Self::retry_after(st.queued, st.inflight)),
                };
                self.book_shed(job, tenant, &rejection, st.queued, st.inflight);
                return Err(rejection);
            }
            if !queued_here {
                st.queued += 1;
                queued_here = true;
                self.tracer.record(&TraceEvent::QueueDepth {
                    queued: st.queued,
                    inflight: st.inflight,
                });
            }
            st = self.slot_freed.wait(st).expect("admission lock");
        }
    }

    /// Releases `tenant`'s in-flight slot and wakes one queued waiter.
    fn release_slot(&self, tenant: &str) {
        let mut st = self.admission.lock().expect("admission lock");
        st.inflight = st.inflight.saturating_sub(1);
        if let Some(held) = st.per_tenant.get_mut(tenant) {
            *held = held.saturating_sub(1);
            if *held == 0 {
                st.per_tenant.remove(tenant);
            }
        }
        drop(st);
        self.slot_freed.notify_all();
    }

    /// Admits, runs, and settles one job on the calling thread.
    ///
    /// `body` receives the [`JobGrant`] and must run the workload under
    /// `grant.options` with `grant.gate` wired into the executor
    /// (`with_shard_gate`), returning the outcome to bill. The grant's
    /// turnstile slot is freed when `body` returns, whatever the result.
    ///
    /// Admission proceeds in deterministic stages: a non-positive
    /// deadline sheds (`deadline`), then the overload gate sheds or
    /// queues (`overloaded` / `draining`), then the tenant ledger rejects
    /// an exhausted allowance (`budget-exhausted`). Every refusal is a
    /// [`JobError::Rejected`] that billed zero tokens; a failure from
    /// `body` is [`JobError::Failed`].
    pub fn run_job(
        &self,
        tenant: &str,
        requested: ExecutionOptions,
        body: impl FnOnce(&JobGrant) -> Result<JobOutcome, String>,
    ) -> Result<(u64, JobOutcome), JobError> {
        let mut requested = requested;
        if requested.deadline_secs.is_none() {
            requested.deadline_secs = self.policy.default_deadline_secs;
        }
        let job = self.next_job.fetch_add(1, Ordering::Relaxed);
        if let Some(deadline) = requested.deadline_secs {
            if deadline <= 0.0 {
                let rejection = Rejection {
                    kind: "deadline",
                    message: format!(
                        "job cannot finish by its deadline ({deadline}s at admission)"
                    ),
                    retry_after_secs: None,
                };
                let (queued, inflight) = {
                    let st = self.admission.lock().expect("admission lock");
                    (st.queued, st.inflight)
                };
                self.book_shed(job, tenant, &rejection, queued, inflight);
                return Err(JobError::Rejected(rejection));
            }
        }
        self.acquire_slot(tenant, job).map_err(JobError::Rejected)?;
        let effective_budget = match self.ledger.admit(tenant, requested.token_budget) {
            Ok(budget) => budget,
            Err(reason) => {
                self.release_slot(tenant);
                self.tracer.record(&TraceEvent::JobRejected {
                    tenant: tenant.to_string(),
                    reason: reason.clone(),
                });
                return Err(JobError::Rejected(Rejection {
                    kind: "budget-exhausted",
                    message: reason,
                    retry_after_secs: None,
                }));
            }
        };
        let halt = KillSwitch::unarmed();
        self.halts
            .lock()
            .expect("halts lock")
            .insert(job, halt.clone());
        // Close the race with a drain that fired between slot acquisition
        // and halt registration: its trigger sweep may have missed us.
        if self.draining() {
            halt.trigger();
        }
        let grant = JobGrant {
            job,
            gate: Arc::new(self.turnstile.register(job)),
            options: ExecutionOptions {
                token_budget: effective_budget,
                ..requested
            },
            halt,
        };
        self.tracer.record(&TraceEvent::JobAccepted {
            job,
            tenant: tenant.to_string(),
        });
        self.admitted_total.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
        let result = body(&grant);
        drop(grant);
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.halts.lock().expect("halts lock").remove(&job);
        match &result {
            Ok(outcome) => {
                self.ledger.settle(
                    tenant,
                    outcome.tokens_billed,
                    outcome.cost_usd,
                    outcome.budget_tripped,
                );
                self.tracer.record(&TraceEvent::JobCompleted {
                    job,
                    tenant: tenant.to_string(),
                    tokens: outcome.tokens_billed,
                    cost_usd: outcome.cost_usd,
                    budget_tripped: outcome.budget_tripped,
                });
            }
            Err(reason) => {
                self.ledger.fail(tenant);
                self.tracer.record(&TraceEvent::JobRejected {
                    tenant: tenant.to_string(),
                    reason: reason.clone(),
                });
            }
        }
        self.release_slot(tenant);
        result
            .map(|outcome| (job, outcome))
            .map_err(JobError::Failed)
    }
}

/// One tenant's slice of the ops plane: its sliding window, its SLO
/// engine, and the alert timeline accumulated so far.
struct TenantOps {
    window: WindowAggregator,
    slo: SloEngine,
    timeline: Vec<TraceEvent>,
}

/// One tenant's live view, as reported by [`OpsPlane::health`] and the
/// daemon's `health` op.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantHealth {
    /// Tenant name.
    pub tenant: String,
    /// The tenant's windowed snapshot.
    pub window: WindowSnapshot,
    /// `(objective, alert state, burn_long, burn_short)` per objective.
    pub slos: Vec<(&'static str, &'static str, f64, f64)>,
    /// Alert transitions observed so far.
    pub transitions: usize,
}

/// The daemon's live observability plane.
///
/// One [`WindowAggregator`] + [`SloEngine`] pair per tenant, fed through
/// [`tracer_for`](Self::tracer_for) handles wired into each job's
/// preprocessor. Both consumers fold only the executor's plan-ordered
/// events (worker-thread `dispatched` events mutate nothing), and each
/// tenant's clock is the sequential-account virtual time of its own
/// stream, so windows and alert timelines are deterministic per tenant as
/// long as the tenant's jobs run sequentially — concurrency *across*
/// tenants never perturbs them. An optional [`FlightRecorder`] receives
/// every event plus the emitted transitions, dumping a postmortem when an
/// alert reaches `paging`.
pub struct OpsPlane {
    specs: Vec<SloSpec>,
    config: WindowConfig,
    tenants: Mutex<BTreeMap<String, TenantOps>>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl OpsPlane {
    /// A plane evaluating `specs` over windows of `config` geometry.
    pub fn new(specs: Vec<SloSpec>, config: WindowConfig) -> OpsPlane {
        OpsPlane {
            specs,
            config,
            tenants: Mutex::new(BTreeMap::new()),
            recorder: None,
        }
    }

    /// Attaches a flight recorder (postmortem dumps on paging alerts).
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> OpsPlane {
        self.recorder = Some(recorder);
        self
    }

    /// The recorder, if one is attached.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// A [`Tracer`] handle that attributes every event it records to
    /// `tenant`. Wire one into each job's preprocessor.
    pub fn tracer_for(self: &Arc<Self>, tenant: &str) -> Arc<dyn Tracer> {
        Arc::new(OpsTracer {
            plane: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    /// Feeds one of `tenant`'s events through its window and SLO engine,
    /// recording it (and any alert transitions) into the flight recorder.
    pub fn observe(&self, tenant: &str, event: &TraceEvent) {
        if let Some(recorder) = &self.recorder {
            recorder.record(event);
        }
        let mut tenants = self.tenants.lock().expect("ops plane lock");
        let ops = Self::entry(&mut tenants, &self.specs, self.config, tenant);
        ops.window.observe(event);
        let vt = ops.window.vt_secs();
        let transitions = ops.slo.observe(event, vt);
        ops.timeline.extend(transitions.iter().cloned());
        drop(tenants);
        self.record_transitions(&transitions);
    }

    /// Reports `tenant`'s current budget headroom fraction (remaining /
    /// allowance) to its headroom objective, if one is configured.
    pub fn note_headroom(&self, tenant: &str, fraction: f64) {
        let mut tenants = self.tenants.lock().expect("ops plane lock");
        let ops = Self::entry(&mut tenants, &self.specs, self.config, tenant);
        let vt = ops.window.vt_secs();
        let transitions = ops.slo.note_headroom(fraction, vt);
        ops.timeline.extend(transitions.iter().cloned());
        drop(tenants);
        self.record_transitions(&transitions);
    }

    /// Feeds alert transitions to the recorder, where a `paging`
    /// transition triggers the postmortem dump. Runs outside the plane
    /// lock — dumping writes a file.
    fn record_transitions(&self, transitions: &[TraceEvent]) {
        if let Some(recorder) = &self.recorder {
            for transition in transitions {
                recorder.record(transition);
            }
        }
    }

    fn entry<'a>(
        tenants: &'a mut BTreeMap<String, TenantOps>,
        specs: &[SloSpec],
        config: WindowConfig,
        tenant: &str,
    ) -> &'a mut TenantOps {
        tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantOps {
                window: WindowAggregator::new(config),
                slo: SloEngine::new(tenant, specs, config),
                timeline: Vec::new(),
            })
    }

    /// Every tenant's live view, in name order.
    pub fn health(&self) -> Vec<TenantHealth> {
        let tenants = self.tenants.lock().expect("ops plane lock");
        tenants
            .iter()
            .map(|(tenant, ops)| TenantHealth {
                tenant: tenant.clone(),
                window: ops.window.snapshot(),
                slos: ops.slo.states(),
                transitions: ops.timeline.len(),
            })
            .collect()
    }

    /// Every tenant's alert timeline (transition events in emission
    /// order), in name order — the determinism drills compare these
    /// byte-for-byte across worker counts.
    pub fn timelines(&self) -> BTreeMap<String, Vec<TraceEvent>> {
        let tenants = self.tenants.lock().expect("ops plane lock");
        tenants
            .iter()
            .map(|(tenant, ops)| (tenant.clone(), ops.timeline.clone()))
            .collect()
    }
}

/// The per-tenant [`Tracer`] handle [`OpsPlane::tracer_for`] hands out.
struct OpsTracer {
    plane: Arc<OpsPlane>,
    tenant: String,
}

impl Tracer for OpsTracer {
    fn record(&self, event: &TraceEvent) {
        self.plane.observe(&self.tenant, event);
    }
}

/// A stable 64-bit digest of a run's observable outcome (predictions,
/// usage totals, serving counters). Two runs are bit-identical for serving
/// purposes exactly when their fingerprints match; the daemon returns it
/// on every `submit` so clients can compare against a one-shot run without
/// shipping predictions over the wire.
pub fn result_fingerprint(result: &RunResult) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |text: &str| {
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&format!("{:?}", result.predictions));
    eat(&format!("{:?}", result.usage));
    eat(&format!("{:?}", result.stats));
    hash
}

/// The daemon's workload: given the parsed `submit` request body and the
/// scheduler's grant, run the job and report its outcome. Implementations
/// must run under `grant.options` and wire `grant.gate` into the executor
/// — the daemon cannot enforce either from outside the closure.
pub type JobHandler = dyn Fn(&Json, &JobGrant) -> Result<JobOutcome, String> + Send + Sync;

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Wire-level protection limits for one daemon connection. Defaults are
/// generous for interactive clients but bounded, so a single hostile or
/// broken peer (an oversized line, a byte-at-a-time slow loris, a client
/// that connects and never writes) occupies at most one connection thread
/// for a bounded time and never affects the accept loop.
#[derive(Debug, Clone)]
pub struct WireLimits {
    /// Max bytes in one NDJSON request line (excluding the newline).
    /// Oversized frames answer an error naming the limit, then close.
    pub max_frame_bytes: usize,
    /// Max wall seconds to finish a frame once its first byte arrived
    /// (slow-loris protection). Timed-out frames answer an error, then
    /// close.
    pub frame_secs: f64,
    /// Max wall seconds a connection may sit idle between frames (a
    /// client that connects but never writes). Idle connections close
    /// silently.
    pub idle_secs: f64,
    /// Write timeout for replies, in wall seconds (a client that stops
    /// reading cannot pin the thread on a full socket buffer).
    pub write_secs: f64,
}

impl Default for WireLimits {
    fn default() -> WireLimits {
        WireLimits {
            max_frame_bytes: 256 * 1024,
            frame_secs: 10.0,
            idle_secs: 300.0,
            write_secs: 10.0,
        }
    }
}

/// How one attempt to read a request frame ended (see
/// [`Daemon::read_frame`]).
enum FrameOutcome {
    /// A complete line (newline excluded).
    Frame(Vec<u8>),
    /// EOF at a frame boundary: clean close.
    Closed,
    /// EOF mid-frame: the client died leaving a torn frame.
    Torn,
    /// The frame exceeded [`WireLimits::max_frame_bytes`].
    Oversized,
    /// No frame started within [`WireLimits::idle_secs`].
    Idle,
    /// A started frame did not finish within [`WireLimits::frame_secs`].
    Stalled,
    /// The daemon is shutting down.
    Shutdown,
}

/// The `dprep serve` TCP front end: newline-delimited JSON over a
/// listening socket, one thread per connection, jobs scheduled through a
/// [`JobScheduler`].
///
/// Requests are single-line JSON objects with an `"op"` field:
///
/// ```text
/// {"op":"ping"}
/// {"op":"submit","tenant":"acme", ...handler-defined fields...}
/// {"op":"stats"}
/// {"op":"metrics"}                 -> Prometheus text inside a JSON reply
/// {"op":"metrics","format":"raw"}  -> the scrape body verbatim, then EOF
/// {"op":"health"}                  -> per-tenant windows + alert states
/// {"op":"shutdown"}
/// ```
///
/// Every response is a single-line JSON object with `"ok"` and, on
/// failure, `"error"` — except raw metrics, which answers with the
/// Prometheus text body and closes the connection (real scrapers read to
/// EOF and cannot unwrap JSON). A connection serves requests sequentially;
/// concurrency comes from concurrent connections.
pub struct Daemon {
    listener: TcpListener,
    scheduler: JobScheduler,
    handler: Arc<JobHandler>,
    tenants: Mutex<BTreeMap<String, MetricsSnapshot>>,
    ops: Option<Arc<OpsPlane>>,
    shutdown: AtomicBool,
    wire: WireLimits,
}

/// One request's answer: a JSON reply line, or a raw body that ends the
/// connection (the `metrics` op's `"format":"raw"` scrape mode).
enum Reply {
    Line(Json),
    Raw(String),
}

impl Daemon {
    /// Binds `addr` (use port 0 for an ephemeral port) and prepares the
    /// daemon. Call [`run`](Self::run) to serve.
    pub fn bind(
        addr: impl ToSocketAddrs,
        scheduler: JobScheduler,
        handler: Arc<JobHandler>,
    ) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Daemon {
            listener,
            scheduler,
            handler,
            tenants: Mutex::new(BTreeMap::new()),
            ops: None,
            shutdown: AtomicBool::new(false),
            wire: WireLimits::default(),
        })
    }

    /// Replaces the default [`WireLimits`].
    pub fn with_wire_limits(mut self, wire: WireLimits) -> Daemon {
        self.wire = wire;
        self
    }

    /// Attaches a live ops plane: jobs should be traced through
    /// [`OpsPlane::tracer_for`], and the `health` op starts answering
    /// per-tenant windows and alert states.
    pub fn with_ops(mut self, ops: Arc<OpsPlane>) -> Daemon {
        self.ops = Some(ops);
        self
    }

    /// The attached ops plane, if any.
    pub fn ops(&self) -> Option<&Arc<OpsPlane>> {
        self.ops.as_ref()
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The job scheduler (ledger access for tests and reports).
    pub fn scheduler(&self) -> &JobScheduler {
        &self.scheduler
    }

    /// A copy of the per-tenant metrics registry.
    pub fn tenant_metrics(&self) -> BTreeMap<String, MetricsSnapshot> {
        self.tenants.lock().expect("tenant metrics lock").clone()
    }

    /// Asks the accept loop to stop (also reachable over the wire via
    /// `{"op":"shutdown"}`). In-flight jobs finish first.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Serves until shutdown is requested — or until a drain quiesces
    /// (no jobs in flight, none queued), which completes the drain chain
    /// (`draining → closed`) and stops accepting. Either way the loop
    /// then waits for in-flight connections to finish.
    pub fn run(&self) -> std::io::Result<()> {
        let result = std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::Relaxed) {
                if self.scheduler.draining() && self.scheduler.quiesced() {
                    self.request_shutdown();
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        scope.spawn(move || self.serve_connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        // All connection threads have joined: nothing can be in flight.
        self.scheduler.mark_closed();
        result
    }

    /// One connection: read a frame, answer a line, until EOF, a wire
    /// violation, or shutdown. Wire violations ([`WireLimits`]) cost this
    /// connection only — the reply (when the peer deserves one) names the
    /// violation, then the connection closes.
    fn serve_connection(&self, stream: TcpStream) {
        // The read timeout bounds how often the frame reader can poll the
        // shutdown flag and its wall clocks, not how long a request may
        // take; the write timeout stops a non-reading peer from pinning
        // this thread on a full socket buffer.
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let _ = stream.set_write_timeout(Some(Duration::from_secs_f64(self.wire.write_secs)));
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        loop {
            let frame = match self.read_frame(&mut reader) {
                FrameOutcome::Frame(frame) => frame,
                FrameOutcome::Closed
                | FrameOutcome::Torn
                | FrameOutcome::Idle
                | FrameOutcome::Shutdown => return,
                FrameOutcome::Oversized => {
                    let _ = writeln!(
                        writer,
                        "{}",
                        error_reply(&format!(
                            "request line exceeds the {}-byte frame limit",
                            self.wire.max_frame_bytes
                        ))
                        .to_json()
                    );
                    return;
                }
                FrameOutcome::Stalled => {
                    let _ = writeln!(
                        writer,
                        "{}",
                        error_reply(&format!(
                            "request frame not completed within {}s",
                            self.wire.frame_secs
                        ))
                        .to_json()
                    );
                    return;
                }
            };
            let Ok(line) = std::str::from_utf8(&frame) else {
                let _ = writeln!(
                    writer,
                    "{}",
                    error_reply("request line is not valid UTF-8").to_json()
                );
                return;
            };
            match self.dispatch(line.trim()) {
                Reply::Line(json) => {
                    if writeln!(writer, "{}", json.to_json()).is_err() {
                        return;
                    }
                }
                // A raw body is a one-shot scrape: write it and close, so
                // the scraper reads to EOF.
                Reply::Raw(body) => {
                    let _ = writer.write_all(body.as_bytes());
                    return;
                }
            }
        }
    }

    /// Reads one newline-terminated frame under the wire limits. The
    /// frame clock starts at the frame's first byte and never resets on
    /// progress, so a byte-at-a-time slow loris still times out; the idle
    /// clock only runs while no frame has started.
    fn read_frame(&self, reader: &mut BufReader<TcpStream>) -> FrameOutcome {
        let idle_limit = Duration::from_secs_f64(self.wire.idle_secs);
        let frame_limit = Duration::from_secs_f64(self.wire.frame_secs);
        let idle_since = Instant::now();
        let mut frame_since: Option<Instant> = None;
        let mut frame: Vec<u8> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return FrameOutcome::Shutdown;
            }
            match frame_since {
                Some(started) if started.elapsed() >= frame_limit => {
                    return FrameOutcome::Stalled;
                }
                None if idle_since.elapsed() >= idle_limit => {
                    return FrameOutcome::Idle;
                }
                _ => {}
            }
            /// What one buffered chunk produced, decided before `consume`.
            enum Chunk {
                Complete,
                Partial,
                Oversized,
            }
            let (advance, progress) = match reader.fill_buf() {
                Ok([]) => {
                    return if frame.is_empty() {
                        FrameOutcome::Closed
                    } else {
                        FrameOutcome::Torn
                    };
                }
                Ok(chunk) => {
                    frame_since.get_or_insert_with(Instant::now);
                    if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                        if frame.len() + pos > self.wire.max_frame_bytes {
                            (pos + 1, Chunk::Oversized)
                        } else {
                            frame.extend_from_slice(&chunk[..pos]);
                            (pos + 1, Chunk::Complete)
                        }
                    } else if frame.len() + chunk.len() > self.wire.max_frame_bytes {
                        (chunk.len(), Chunk::Oversized)
                    } else {
                        frame.extend_from_slice(chunk);
                        (chunk.len(), Chunk::Partial)
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => return FrameOutcome::Torn,
            };
            reader.consume(advance);
            match progress {
                Chunk::Complete => return FrameOutcome::Frame(frame),
                Chunk::Oversized => return FrameOutcome::Oversized,
                Chunk::Partial => {}
            }
        }
    }

    /// Routes one request line to its operation.
    fn dispatch(&self, line: &str) -> Reply {
        if line.is_empty() {
            return Reply::Line(error_reply("empty request line"));
        }
        let body = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return Reply::Line(error_reply(&format!("malformed request: {e}"))),
        };
        Reply::Line(match body.get("op").and_then(Json::as_str) {
            Some("ping") => Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("pong".to_string(), Json::Bool(true)),
                (
                    "active_jobs".to_string(),
                    Json::Num(self.scheduler.active_jobs() as f64),
                ),
            ]),
            Some("submit") => self.submit(&body),
            Some("stats") => self.stats(),
            Some("metrics") => {
                if body.get("format").and_then(Json::as_str) == Some("raw") {
                    return Reply::Raw(self.prom_body());
                }
                Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("prom".to_string(), Json::Str(self.prom_body())),
                ])
            }
            Some("health") => self.health(),
            Some("drain") => {
                self.scheduler.drain();
                let overload = self.scheduler.overload_snapshot();
                Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("draining".to_string(), Json::Bool(true)),
                    ("state".to_string(), Json::Str(overload.state.to_string())),
                    ("inflight".to_string(), Json::Num(overload.inflight as f64)),
                    ("queued".to_string(), Json::Num(overload.queued as f64)),
                ])
            }
            Some("shutdown") => {
                // Shutdown is a drain plus an immediate stop-accepting:
                // in-flight jobs finish or checkpoint to their journals
                // before the process exits, so billed work survives.
                self.scheduler.drain();
                self.request_shutdown();
                Json::Obj(vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("shutting_down".to_string(), Json::Bool(true)),
                ])
            }
            Some(other) => error_reply(&format!("unknown op {other:?}")),
            None => error_reply("request has no \"op\" field"),
        })
    }

    /// The `health` reply: per-tenant windowed rates, SLO alert states,
    /// and ledger headroom — everything `dprep top` renders. Tenants are
    /// the union of the ops plane's and the ledger's, in name order.
    fn health(&self) -> Json {
        let ledger: BTreeMap<String, TenantUsage> = self
            .scheduler
            .ledger()
            .snapshot()
            .into_iter()
            .map(|row| (row.tenant.clone(), row))
            .collect();
        let plane: BTreeMap<String, TenantHealth> = self
            .ops
            .as_ref()
            .map(|ops| {
                ops.health()
                    .into_iter()
                    .map(|h| (h.tenant.clone(), h))
                    .collect()
            })
            .unwrap_or_default();
        let names: std::collections::BTreeSet<String> =
            ledger.keys().chain(plane.keys()).cloned().collect();
        let tenants: Vec<Json> = names
            .into_iter()
            .map(|name| {
                let mut fields = vec![("tenant".to_string(), Json::Str(name.clone()))];
                if let Some(row) = ledger.get(&name) {
                    fields.push((
                        "budget".to_string(),
                        row.budget.map_or(Json::Null, |b| Json::Num(b as f64)),
                    ));
                    fields.push((
                        "tokens_billed".to_string(),
                        Json::Num(row.tokens_billed as f64),
                    ));
                    fields.push((
                        "headroom".to_string(),
                        row.budget.map_or(Json::Null, |budget| {
                            Json::Num(if budget == 0 {
                                0.0
                            } else {
                                budget.saturating_sub(row.tokens_billed) as f64 / budget as f64
                            })
                        }),
                    ));
                    fields.push(("jobs_active".to_string(), Json::Num(row.jobs_active as f64)));
                    fields.push((
                        "jobs_completed".to_string(),
                        Json::Num(row.jobs_completed as f64),
                    ));
                    fields.push(("jobs_shed".to_string(), Json::Num(row.jobs_shed as f64)));
                }
                if let Some(health) = plane.get(&name) {
                    fields.push(("window".to_string(), health.window.to_json()));
                    let slos: Vec<Json> = health
                        .slos
                        .iter()
                        .map(|(slo, state, burn_long, burn_short)| {
                            Json::Obj(vec![
                                ("slo".to_string(), Json::Str((*slo).to_string())),
                                ("state".to_string(), Json::Str((*state).to_string())),
                                ("burn_long".to_string(), Json::Num(*burn_long)),
                                ("burn_short".to_string(), Json::Num(*burn_short)),
                            ])
                        })
                        .collect();
                    fields.push(("slos".to_string(), Json::Arr(slos)));
                    fields.push((
                        "transitions".to_string(),
                        Json::Num(health.transitions as f64),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        let overload = self.scheduler.overload_snapshot();
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            (
                "active_jobs".to_string(),
                Json::Num(self.scheduler.active_jobs() as f64),
            ),
            ("state".to_string(), Json::Str(overload.state.to_string())),
            ("inflight".to_string(), Json::Num(overload.inflight as f64)),
            ("queued".to_string(), Json::Num(overload.queued as f64)),
            (
                "admitted_jobs".to_string(),
                Json::Num(overload.admitted_total as f64),
            ),
            (
                "shed_jobs".to_string(),
                Json::Num(overload.shed_total as f64),
            ),
            ("has_ops".to_string(), Json::Bool(self.ops.is_some())),
            ("tenants".to_string(), Json::Arr(tenants)),
        ])
    }

    /// Reports `tenant`'s post-settlement budget headroom to the ops
    /// plane's headroom objective. Uncapped tenants report nothing —
    /// headroom is undefined without an allowance.
    fn note_headroom(&self, tenant: &str) {
        let Some(ops) = &self.ops else { return };
        let row = self
            .scheduler
            .ledger()
            .snapshot()
            .into_iter()
            .find(|row| row.tenant == tenant);
        if let Some(row) = row {
            if let Some(budget) = row.budget {
                let fraction = if budget == 0 {
                    0.0
                } else {
                    budget.saturating_sub(row.tokens_billed) as f64 / budget as f64
                };
                ops.note_headroom(tenant, fraction);
            }
        }
    }

    /// Runs one `submit` request through the scheduler and handler. The
    /// job's deadline comes from `deadline_secs` (virtual seconds) or the
    /// wire-friendly `deadline_ms` alias; an explicit `deadline_secs`
    /// wins when both are present, and the scheduler's policy default
    /// applies when neither is.
    fn submit(&self, body: &Json) -> Json {
        let tenant = body
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("default")
            .to_string();
        let deadline_secs = body
            .get("deadline_secs")
            .and_then(Json::as_f64)
            .or_else(|| {
                body.get("deadline_ms")
                    .and_then(Json::as_f64)
                    .map(|ms| ms / 1000.0)
            });
        let requested = ExecutionOptions {
            workers: body
                .get("workers")
                .and_then(Json::as_usize)
                .unwrap_or(1)
                .max(1),
            token_budget: body.get("token_budget").and_then(Json::as_usize),
            deadline_secs,
            ..ExecutionOptions::default()
        };
        match self
            .scheduler
            .run_job(&tenant, requested, |grant| (self.handler)(body, grant))
        {
            Ok((job, outcome)) => {
                self.tenants
                    .lock()
                    .expect("tenant metrics lock")
                    .entry(tenant.clone())
                    .or_default()
                    .merge(&outcome.metrics);
                self.note_headroom(&tenant);
                let mut fields = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("job".to_string(), Json::Num(job as f64)),
                    ("tenant".to_string(), Json::Str(tenant)),
                    (
                        "tokens_billed".to_string(),
                        Json::Num(outcome.tokens_billed as f64),
                    ),
                    ("cost_usd".to_string(), Json::Num(outcome.cost_usd)),
                    (
                        "budget_tripped".to_string(),
                        Json::Bool(outcome.budget_tripped),
                    ),
                ];
                fields.extend(outcome.reply);
                Json::Obj(fields)
            }
            // A structured rejection tells the client what to do next:
            // back off (`retry_after`), stop (drain), or fix the request.
            Err(JobError::Rejected(rejection)) => {
                let mut fields = vec![
                    ("ok".to_string(), Json::Bool(false)),
                    (
                        "rejected".to_string(),
                        Json::Str(rejection.kind.to_string()),
                    ),
                    ("error".to_string(), Json::Str(rejection.message)),
                ];
                if let Some(after) = rejection.retry_after_secs {
                    fields.push(("retry_after".to_string(), Json::Num(after)));
                }
                Json::Obj(fields)
            }
            Err(JobError::Failed(e)) => error_reply(&e),
        }
    }

    /// The Prometheus scrape body: tenant-labeled series plus the
    /// daemon-level overload gauges.
    fn prom_body(&self) -> String {
        let mut body = render_prom_tenants(&self.tenant_metrics());
        let overload = self.scheduler.overload_snapshot();
        body.push_str(&render_prom_daemon(&[
            (
                "dprep_daemon_admitted_jobs_total",
                "counter",
                "Jobs admitted past the overload gate.",
                overload.admitted_total as f64,
            ),
            (
                "dprep_daemon_shed_jobs_total",
                "counter",
                "Jobs shed by the overload policy (billed zero tokens).",
                overload.shed_total as f64,
            ),
            (
                "dprep_daemon_queue_depth",
                "gauge",
                "Jobs waiting in the admission queue.",
                overload.queued as f64,
            ),
            (
                "dprep_daemon_inflight_jobs",
                "gauge",
                "Jobs holding in-flight slots.",
                overload.inflight as f64,
            ),
            (
                "dprep_daemon_draining",
                "gauge",
                "1 once a drain has started (draining or closed).",
                if overload.state == "serving" {
                    0.0
                } else {
                    1.0
                },
            ),
        ]));
        body
    }

    /// The `stats` reply: active jobs plus every tenant's ledger row.
    fn stats(&self) -> Json {
        let tenants = self
            .scheduler
            .ledger()
            .snapshot()
            .into_iter()
            .map(|row| {
                Json::Obj(vec![
                    ("tenant".to_string(), Json::Str(row.tenant)),
                    (
                        "budget".to_string(),
                        row.budget.map_or(Json::Null, |b| Json::Num(b as f64)),
                    ),
                    (
                        "tokens_billed".to_string(),
                        Json::Num(row.tokens_billed as f64),
                    ),
                    ("cost_usd".to_string(), Json::Num(row.cost_usd)),
                    ("jobs_active".to_string(), Json::Num(row.jobs_active as f64)),
                    (
                        "jobs_completed".to_string(),
                        Json::Num(row.jobs_completed as f64),
                    ),
                    ("jobs_failed".to_string(), Json::Num(row.jobs_failed as f64)),
                    (
                        "jobs_rejected".to_string(),
                        Json::Num(row.jobs_rejected as f64),
                    ),
                    (
                        "jobs_tripped".to_string(),
                        Json::Num(row.jobs_tripped as f64),
                    ),
                    ("jobs_shed".to_string(), Json::Num(row.jobs_shed as f64)),
                ])
            })
            .collect();
        let overload = self.scheduler.overload_snapshot();
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            (
                "active_jobs".to_string(),
                Json::Num(self.scheduler.active_jobs() as f64),
            ),
            ("state".to_string(), Json::Str(overload.state.to_string())),
            ("inflight".to_string(), Json::Num(overload.inflight as f64)),
            ("queued".to_string(), Json::Num(overload.queued as f64)),
            (
                "admitted_jobs".to_string(),
                Json::Num(overload.admitted_total as f64),
            ),
            (
                "shed_jobs".to_string(),
                Json::Num(overload.shed_total as f64),
            ),
            ("tenants".to_string(), Json::Arr(tenants)),
        ])
    }
}

/// A failed reply line.
fn error_reply(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.to_string())),
    ])
}

/// Client-side helper: sends one request line on `stream` and parses the
/// single-line reply. Used by the CLI's self-check, the chaos soak drill,
/// and the e2e tests; exported so external clients don't re-implement the
/// framing.
pub fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Json,
) -> Result<Json, String> {
    writeln!(stream, "{}", request.to_json()).map_err(|e| format!("send failed: {e}"))?;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Err("daemon closed the connection".to_string()),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(format!("receive failed: {e}")),
        }
    }
    Json::parse(line.trim()).map_err(|e| format!("malformed reply: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_obs::PAGE_FACTOR;

    #[test]
    fn turnstile_rotates_strictly_and_drops_finished_jobs() {
        let turnstile = Turnstile::new();
        let a = turnstile.register(1);
        let b = turnstile.register(2);
        assert_eq!(turnstile.len(), 2);

        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for (handle, label) in [(&a, 'a'), (&b, 'b')] {
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    for _ in 0..3 {
                        handle.acquire();
                        order.lock().unwrap().push(label);
                        handle.release();
                    }
                });
            }
        });
        // Strict alternation starting with the first registrant: the
        // rotation is deterministic even though thread scheduling is not.
        assert_eq!(*order.lock().unwrap(), vec!['a', 'b', 'a', 'b', 'a', 'b']);

        drop(a);
        assert_eq!(turnstile.len(), 1);
        // With `a` gone, `b` holds every turn and never blocks.
        b.acquire();
        b.release();
        drop(b);
        assert!(turnstile.is_empty());
    }

    #[test]
    fn ledger_clamps_admission_and_rejects_exhausted_tenants() {
        let ledger = TenantLedger::new().with_default_budget(Some(50));
        ledger.set_budget("acme", Some(100));

        // Own budget smaller than the allowance: the job keeps its own.
        assert_eq!(ledger.admit("acme", Some(30)).unwrap(), Some(30));
        // No own budget: clamped to what remains.
        ledger.settle("acme", 80, 0.8, false);
        assert_eq!(ledger.admit("acme", None).unwrap(), Some(20));
        // Own budget above the remainder: clamped down.
        assert_eq!(ledger.admit("acme", Some(1_000)).unwrap(), Some(20));
        // Exhausted: rejected with the billed/allowance numbers.
        ledger.settle("acme", 20, 0.2, true);
        let err = ledger.admit("acme", Some(5)).unwrap_err();
        assert!(err.contains("exhausted"), "{err}");
        assert!(err.contains("100 billed of 100"), "{err}");

        // Unconfigured tenants get the default allowance.
        assert_eq!(ledger.admit("fresh", None).unwrap(), Some(50));
        // An explicitly uncapped tenant passes its request through.
        ledger.set_budget("open", None);
        assert_eq!(ledger.admit("open", None).unwrap(), None);

        let rows = ledger.snapshot();
        let acme = rows.iter().find(|r| r.tenant == "acme").unwrap();
        assert_eq!(acme.tokens_billed, 100);
        assert_eq!(acme.jobs_completed, 2);
        assert_eq!(acme.jobs_rejected, 1);
        assert_eq!(acme.jobs_tripped, 1);
    }

    #[test]
    fn scheduler_settles_bills_and_emits_job_events() {
        let tracer = Arc::new(dprep_obs::CollectingTracer::new());
        let ledger = TenantLedger::new();
        ledger.set_budget("acme", Some(100));
        let scheduler =
            JobScheduler::new(ledger).with_tracer(Arc::clone(&tracer) as Arc<dyn Tracer>);

        let (job, outcome) = scheduler
            .run_job("acme", ExecutionOptions::default(), |grant| {
                assert_eq!(
                    grant.options.token_budget,
                    Some(100),
                    "clamped to allowance"
                );
                Ok(JobOutcome {
                    tokens_billed: 100,
                    cost_usd: 0.5,
                    ..JobOutcome::default()
                })
            })
            .unwrap();
        assert_eq!(job, 1);
        assert_eq!(outcome.tokens_billed, 100);

        // The allowance is spent: the next job is rejected at admission
        // and the failure is traced.
        let err = scheduler
            .run_job("acme", ExecutionOptions::default(), |_| {
                panic!("rejected jobs must not run")
            })
            .unwrap_err();
        assert!(err.message().contains("exhausted"), "{err}");

        let names: Vec<&'static str> = tracer
            .events()
            .iter()
            .map(TraceEvent::name)
            .filter(|n| *n != "queue_depth")
            .collect();
        assert_eq!(names, vec!["job_accepted", "job_completed", "job_rejected"]);
        assert_eq!(scheduler.active_jobs(), 0);
    }

    /// An outcome that bills `tokens` at a flat 0.01 $/token.
    fn billed(tokens: usize) -> JobOutcome {
        JobOutcome {
            tokens_billed: tokens,
            cost_usd: tokens as f64 * 0.01,
            ..JobOutcome::default()
        }
    }

    #[test]
    fn overload_gate_sheds_beyond_inflight_cap_with_retry_hint() {
        let tracer = Arc::new(dprep_obs::CollectingTracer::new());
        let scheduler = JobScheduler::new(TenantLedger::new())
            .with_tracer(Arc::clone(&tracer) as Arc<dyn Tracer>)
            .with_policy(OverloadPolicy {
                max_inflight: Some(1),
                ..OverloadPolicy::default()
            });

        // While one job holds the only slot (no queue configured), a
        // second submit sheds immediately with a positive backoff hint.
        let (_, outcome) = scheduler
            .run_job("acme", ExecutionOptions::default(), |_| {
                let err = scheduler
                    .run_job("burst", ExecutionOptions::default(), |_| {
                        panic!("shed jobs must not run")
                    })
                    .unwrap_err();
                match &err {
                    JobError::Rejected(rejection) => {
                        assert_eq!(rejection.kind, "overloaded");
                        assert!(rejection.retry_after_secs.unwrap() > 0.0, "{rejection:?}");
                    }
                    other => panic!("expected overload rejection, got {other:?}"),
                }
                Ok(billed(10))
            })
            .unwrap();
        assert_eq!(outcome.tokens_billed, 10);

        // The shed billed nothing and is visible everywhere: the trace,
        // the tenant ledger, and the gate's lifetime counters.
        let sheds: Vec<_> = tracer
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobShed { .. }))
            .cloned()
            .collect();
        assert_eq!(sheds.len(), 1);
        let rows = scheduler.ledger().snapshot();
        let burst = rows.iter().find(|r| r.tenant == "burst").unwrap();
        assert_eq!((burst.jobs_shed, burst.tokens_billed), (1, 0));
        let snap = scheduler.overload_snapshot();
        assert_eq!((snap.admitted_total, snap.shed_total), (1, 1));
        assert_eq!((snap.inflight, snap.queued), (0, 0));
        assert!(scheduler.quiesced());
    }

    #[test]
    fn bounded_queue_admits_waiters_and_tenant_cap_sheds_without_queueing() {
        let scheduler = Arc::new(JobScheduler::new(TenantLedger::new()).with_policy(
            OverloadPolicy {
                max_inflight: Some(1),
                max_queued: Some(1),
                tenant_inflight: Some(1),
                ..OverloadPolicy::default()
            },
        ));

        // A queued job waits for the slot and then runs to completion.
        let (holding_tx, holding_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let holder = {
                let scheduler = Arc::clone(&scheduler);
                scope.spawn(move || {
                    scheduler.run_job("acme", ExecutionOptions::default(), |_| {
                        holding_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        Ok(billed(5))
                    })
                })
            };
            holding_rx.recv().unwrap();

            // The tenant holding the slot is at its own cap: its second
            // job sheds instead of camping the shared queue.
            let err = scheduler
                .run_job("acme", ExecutionOptions::default(), |_| unreachable!())
                .unwrap_err();
            assert!(matches!(
                &err,
                JobError::Rejected(r) if r.kind == "overloaded"
                    && r.message.contains("concurrency cap")
            ));

            // Another tenant queues; once the holder releases, it runs.
            let waiter = {
                let scheduler = Arc::clone(&scheduler);
                scope.spawn(move || {
                    scheduler.run_job("beta", ExecutionOptions::default(), |_| Ok(billed(3)))
                })
            };
            while scheduler.overload_snapshot().queued == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // The queue is full (1 of 1): the next submit sheds.
            let err = scheduler
                .run_job("gamma", ExecutionOptions::default(), |_| unreachable!())
                .unwrap_err();
            assert!(matches!(
                &err,
                JobError::Rejected(r) if r.kind == "overloaded"
                    && r.message.contains("queue is full")
            ));

            release_tx.send(()).unwrap();
            holder.join().unwrap().unwrap();
            let (_, outcome) = waiter.join().unwrap().unwrap();
            assert_eq!(outcome.tokens_billed, 3);
        });
        let snap = scheduler.overload_snapshot();
        assert_eq!((snap.admitted_total, snap.shed_total), (2, 2));
        assert!(scheduler.quiesced());
    }

    #[test]
    fn drain_sheds_new_jobs_fires_halts_and_walks_the_state_chain() {
        let tracer = Arc::new(dprep_obs::CollectingTracer::new());
        let scheduler = JobScheduler::new(TenantLedger::new())
            .with_tracer(Arc::clone(&tracer) as Arc<dyn Tracer>);
        assert_eq!(scheduler.drain_label(), "serving");

        // Drain mid-job: the in-flight job's halt fires so a journaled
        // handler checkpoints, and the job still settles its bill.
        let (_, outcome) = scheduler
            .run_job("acme", ExecutionOptions::default(), |grant| {
                assert!(!grant.halt.fired(), "halt is unarmed at grant");
                scheduler.drain();
                scheduler.drain(); // idempotent
                assert!(grant.halt.fired(), "drain fires in-flight halts");
                Ok(billed(7))
            })
            .unwrap();
        assert_eq!(outcome.tokens_billed, 7);
        assert_eq!(scheduler.drain_label(), "draining");

        // Draining admits nothing, with no retry hint (a retry cannot
        // outlive the drain).
        let err = scheduler
            .run_job("acme", ExecutionOptions::default(), |_| unreachable!())
            .unwrap_err();
        assert!(matches!(
            &err,
            JobError::Rejected(r) if r.kind == "draining" && r.retry_after_secs.is_none()
        ));

        // Quiesced: the chain completes serving → draining → closed.
        assert!(scheduler.quiesced());
        scheduler.mark_closed();
        assert_eq!(scheduler.drain_label(), "closed");
        let transitions: Vec<(&str, &str)> = tracer
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::DrainTransition { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            transitions,
            vec![("serving", "draining"), ("draining", "closed")]
        );
    }

    #[test]
    fn deadlines_default_from_policy_and_dead_on_arrival_jobs_shed() {
        let scheduler = JobScheduler::new(TenantLedger::new()).with_policy(OverloadPolicy {
            default_deadline_secs: Some(30.0),
            ..OverloadPolicy::default()
        });

        // No deadline requested: the policy default propagates into the
        // grant's execution options (the executor's budget machinery).
        scheduler
            .run_job("acme", ExecutionOptions::default(), |grant| {
                assert_eq!(grant.options.deadline_secs, Some(30.0));
                Ok(JobOutcome::default())
            })
            .unwrap();
        // An explicit deadline wins over the default.
        scheduler
            .run_job(
                "acme",
                ExecutionOptions {
                    deadline_secs: Some(2.5),
                    ..ExecutionOptions::default()
                },
                |grant| {
                    assert_eq!(grant.options.deadline_secs, Some(2.5));
                    Ok(JobOutcome::default())
                },
            )
            .unwrap();
        // A dead-on-arrival deadline sheds before any admission work.
        let err = scheduler
            .run_job(
                "acme",
                ExecutionOptions {
                    deadline_secs: Some(0.0),
                    ..ExecutionOptions::default()
                },
                |_| unreachable!(),
            )
            .unwrap_err();
        assert!(matches!(
            &err,
            JobError::Rejected(r) if r.kind == "deadline" && r.retry_after_secs.is_none()
        ));
        assert_eq!(scheduler.overload_snapshot().shed_total, 1);
    }

    fn completed(request: u64, latency_secs: f64, tokens: usize) -> TraceEvent {
        TraceEvent::Completed {
            request,
            worker: 0,
            cache_hit: false,
            retries: 0,
            fault: None,
            prompt_tokens: tokens,
            completion_tokens: 0,
            attempt_prompt_tokens: tokens,
            attempt_completion_tokens: 0,
            cost_usd: 0.1,
            latency_secs,
            vt_start_secs: 0.0,
            vt_end_secs: latency_secs,
        }
    }

    /// A traffic pattern that breaches a 1-second latency-p95 objective:
    /// every request is slow, so both burn windows saturate.
    fn slow_stream(plane: &Arc<OpsPlane>, tenant: &str) {
        let tracer = plane.tracer_for(tenant);
        for request in 1..=12u64 {
            tracer.record(&completed(request, 5.0, 100));
            tracer.record(&TraceEvent::Parsed {
                request,
                instance: request as usize - 1,
            });
        }
    }

    #[test]
    fn ops_plane_timelines_are_deterministic_and_page_on_breach() {
        let specs = SloSpec::parse_list("latency-p95=1.0").unwrap();
        let run = || {
            let plane = Arc::new(OpsPlane::new(specs.clone(), WindowConfig::default()));
            slow_stream(&plane, "acme");
            plane
        };
        let (a, b) = (run(), run());

        let timeline = &a.timelines()["acme"];
        assert!(
            timeline
                .iter()
                .any(|e| matches!(e, TraceEvent::SloTransition { to, .. } if *to == "paging")),
            "sustained breach must page: {timeline:?}"
        );
        // Bit-identical across runs: same transitions, same serialized
        // window snapshots.
        assert_eq!(a.timelines(), b.timelines());
        let json = |plane: &Arc<OpsPlane>| {
            plane
                .health()
                .iter()
                .map(|h| h.window.to_json().to_json())
                .collect::<Vec<_>>()
        };
        assert_eq!(json(&a), json(&b));

        let health = a.health();
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].tenant, "acme");
        assert_eq!(health[0].window.counts.requests, 12);
        let (slo, state, burn_long, burn_short) = health[0].slos[0];
        assert_eq!((slo, state), ("latency-p95", "paging"));
        assert!(burn_long >= PAGE_FACTOR && burn_short >= PAGE_FACTOR);
    }

    #[test]
    fn ops_plane_paging_dumps_a_postmortem() {
        let dir = std::env::temp_dir().join(format!(
            "dprep-serve-recorder-{}-{}",
            std::process::id(),
            dprep_obs::next_run_id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let recorder = Arc::new(FlightRecorder::new(&dir, 64));
        let plane = Arc::new(
            OpsPlane::new(
                SloSpec::parse_list("latency-p95=1.0").unwrap(),
                WindowConfig::default(),
            )
            .with_recorder(Arc::clone(&recorder)),
        );
        slow_stream(&plane, "acme");
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(!dumps.is_empty(), "paging must dump a postmortem");
        let body = std::fs::read_to_string(&dumps[0]).unwrap();
        assert!(body.lines().any(|l| l.contains("slo_transition")), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn daemon_health_reports_windows_alerts_and_ledger() {
        let handler: Arc<JobHandler> = Arc::new(|_body: &Json, _grant: &JobGrant| {
            Ok(JobOutcome {
                tokens_billed: 60,
                cost_usd: 0.6,
                ..JobOutcome::default()
            })
        });
        let ledger = TenantLedger::new();
        ledger.set_budget("acme", Some(100));
        let plane = Arc::new(OpsPlane::new(
            SloSpec::parse_list("latency-p95=1.0,budget-headroom=0.5").unwrap(),
            WindowConfig::default(),
        ));
        let daemon = Daemon::bind("127.0.0.1:0", JobScheduler::new(ledger), handler)
            .unwrap()
            .with_ops(Arc::clone(&plane));
        slow_stream(&plane, "acme");
        let addr = daemon.local_addr();

        std::thread::scope(|scope| {
            let server = scope.spawn(|| daemon.run());
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());

            // Settle one job so the ledger has a row; headroom drops to
            // 0.4 < 0.5 and the headroom objective starts burning.
            let submit = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![
                    ("op".to_string(), Json::Str("submit".to_string())),
                    ("tenant".to_string(), Json::Str("acme".to_string())),
                ]),
            )
            .unwrap();
            assert_eq!(submit.get("ok"), Some(&Json::Bool(true)));

            let health = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("health".to_string()))]),
            )
            .unwrap();
            assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(health.get("has_ops"), Some(&Json::Bool(true)));
            let tenants = match health.get("tenants") {
                Some(Json::Arr(rows)) => rows,
                other => panic!("health has no tenants array: {other:?}"),
            };
            assert_eq!(tenants.len(), 1);
            let row = &tenants[0];
            assert_eq!(row.get("tenant").and_then(Json::as_str), Some("acme"));
            assert_eq!(row.get("tokens_billed").and_then(Json::as_usize), Some(60));
            assert_eq!(row.get("jobs_active").and_then(Json::as_usize), Some(0));
            assert_eq!(row.get("jobs_completed").and_then(Json::as_usize), Some(1));
            assert!((row.get("headroom").and_then(Json::as_f64).unwrap() - 0.4).abs() < 1e-9);
            assert!(row.get("window").is_some(), "windowed snapshot present");
            let slos = match row.get("slos") {
                Some(Json::Arr(slos)) => slos,
                other => panic!("health row has no slos array: {other:?}"),
            };
            assert_eq!(slos.len(), 2);
            let headroom = slos
                .iter()
                .find(|s| s.get("slo").and_then(Json::as_str) == Some("budget-headroom"))
                .expect("headroom objective reported");
            assert!(headroom.get("burn_long").and_then(Json::as_f64).unwrap() > 1.0);

            roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("shutdown".to_string()))]),
            )
            .unwrap();
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn raw_metrics_scrape_returns_prometheus_text_then_eof() {
        let handler: Arc<JobHandler> = Arc::new(|_body: &Json, _grant: &JobGrant| {
            Ok(JobOutcome {
                tokens_billed: 5,
                ..JobOutcome::default()
            })
        });
        let daemon = Daemon::bind(
            "127.0.0.1:0",
            JobScheduler::new(TenantLedger::new()),
            handler,
        )
        .unwrap();
        let addr = daemon.local_addr();

        std::thread::scope(|scope| {
            let server = scope.spawn(|| daemon.run());
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![
                    ("op".to_string(), Json::Str("submit".to_string())),
                    ("tenant".to_string(), Json::Str("acme".to_string())),
                ]),
            )
            .unwrap();

            // A raw scrape is one-shot: the body arrives verbatim (no JSON
            // envelope) and the daemon closes the connection.
            let mut scrape = TcpStream::connect(addr).unwrap();
            writeln!(scrape, "{{\"op\":\"metrics\",\"format\":\"raw\"}}").unwrap();
            let mut body = String::new();
            let mut scrape_reader = BufReader::new(scrape);
            loop {
                match scrape_reader.read_line(&mut body) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                    Err(e) => panic!("scrape read failed: {e}"),
                }
            }
            assert!(body.contains("dprep_tenant_"), "{body}");
            assert!(
                Json::parse(body.trim()).is_err(),
                "raw body must not be JSON-wrapped: {body}"
            );

            // The JSON mode still wraps the same text.
            let wrapped = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("metrics".to_string()))]),
            )
            .unwrap();
            assert_eq!(
                wrapped.get("prom").and_then(Json::as_str),
                Some(body.as_str())
            );

            roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("shutdown".to_string()))]),
            )
            .unwrap();
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn daemon_answers_ping_submit_stats_and_shuts_down() {
        let handler: Arc<JobHandler> = Arc::new(|body: &Json, grant: &JobGrant| {
            let cost = body.get("cost").and_then(Json::as_f64).unwrap_or(0.0);
            Ok(JobOutcome {
                reply: vec![("echo_job".to_string(), Json::Num(grant.job as f64))],
                tokens_billed: 7,
                cost_usd: cost,
                ..JobOutcome::default()
            })
        });
        let ledger = TenantLedger::new();
        let daemon = Daemon::bind("127.0.0.1:0", JobScheduler::new(ledger), handler).unwrap();
        let addr = daemon.local_addr();

        std::thread::scope(|scope| {
            let server = scope.spawn(|| daemon.run());

            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let ping = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("ping".to_string()))]),
            )
            .unwrap();
            assert_eq!(ping.get("pong"), Some(&Json::Bool(true)));

            let submit = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![
                    ("op".to_string(), Json::Str("submit".to_string())),
                    ("tenant".to_string(), Json::Str("acme".to_string())),
                    ("cost".to_string(), Json::Num(0.25)),
                ]),
            )
            .unwrap();
            assert_eq!(submit.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(
                submit.get("tokens_billed").and_then(Json::as_usize),
                Some(7)
            );
            assert_eq!(submit.get("echo_job").and_then(Json::as_usize), Some(1));

            let stats = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("stats".to_string()))]),
            )
            .unwrap();
            let tenants = match stats.get("tenants") {
                Some(Json::Arr(rows)) => rows,
                other => panic!("stats has no tenants array: {other:?}"),
            };
            assert_eq!(tenants.len(), 1);
            assert_eq!(
                tenants[0].get("tokens_billed").and_then(Json::as_usize),
                Some(7)
            );

            let bad = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("warp".to_string()))]),
            )
            .unwrap();
            assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));

            let down = roundtrip(
                &mut stream,
                &mut reader,
                &Json::Obj(vec![("op".to_string(), Json::Str("shutdown".to_string()))]),
            )
            .unwrap();
            assert_eq!(down.get("shutting_down"), Some(&Json::Bool(true)));
            server.join().unwrap().unwrap();
        });
    }
}
