//! Detect-then-repair: full data cleaning by composing the paper's two
//! cleaning tasks.
//!
//! The paper detects errors (ED) and imputes missing cells (DI) but never
//! closes the loop. [`Repairer`] does: every suspicious cell found by error
//! detection is masked and re-imputed, yielding a repaired table plus an
//! audit trail of what changed and why — with the combined token/cost/time
//! bill of both passes.

use std::sync::Arc;

use dprep_llm::{ChatModel, UsageTotals};
use dprep_obs::{MetricsSnapshot, NullTracer, Tracer};
use dprep_prompt::{FewShotExample, Task, TaskInstance};
use dprep_tabular::{Record, Table, Value};

use crate::config::PipelineConfig;
use crate::exec::{Durability, KillSwitch};
use crate::pipeline::Preprocessor;

/// One applied (or attempted) repair.
#[derive(Debug, Clone, PartialEq)]
pub struct Repair {
    /// Row index in the input table.
    pub row: usize,
    /// Attribute name.
    pub attribute: String,
    /// The suspicious original value.
    pub original: Value,
    /// The imputed replacement (`None` when imputation failed to parse —
    /// the cell is left masked as missing in the output).
    pub replacement: Option<String>,
    /// The detector's reasoning, when available.
    pub detection_reason: Option<String>,
}

/// Outcome of a repair pass.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired table (same schema; flagged cells replaced or masked).
    pub table: Table,
    /// Every change, in row order.
    pub repairs: Vec<Repair>,
    /// Combined usage of the detection and imputation passes.
    pub usage: UsageTotals,
    /// Combined serving counters of both passes.
    pub stats: crate::exec::ExecStats,
    /// Combined serving metrics of both passes.
    pub metrics: MetricsSnapshot,
}

/// Composes error detection and data imputation into table repair.
pub struct Repairer<'a, M: ChatModel + ?Sized> {
    model: &'a M,
    detect_config: PipelineConfig,
    impute_config: PipelineConfig,
    tracer: Arc<dyn Tracer>,
    durability: Durability,
    kill: Option<KillSwitch>,
}

impl<'a, M: ChatModel + ?Sized> Repairer<'a, M> {
    /// A repairer with the paper's best settings for both passes.
    pub fn new(model: &'a M) -> Self {
        Repairer {
            model,
            detect_config: PipelineConfig::best(Task::ErrorDetection),
            impute_config: PipelineConfig::best(Task::Imputation),
            tracer: Arc::new(NullTracer),
            durability: Durability::default(),
            kill: None,
        }
    }

    /// Streams both passes' request-lifecycle events into `tracer` (the
    /// detect run and the impute run appear as two sequential runs).
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Shares one [`Durability`] across both passes: they append to (and
    /// replay from) the same journal, and the plan-fingerprint check binds
    /// the detect pass — the impute pass derives deterministically from it.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Arms a kill-point drill spanning both passes (see
    /// [`KillSwitch`]): the repair aborts as soon as the switch fires.
    pub fn with_kill_switch(mut self, kill: KillSwitch) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Overrides the detection configuration. Both passes run through
    /// [`Preprocessor`], so per-pass knobs like
    /// [`PipelineConfig::plan_shard_size`] (streaming planner) apply here
    /// unchanged.
    pub fn with_detect_config(mut self, config: PipelineConfig) -> Self {
        assert_eq!(config.task, Task::ErrorDetection, "detect config task");
        self.detect_config = config;
        self
    }

    /// Overrides the imputation configuration.
    pub fn with_impute_config(mut self, config: PipelineConfig) -> Self {
        assert_eq!(config.task, Task::Imputation, "impute config task");
        self.impute_config = config;
        self
    }

    /// Repairs `table`, checking the attributes named in `attributes`
    /// (every attribute when empty). `detect_examples` / `impute_examples`
    /// are optional few-shot pools for the two passes.
    ///
    /// # Panics
    /// Panics when durability rejects a pass
    /// ([`try_repair`](Self::try_repair) returns the rejection instead).
    pub fn repair(
        &self,
        table: &Table,
        attributes: &[String],
        detect_examples: &[FewShotExample],
        impute_examples: &[FewShotExample],
    ) -> RepairOutcome {
        self.try_repair(table, attributes, detect_examples, impute_examples)
            .expect("durable repair rejected")
    }

    /// [`repair`](Self::repair), with durability failures surfaced as
    /// errors. When an armed kill switch fires mid-repair, the partial
    /// outcome (empty repairs, whatever usage accrued) is returned — the
    /// crash-drill harness discards it and asserts the resumed repair.
    pub fn try_repair(
        &self,
        table: &Table,
        attributes: &[String],
        detect_examples: &[FewShotExample],
        impute_examples: &[FewShotExample],
    ) -> Result<RepairOutcome, String> {
        let attrs: Vec<String> = if attributes.is_empty() {
            table
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            attributes.to_vec()
        };

        // ── pass 1: detect ───────────────────────────────────────────────
        let mut detect_instances = Vec::new();
        let mut cells = Vec::new();
        for (row_idx, row) in table.rows().iter().enumerate() {
            for attr in &attrs {
                let Some(value) = row.get_by_name(attr) else {
                    continue;
                };
                if value.is_missing() {
                    continue;
                }
                detect_instances.push(TaskInstance::ErrorDetection {
                    record: row.clone(),
                    attribute: attr.clone(),
                });
                cells.push((row_idx, attr.clone()));
            }
        }
        let mut detector = Preprocessor::new(self.model, self.detect_config.clone())
            .with_tracer(Arc::clone(&self.tracer))
            .with_durability(self.durability.clone());
        if let Some(kill) = &self.kill {
            detector = detector.with_kill_switch(kill.clone());
        }
        let detected = detector.try_run(&detect_instances, detect_examples)?;
        let mut usage = detected.usage;
        let mut stats = detected.stats;
        let mut metrics = detected.metrics;
        if self.kill.as_ref().is_some_and(KillSwitch::fired) {
            // The drill's simulated crash hit the detect pass: stop exactly
            // here, as a dead process would have.
            return Ok(RepairOutcome {
                table: table.clone(),
                repairs: Vec::new(),
                usage,
                stats,
                metrics,
            });
        }

        let flagged: Vec<(usize, String, Option<String>)> = cells
            .iter()
            .zip(&detected.predictions)
            .filter(|(_, p)| p.as_yes_no() == Some(true))
            .map(|((row, attr), p)| {
                (
                    *row,
                    attr.clone(),
                    p.answer().and_then(|a| a.reason.clone()),
                )
            })
            .collect();

        // ── pass 2: impute replacements for flagged cells ────────────────
        let mut impute_instances = Vec::new();
        for (row_idx, attr, _) in &flagged {
            let row = table.row(*row_idx).expect("row exists");
            let attr_idx = row.schema().index_of(attr).expect("attr exists");
            let masked = row.with_missing(attr_idx).expect("in range");
            impute_instances.push(TaskInstance::Imputation {
                record: masked,
                attribute: attr.clone(),
            });
        }
        let mut imputer = Preprocessor::new(self.model, self.impute_config.clone())
            .with_tracer(Arc::clone(&self.tracer))
            .with_durability(self.durability.clone());
        if let Some(kill) = &self.kill {
            imputer = imputer.with_kill_switch(kill.clone());
        }
        let imputed = imputer.try_run(&impute_instances, impute_examples)?;
        usage.merge(&imputed.usage);
        stats.merge(&imputed.stats);
        metrics.merge(&imputed.metrics);
        if self.kill.as_ref().is_some_and(KillSwitch::fired) {
            return Ok(RepairOutcome {
                table: table.clone(),
                repairs: Vec::new(),
                usage,
                stats,
                metrics,
            });
        }

        // ── apply ────────────────────────────────────────────────────────
        let apply_started = std::time::Instant::now();
        let mut rows: Vec<Record> = table.rows().to_vec();
        let mut repairs = Vec::with_capacity(flagged.len());
        for ((row_idx, attr, reason), prediction) in flagged.into_iter().zip(&imputed.predictions) {
            let attr_idx = table.schema().index_of(&attr).expect("attr exists");
            let replacement = prediction.value().map(str::to_string);
            let new_value = match &replacement {
                Some(v) => Value::text(v.clone()),
                // Unparseable imputation: leave the bad value masked rather
                // than keeping a known-bad cell.
                None => Value::Missing,
            };
            let original = rows[row_idx]
                .set(attr_idx, new_value)
                .expect("index in range");
            repairs.push(Repair {
                row: row_idx,
                attribute: attr,
                original,
                replacement,
                detection_reason: reason,
            });
        }
        let table =
            Table::from_records(Arc::clone(table.schema()), rows).expect("schema unchanged");
        // The apply phase runs outside any single executor run; run id 0
        // marks it as a top-level pipeline stage in the span profile.
        self.tracer.record(&dprep_obs::TraceEvent::Stage {
            run: 0,
            stage: "repair",
            wall_secs: apply_started.elapsed().as_secs_f64(),
            vt_secs: 0.0,
        });
        Ok(RepairOutcome {
            table,
            repairs,
            usage,
            stats,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_llm::{Fact, KnowledgeBase, ModelProfile, SimulatedLlm};
    use dprep_tabular::Schema;

    fn dirty_table() -> Table {
        let schema = Schema::all_text(&["name", "phone", "city"])
            .unwrap()
            .shared();
        let mut t = Table::new(Arc::clone(&schema));
        t.push_values(vec![
            Value::text("carey's corner"),
            Value::text("770-933-0909"),
            Value::text("mariettaa"), // typo
        ])
        .unwrap();
        t.push_values(vec![
            Value::text("blue moon cafe"),
            Value::text("404-875-7562"),
            Value::text("atlanta"), // clean
        ])
        .unwrap();
        t
    }

    fn model() -> SimulatedLlm {
        let mut kb = KnowledgeBase::new();
        for (prefix, city) in [("770", "marietta"), ("404", "atlanta")] {
            kb.add(Fact::AreaCode {
                prefix: prefix.into(),
                city: city.into(),
            });
            kb.add(Fact::LexiconMember {
                domain: "city".into(),
                value: city.into(),
            });
        }
        SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(kb))
    }

    #[test]
    fn repairs_the_typo_and_leaves_clean_cells() {
        let table = dirty_table();
        let model = model();
        let repairer = Repairer::new(&model);
        let outcome = repairer.repair(&table, &["city".into()], &[], &[]);
        assert_eq!(outcome.repairs.len(), 1, "{:?}", outcome.repairs);
        let repair = &outcome.repairs[0];
        assert_eq!(repair.row, 0);
        assert_eq!(repair.attribute, "city");
        assert_eq!(repair.original, Value::text("mariettaa"));
        assert_eq!(repair.replacement.as_deref(), Some("marietta"));
        assert_eq!(
            outcome.table.row(0).unwrap().get_by_name("city"),
            Some(&Value::text("marietta"))
        );
        // The clean row is untouched.
        assert_eq!(
            outcome.table.row(1).unwrap().get_by_name("city"),
            Some(&Value::text("atlanta"))
        );
        // Both passes billed.
        assert!(outcome.usage.requests >= 2);
    }

    #[test]
    fn clean_table_needs_no_repairs() {
        let schema = Schema::all_text(&["city"]).unwrap().shared();
        let mut t = Table::new(Arc::clone(&schema));
        t.push_values(vec![Value::text("atlanta")]).unwrap();
        let model = model();
        let outcome = Repairer::new(&model).repair(&t, &[], &[], &[]);
        assert!(outcome.repairs.is_empty());
        assert_eq!(outcome.table, t);
    }

    #[test]
    #[should_panic(expected = "detect config task")]
    fn wrong_config_task_panics() {
        let model = model();
        let _ =
            Repairer::new(&model).with_detect_config(PipelineConfig::best(Task::EntityMatching));
    }
}
