//! Pipeline configuration and the ablation component sets of Table 2.

use dprep_prompt::{BatchStrategy, PromptConfig, Task};

/// Which prompt components are enabled — one row of the paper's Table 2.
/// Zero-shot task specification (ZS-T) is always on; the switches are
/// few-shot examples (FS), batch prompting (B), and zero-shot reasoning
/// (ZS-R).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentSet {
    /// Few-shot examples included.
    pub few_shot: bool,
    /// Batch prompting enabled (batch size > 1).
    pub batching: bool,
    /// Chain-of-thought reasoning requested.
    pub reasoning: bool,
}

impl ComponentSet {
    /// The six rows of Table 2, in the paper's order.
    pub fn table2_rows() -> [(&'static str, ComponentSet); 6] {
        [
            (
                "ZS-T",
                ComponentSet {
                    few_shot: false,
                    batching: false,
                    reasoning: false,
                },
            ),
            (
                "ZS-T+B",
                ComponentSet {
                    few_shot: false,
                    batching: true,
                    reasoning: false,
                },
            ),
            (
                "ZS-T+B+ZS-R",
                ComponentSet {
                    few_shot: false,
                    batching: true,
                    reasoning: true,
                },
            ),
            (
                "ZS-T+FS",
                ComponentSet {
                    few_shot: true,
                    batching: false,
                    reasoning: false,
                },
            ),
            (
                "ZS-T+FS+B",
                ComponentSet {
                    few_shot: true,
                    batching: true,
                    reasoning: false,
                },
            ),
            (
                "ZS-T+FS+B+ZS-R",
                ComponentSet {
                    few_shot: true,
                    batching: true,
                    reasoning: true,
                },
            ),
        ]
    }

    /// The full component set (the paper's best setting).
    pub fn full() -> Self {
        ComponentSet {
            few_shot: true,
            batching: true,
            reasoning: true,
        }
    }
}

/// Full configuration of one preprocessing run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The task.
    pub task: Task,
    /// Prompt components in play.
    pub components: ComponentSet,
    /// Batch size used when `components.batching` is true (the paper uses
    /// 10–20 for GPT-3.5, 10–15 for GPT-4, 1–2 for Vicuna).
    pub batch_size: usize,
    /// Use cluster batching instead of random batching.
    pub cluster_batching: bool,
    /// Number of clusters for cluster batching.
    pub clusters: usize,
    /// ED target-confirmation safeguard (§3.1); only meaningful with
    /// reasoning on.
    pub confirm_target: bool,
    /// DI data-type hint `(attribute, hint)`.
    pub type_hint: Option<(String, String)>,
    /// Feature selection: attribute indices to keep (§3.4).
    pub feature_indices: Option<Vec<usize>>,
    /// Sampling temperature; `None` uses the model profile's default.
    pub temperature: Option<f64>,
    /// Shrink the batch size automatically so prompts fit the model's
    /// context window (on by default — an operator would do the same).
    pub fit_context: bool,
    /// Seed for batching shuffles.
    pub seed: u64,
    /// Worker threads the executor dispatches batch requests across
    /// (1 = serial). Results are bit-identical at any worker count.
    pub workers: usize,
    /// Streaming planner: when set (and > 0), the run plans and executes in
    /// shards of this many batches instead of materializing every request
    /// up front, bounding planner memory by the shard size rather than the
    /// corpus size. Results are shard-size invariant, so this knob (like
    /// `workers`) is excluded from [`descriptor`](Self::descriptor).
    pub plan_shard_size: Option<usize>,
    /// Model-cascade routes, cheapest first (model profile names, e.g.
    /// `["sim-gpt-3.5", "sim-gpt-4"]`). Empty means a single-model run
    /// served directly by the `--model` profile.
    pub routes: Vec<String>,
    /// Escalation-policy spec for the cascade, in
    /// [`dprep_llm::EscalationPolicy`] canonical form; `None` uses the
    /// default policy. Meaningless unless `routes` is non-empty.
    pub escalate_on: Option<String>,
}

impl PipelineConfig {
    /// The paper's best setting for a task: all components, batch size 15,
    /// target confirmation on.
    pub fn best(task: Task) -> Self {
        PipelineConfig {
            task,
            components: ComponentSet::full(),
            batch_size: 15,
            cluster_batching: false,
            clusters: 8,
            confirm_target: true,
            type_hint: None,
            feature_indices: None,
            temperature: None,
            fit_context: true,
            seed: 0,
            workers: 1,
            plan_shard_size: None,
            routes: Vec::new(),
            escalate_on: None,
        }
    }

    /// A configuration for one Table 2 ablation row.
    pub fn ablation(task: Task, components: ComponentSet, batch_size: usize) -> Self {
        PipelineConfig {
            task,
            components,
            batch_size,
            cluster_batching: false,
            clusters: 8,
            confirm_target: components.reasoning,
            type_hint: None,
            feature_indices: None,
            temperature: None,
            fit_context: true,
            seed: 0,
            workers: 1,
            plan_shard_size: None,
            routes: Vec::new(),
            escalate_on: None,
        }
    }

    /// Effective batch size (1 when batching is off).
    pub fn effective_batch_size(&self) -> usize {
        if self.components.batching {
            self.batch_size.max(1)
        } else {
            1
        }
    }

    /// The batching strategy implied by the configuration.
    pub fn batch_strategy(&self) -> BatchStrategy {
        let batch_size = self.effective_batch_size();
        if self.cluster_batching {
            BatchStrategy::Cluster {
                batch_size,
                clusters: self.clusters,
            }
        } else {
            BatchStrategy::Random { batch_size }
        }
    }

    /// A stable one-line descriptor of everything that shapes prompts and
    /// batching — the run journal's config identity. The worker count is
    /// deliberately excluded (results are worker-invariant, so a journal
    /// recorded at `--workers 8` resumes fine at `--workers 1`); the seed
    /// is excluded too because the journal header carries it separately.
    /// `plan_shard_size` is likewise excluded — the streaming planner yields
    /// the same plan in shards, so a journal recorded materialized resumes
    /// fine under any shard size and vice versa.
    ///
    /// The cascade, by contrast, is **included** (appended only when routed,
    /// so single-model descriptors are byte-identical to every journal
    /// written before routing existed): a journal recorded under one
    /// cascade must not resume under another — the replayed per-route
    /// ledger would attribute cost to routes the resumed run doesn't have.
    pub fn descriptor(&self) -> String {
        let mut descriptor = format!(
            "{:?}|fs={}|b={}|r={}|bs={}|cluster={}|k={}|confirm={}|hint={:?}|feat={:?}|temp={:?}|fit={}",
            self.task,
            self.components.few_shot,
            self.components.batching,
            self.components.reasoning,
            self.batch_size,
            self.cluster_batching,
            self.clusters,
            self.confirm_target,
            self.type_hint,
            self.feature_indices,
            self.temperature,
            self.fit_context,
        );
        if !self.routes.is_empty() {
            use std::fmt::Write;
            let policy = self
                .escalate_on
                .clone()
                .unwrap_or_else(|| dprep_llm::EscalationPolicy::default().canonical());
            let _ = write!(
                descriptor,
                "|routes={}|esc={}",
                self.routes.join("->"),
                policy
            );
        }
        descriptor
    }

    /// The prompt-level configuration (what `dprep-prompt` consumes).
    pub fn prompt_config(&self) -> PromptConfig {
        PromptConfig {
            task: self.task,
            reasoning: self.components.reasoning,
            confirm_target: self.confirm_target && self.components.reasoning,
            type_hint: self.type_hint.clone(),
            feature_indices: self.feature_indices.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_distinct_rows() {
        let rows = ComponentSet::table2_rows();
        assert_eq!(rows.len(), 6);
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                assert_ne!(rows[i].1, rows[j].1);
            }
        }
        assert_eq!(rows[0].0, "ZS-T");
        assert_eq!(rows[5].1, ComponentSet::full());
    }

    #[test]
    fn batching_off_means_batch_size_one() {
        let mut cfg = PipelineConfig::best(Task::EntityMatching);
        cfg.components.batching = false;
        assert_eq!(cfg.effective_batch_size(), 1);
        cfg.components.batching = true;
        assert_eq!(cfg.effective_batch_size(), 15);
    }

    #[test]
    fn confirm_target_requires_reasoning() {
        let mut cfg = PipelineConfig::best(Task::ErrorDetection);
        cfg.components.reasoning = false;
        assert!(!cfg.prompt_config().confirm_target);
        cfg.components.reasoning = true;
        assert!(cfg.prompt_config().confirm_target);
    }

    #[test]
    fn descriptor_appends_routes_only_when_routed() {
        let mut cfg = PipelineConfig::best(Task::EntityMatching);
        let single = cfg.descriptor();
        assert!(!single.contains("routes="));

        cfg.routes = vec!["sim-gpt-3.5".into(), "sim-gpt-4".into()];
        let routed = cfg.descriptor();
        assert!(routed.starts_with(&single));
        assert!(routed.ends_with("|routes=sim-gpt-3.5->sim-gpt-4|esc=fault,format,partial"));

        cfg.escalate_on = Some("garbled".into());
        assert!(cfg.descriptor().ends_with("|esc=garbled"));

        // A different cascade is a different identity: resume must refuse.
        cfg.routes = vec!["sim-gpt-3.5".into()];
        assert_ne!(cfg.descriptor(), routed);
    }

    #[test]
    fn cluster_strategy_selected() {
        let mut cfg = PipelineConfig::best(Task::EntityMatching);
        cfg.cluster_batching = true;
        assert!(matches!(
            cfg.batch_strategy(),
            BatchStrategy::Cluster { .. }
        ));
        cfg.cluster_batching = false;
        assert!(matches!(cfg.batch_strategy(), BatchStrategy::Random { .. }));
    }
}
