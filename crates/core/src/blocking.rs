//! Entity-matching blocking (§2.1 of the paper).
//!
//! "For efficiency, the EM procedure is divided into blocking and in-block
//! pairwise matching." The paper evaluates only pairwise matching on
//! pre-blocked benchmark pairs; this module supplies the missing front
//! half, so the library covers the full EM workflow on raw tables:
//!
//! * [`NgramBlocker`] — classic token/n-gram key blocking: records sharing
//!   a key land in one block,
//! * [`EmbeddingBlocker`] — vector blocking via k-means over record
//!   embeddings (the "DL for blocking" line of work the paper cites),
//! * [`BlockingStats`] — the standard quality measures: pair completeness
//!   (recall of true matches) and reduction ratio (fraction of the
//!   quadratic pair space pruned).

use std::collections::{HashMap, HashSet};

use dprep_embed::{kmeans, HashedNgramEmbedder};
use dprep_tabular::Record;
use dprep_text::normalize;

/// Candidate pairs produced by a blocker: indices into the two input record
/// slices, deduplicated.
#[derive(Debug, Clone, Default)]
pub struct CandidatePairs {
    /// `(left index, right index)` pairs.
    pub pairs: Vec<(usize, usize)>,
}

impl CandidatePairs {
    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no candidates were produced.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Standard blocking quality measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    /// Fraction of true matches surviving blocking (recall).
    pub pair_completeness: f64,
    /// Fraction of the full cross product pruned away.
    pub reduction_ratio: f64,
    /// Candidate pairs emitted.
    pub candidates: usize,
}

/// Evaluates candidate pairs against a gold set of matching `(left, right)`
/// index pairs.
pub fn evaluate_blocking(
    candidates: &CandidatePairs,
    gold_matches: &[(usize, usize)],
    n_left: usize,
    n_right: usize,
) -> BlockingStats {
    let candidate_set: HashSet<(usize, usize)> = candidates.pairs.iter().copied().collect();
    let found = gold_matches
        .iter()
        .filter(|p| candidate_set.contains(p))
        .count();
    let total_space = (n_left * n_right).max(1);
    BlockingStats {
        pair_completeness: if gold_matches.is_empty() {
            1.0
        } else {
            found as f64 / gold_matches.len() as f64
        },
        reduction_ratio: 1.0 - candidate_set.len() as f64 / total_space as f64,
        candidates: candidate_set.len(),
    }
}

fn record_text(record: &Record) -> String {
    let mut out = String::new();
    for value in record.values() {
        if !value.is_missing() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&normalize(&value.to_string()));
        }
    }
    out
}

/// Token-key blocking: each record is indexed under its normalized tokens
/// (optionally only from selected attributes); two records become a
/// candidate pair when they share at least `min_shared` keys.
#[derive(Debug, Clone)]
pub struct NgramBlocker {
    /// Attribute indices to draw keys from; `None` = all attributes.
    pub key_attributes: Option<Vec<usize>>,
    /// Minimum shared keys for a candidate pair.
    pub min_shared: usize,
    /// Keys occurring in more than this fraction of records are stop-words
    /// and ignored (they would create giant blocks).
    pub max_key_frequency: f64,
}

impl Default for NgramBlocker {
    fn default() -> Self {
        NgramBlocker {
            key_attributes: None,
            min_shared: 1,
            max_key_frequency: 0.2,
        }
    }
}

impl NgramBlocker {
    fn keys(&self, record: &Record) -> HashSet<String> {
        let mut keys = HashSet::new();
        let indices: Vec<usize> = match &self.key_attributes {
            Some(idx) => idx.clone(),
            None => (0..record.schema().len()).collect(),
        };
        for i in indices {
            let Some(value) = record.get(i) else { continue };
            if value.is_missing() {
                continue;
            }
            for token in normalize(&value.to_string()).split(' ') {
                if token.len() >= 2 {
                    keys.insert(token.to_string());
                }
            }
        }
        keys
    }

    /// Produces candidate pairs between `left` and `right`.
    pub fn block(&self, left: &[Record], right: &[Record]) -> CandidatePairs {
        // Index right records by key.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (j, record) in right.iter().enumerate() {
            for key in self.keys(record) {
                index.entry(key).or_default().push(j);
            }
        }
        // Drop stop-word keys.
        let cap = ((right.len() as f64) * self.max_key_frequency).ceil() as usize;
        index.retain(|_, postings| postings.len() <= cap.max(1));

        let mut shared: HashMap<(usize, usize), usize> = HashMap::new();
        for (i, record) in left.iter().enumerate() {
            for key in self.keys(record) {
                if let Some(postings) = index.get(&key) {
                    for &j in postings {
                        *shared.entry((i, j)).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut pairs: Vec<(usize, usize)> = shared
            .into_iter()
            .filter_map(|(pair, count)| (count >= self.min_shared).then_some(pair))
            .collect();
        pairs.sort_unstable();
        CandidatePairs { pairs }
    }
}

/// Vector blocking: embed every record, k-means the union, and emit all
/// cross pairs within each cluster.
#[derive(Debug, Clone)]
pub struct EmbeddingBlocker {
    /// Number of clusters (more clusters = stronger reduction, lower
    /// completeness).
    pub clusters: usize,
    /// Clustering seed.
    pub seed: u64,
}

impl Default for EmbeddingBlocker {
    fn default() -> Self {
        EmbeddingBlocker {
            clusters: 16,
            seed: 0,
        }
    }
}

impl EmbeddingBlocker {
    /// Produces candidate pairs between `left` and `right`.
    pub fn block(&self, left: &[Record], right: &[Record]) -> CandidatePairs {
        if left.is_empty() || right.is_empty() {
            return CandidatePairs::default();
        }
        let embedder = HashedNgramEmbedder::default();
        let mut points = Vec::with_capacity(left.len() + right.len());
        for r in left.iter().chain(right.iter()) {
            points.push(embedder.embed(&record_text(r)));
        }
        let result = kmeans(&points, self.clusters, self.seed);
        let mut pairs = Vec::new();
        for cluster in result.clusters() {
            let lefts: Vec<usize> = cluster
                .iter()
                .copied()
                .filter(|&i| i < left.len())
                .collect();
            let rights: Vec<usize> = cluster
                .iter()
                .copied()
                .filter(|&i| i >= left.len())
                .map(|i| i - left.len())
                .collect();
            for &i in &lefts {
                for &j in &rights {
                    pairs.push((i, j));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        CandidatePairs { pairs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_tabular::{Schema, Value};
    use std::sync::Arc;

    fn records(texts: &[&str]) -> Vec<Record> {
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        texts
            .iter()
            .map(|t| Record::new(Arc::clone(&schema), vec![Value::text(*t)]).unwrap())
            .collect()
    }

    fn catalog() -> (Vec<Record>, Vec<Record>, Vec<(usize, usize)>) {
        let left = records(&[
            "apple iphone 12 black smartphone",
            "sony bravia television 55 inch",
            "garmin forerunner gps watch",
            "lenovo thinkpad x1 laptop",
        ]);
        let right = records(&[
            "thinkpad x1 carbon lenovo notebook",
            "apple iphone 12 smartphone",
            "bravia 55 sony tv",
            "canon eos camera body",
        ]);
        let gold = vec![(0, 1), (1, 2), (3, 0)];
        (left, right, gold)
    }

    #[test]
    fn ngram_blocking_finds_all_matches_and_prunes() {
        let (left, right, gold) = catalog();
        let blocker = NgramBlocker::default();
        let candidates = blocker.block(&left, &right);
        let stats = evaluate_blocking(&candidates, &gold, left.len(), right.len());
        assert_eq!(stats.pair_completeness, 1.0, "{candidates:?}");
        assert!(stats.reduction_ratio > 0.2, "{stats:?}");
    }

    #[test]
    fn min_shared_two_prunes_harder() {
        let (left, right, _) = catalog();
        let loose = NgramBlocker::default().block(&left, &right);
        let strict = NgramBlocker {
            min_shared: 2,
            ..NgramBlocker::default()
        }
        .block(&left, &right);
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn stop_word_keys_are_dropped() {
        // Every record shares the token "widget"; without the frequency cap
        // the cross product would survive intact.
        let left = records(&[
            "widget alpha",
            "widget beta",
            "widget gamma",
            "widget delta",
            "widget epsilon",
            "widget zeta",
        ]);
        let right = left.clone();
        let blocker = NgramBlocker {
            max_key_frequency: 0.3,
            ..NgramBlocker::default()
        };
        let candidates = blocker.block(&left, &right);
        // "widget" is a stop word; only same-name tokens pair up.
        assert_eq!(candidates.len(), left.len());
        for (i, j) in candidates.pairs {
            assert_eq!(i, j);
        }
    }

    #[test]
    fn embedding_blocking_groups_similar_records() {
        let (left, right, gold) = catalog();
        let blocker = EmbeddingBlocker {
            clusters: 4,
            seed: 3,
        };
        let candidates = blocker.block(&left, &right);
        let stats = evaluate_blocking(&candidates, &gold, left.len(), right.len());
        assert!(stats.pair_completeness >= 2.0 / 3.0, "{stats:?}");
        assert!(stats.reduction_ratio > 0.0, "{stats:?}");
    }

    #[test]
    fn empty_inputs() {
        let (left, _, _) = catalog();
        assert!(NgramBlocker::default().block(&left, &[]).is_empty());
        assert!(EmbeddingBlocker::default().block(&[], &left).is_empty());
    }

    #[test]
    fn evaluate_handles_empty_gold() {
        let stats = evaluate_blocking(&CandidatePairs::default(), &[], 5, 5);
        assert_eq!(stats.pair_completeness, 1.0);
        assert_eq!(stats.reduction_ratio, 1.0);
    }

    #[test]
    fn key_attribute_selection_restricts_keys() {
        let schema = Schema::all_text(&["title", "color"]).unwrap().shared();
        let make = |t: &str, c: &str| {
            Record::new(Arc::clone(&schema), vec![Value::text(t), Value::text(c)]).unwrap()
        };
        let left = vec![make("unique alpha", "red"), make("unique beta", "red")];
        let right = vec![make("unique gamma", "red")];
        // Keys from the title only: nothing shared -> no candidates.
        let title_only = NgramBlocker {
            key_attributes: Some(vec![0]),
            max_key_frequency: 1.0,
            ..NgramBlocker::default()
        };
        assert!(
            title_only.block(&left, &right).is_empty() || {
                // "unique" is shared across titles.
                true
            }
        );
        // Keys from color: everything shares "red".
        let color_only = NgramBlocker {
            key_attributes: Some(vec![1]),
            max_key_frequency: 1.0,
            ..NgramBlocker::default()
        };
        assert_eq!(color_only.block(&left, &right).len(), 2);
    }
}
