//! # dprep-core
//!
//! The paper's data-preprocessing framework, end to end: given a chat model
//! (real or simulated), a task, labeled few-shot examples, and a stream of
//! data instances, the [`Preprocessor`] builds prompts (zero-shot
//! instruction + few-shot examples + batched questions), queries the model,
//! parses answers back out, and meters token/cost/time totals.
//!
//! * [`config`] — [`PipelineConfig`] and the Table 2 component switches,
//! * [`pipeline`] — the [`Preprocessor`] facade and its [`RunResult`],
//! * [`exec`] — the plan/execute split: [`exec::ExecutionPlan`] precomputes
//!   batches, prompts, and request deduplication; [`exec::Executor`]
//!   dispatches across worker threads with bit-identical output at any
//!   worker count,
//! * [`stream`] — the streaming planner: [`stream::PlanStream`] yields the
//!   same plan in fixed-size shards so million-row runs execute in bounded
//!   memory,
//! * [`blocking`] — the EM blocking stage (§2.1) the paper's benchmarks
//!   presuppose: n-gram key blocking and embedding blocking, with pair
//!   completeness / reduction ratio evaluation,
//! * [`repair`] — detect-then-repair table cleaning, composing ED and DI,
//! * [`serve`] — multi-tenant serving: the round-robin shard turnstile,
//!   per-tenant token ledgers, the job scheduler, the live ops plane
//!   (windowed metrics + SLO burn-rate alerts + flight recorder), and the
//!   `dprep serve` NDJSON-over-TCP daemon core.

pub mod blocking;
pub mod config;
pub mod exec;
pub mod pipeline;
pub mod repair;
pub mod serve;
pub mod stream;

pub use blocking::{
    evaluate_blocking, BlockingStats, CandidatePairs, EmbeddingBlocker, NgramBlocker,
};
pub use config::{ComponentSet, PipelineConfig};
pub use exec::{
    journal_write_error, Durability, ExecStats, ExecutionOptions, ExecutionPlan, Executor,
    KillSwitch,
};
pub use pipeline::{FailureKind, Prediction, Preprocessor, RunResult};
pub use repair::{Repair, RepairOutcome, Repairer};
pub use serve::{
    result_fingerprint, Daemon, JobError, JobGrant, JobHandler, JobOutcome, JobScheduler, OpsPlane,
    OverloadPolicy, OverloadSnapshot, Rejection, ShardGate, TenantHealth, TenantLedger,
    TenantUsage, Turnstile, TurnstileHandle, WireLimits,
};
pub use stream::{PlanShard, PlanStream};
