//! # dprep-core
//!
//! The paper's data-preprocessing framework, end to end: given a chat model
//! (real or simulated), a task, labeled few-shot examples, and a stream of
//! data instances, the [`Preprocessor`] builds prompts (zero-shot
//! instruction + few-shot examples + batched questions), queries the model,
//! parses answers back out, and meters token/cost/time totals.
//!
//! * [`config`] — [`PipelineConfig`] and the Table 2 component switches,
//! * [`pipeline`] — the [`Preprocessor`] runner and its [`RunResult`],
//! * [`blocking`] — the EM blocking stage (§2.1) the paper's benchmarks
//!   presuppose: n-gram key blocking and embedding blocking, with pair
//!   completeness / reduction ratio evaluation,
//! * [`repair`] — detect-then-repair table cleaning, composing ED and DI.

pub mod blocking;
pub mod config;
pub mod pipeline;
pub mod repair;

pub use blocking::{evaluate_blocking, BlockingStats, CandidatePairs, EmbeddingBlocker, NgramBlocker};
pub use config::{ComponentSet, PipelineConfig};
pub use pipeline::{Prediction, Preprocessor, RunResult};
pub use repair::{Repair, RepairOutcome, Repairer};
