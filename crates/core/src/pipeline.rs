//! The end-to-end preprocessing pipeline (the paper's Figure 1).
//!
//! ```text
//! instances ── batching ──► prompt builder ──► chat model ──► parser ──► predictions
//!                  ▲              ▲                                │
//!             (clustering)   (few-shot, zero-shot,             (usage,
//!                             contextualization,             cost, time)
//!                             feature selection)
//! ```
//!
//! The [`Preprocessor`] is a thin facade: it plans the run with
//! [`crate::exec::ExecutionPlan`] and dispatches it with
//! [`crate::exec::Executor`], serially or across worker threads per
//! [`crate::config::PipelineConfig::workers`].

use std::sync::Arc;

use dprep_llm::{ChatModel, UsageTotals};
use dprep_obs::{MetricsSnapshot, NullTracer, Tracer};
use dprep_prompt::{ExtractedAnswer, FewShotExample, TaskInstance};

use crate::config::PipelineConfig;
use crate::exec::{Durability, ExecStats, ExecutionOptions, ExecutionPlan, Executor, KillSwitch};

/// Why the pipeline has no answer for an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The response ignored the answer format entirely — nothing parsed.
    FormatViolation,
    /// The response answered other questions in the batch but skipped this
    /// one (batch misalignment).
    SkippedAnswer,
    /// The prompt exceeded the model's context window; answers past the
    /// truncation point never existed.
    ContextOverflow,
    /// The serving layer faulted (timeout / truncated stream) and no retry
    /// middleware was in play.
    Faulted,
    /// The serving layer faulted and the retry budget ran out.
    RetriesExhausted,
    /// The run's deadline or token budget tripped before this instance's
    /// request was consumed; its response (if any) was discarded unbilled.
    BudgetExhausted,
    /// The circuit breaker was open and short-circuited the request without
    /// reaching the model.
    CircuitOpen,
}

impl FailureKind {
    /// A short stable label (CLI tables, reports).
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::FormatViolation => "format-violation",
            FailureKind::SkippedAnswer => "skipped-answer",
            FailureKind::ContextOverflow => "context-overflow",
            FailureKind::Faulted => "faulted",
            FailureKind::RetriesExhausted => "retries-exhausted",
            FailureKind::BudgetExhausted => "budget-exhausted",
            FailureKind::CircuitOpen => "circuit-open",
        }
    }

    /// All kinds, in reporting order.
    pub fn all() -> [FailureKind; 7] {
        [
            FailureKind::FormatViolation,
            FailureKind::SkippedAnswer,
            FailureKind::ContextOverflow,
            FailureKind::Faulted,
            FailureKind::RetriesExhausted,
            FailureKind::BudgetExhausted,
            FailureKind::CircuitOpen,
        ]
    }
}

/// The pipeline's output for one data instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prediction {
    /// A parsed answer.
    Answered(ExtractedAnswer),
    /// No answer, with the reason.
    Failed(FailureKind),
}

impl Prediction {
    /// The parsed answer, if any.
    pub fn answer(&self) -> Option<&ExtractedAnswer> {
        match self {
            Prediction::Answered(a) => Some(a),
            Prediction::Failed(_) => None,
        }
    }

    /// The failure, if any.
    pub fn failure(&self) -> Option<FailureKind> {
        match self {
            Prediction::Answered(_) => None,
            Prediction::Failed(kind) => Some(*kind),
        }
    }

    /// Yes/no view of the answer (for ED/SM/EM).
    pub fn as_yes_no(&self) -> Option<bool> {
        self.answer().and_then(ExtractedAnswer::as_yes_no)
    }

    /// Value view of the answer (for DI).
    pub fn value(&self) -> Option<&str> {
        self.answer().map(|a| a.value.as_str())
    }
}

/// Result of a full run: one prediction per input instance (same order)
/// plus usage totals and serving-layer counters.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-instance predictions, parallel to the input slice.
    pub predictions: Vec<Prediction>,
    /// Aggregated tokens, cost, and virtual time.
    pub usage: UsageTotals,
    /// Request-level counters (dedup, retries, cache hits, faults).
    pub stats: ExecStats,
    /// Serving metrics for the run: latency/token histograms, failure-kind
    /// counters, cache/dedup/retry tallies. Aggregated in plan order, so
    /// identical at any worker count.
    pub metrics: MetricsSnapshot,
}

impl RunResult {
    /// Number of instances with no parsed answer.
    pub fn failed_count(&self) -> usize {
        self.predictions
            .iter()
            .filter(|p| matches!(p, Prediction::Failed(_)))
            .count()
    }

    /// Fraction of failed instances (0 for an empty run).
    pub fn failure_rate(&self) -> f64 {
        if self.predictions.is_empty() {
            return 0.0;
        }
        self.failed_count() as f64 / self.predictions.len() as f64
    }

    /// Failure counts per kind, in [`FailureKind::all`] order.
    pub fn failure_breakdown(&self) -> [(FailureKind, usize); 7] {
        FailureKind::all().map(|kind| {
            let count = self
                .predictions
                .iter()
                .filter(|p| p.failure() == Some(kind))
                .count();
            (kind, count)
        })
    }
}

/// Drives a chat model through a preprocessing run.
pub struct Preprocessor<'a, M: ChatModel + ?Sized> {
    model: &'a M,
    config: PipelineConfig,
    tracer: Arc<dyn Tracer>,
    exec_options: Option<ExecutionOptions>,
    durability: Durability,
    kill: Option<KillSwitch>,
    gate: Option<Arc<dyn crate::serve::ShardGate>>,
}

impl<'a, M: ChatModel + ?Sized> Preprocessor<'a, M> {
    /// Creates a preprocessor over `model` with `config`.
    pub fn new(model: &'a M, config: PipelineConfig) -> Self {
        Preprocessor {
            model,
            config,
            tracer: Arc::new(NullTracer),
            exec_options: None,
            durability: Durability::default(),
            kill: None,
            gate: None,
        }
    }

    /// Overrides the executor options wholesale (deadline, token budget,
    /// batch degradation, workers). When set, the override's `workers`
    /// field wins over [`PipelineConfig::workers`].
    pub fn with_exec_options(mut self, options: ExecutionOptions) -> Self {
        self.exec_options = Some(options);
        self
    }

    /// Streams the executor's request-lifecycle events into `tracer`. Wire
    /// the same tracer into the model's middleware stack so cache-hit,
    /// retry-attempt, and fault-injected events correlate by request id.
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Journals terminal requests and/or replays a recovered journal
    /// (see [`Durability`]). Failures surface through
    /// [`try_run`](Self::try_run); [`run`](Self::run) panics on them.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Arms a kill-point drill: the run aborts right after the Nth
    /// terminal event is journaled (see [`KillSwitch`]).
    pub fn with_kill_switch(mut self, kill: KillSwitch) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Interleaves this run's streaming plan shards with other jobs
    /// sharing the same gate (see
    /// [`ShardGate`](crate::serve::ShardGate)). Only effective together
    /// with [`PipelineConfig::plan_shard_size`]; the materialized path is
    /// a single shard and never yields.
    pub fn with_shard_gate(mut self, gate: Arc<dyn crate::serve::ShardGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the pipeline over `instances`, using `examples` when the
    /// configuration enables few-shot prompting.
    ///
    /// # Panics
    /// Panics when durability rejects the run ([`try_run`](Self::try_run)
    /// returns the rejection as an error instead).
    pub fn run(&self, instances: &[TaskInstance], examples: &[FewShotExample]) -> RunResult {
        self.try_run(instances, examples)
            .expect("durable run rejected")
    }

    /// [`run`](Self::run), with durability failures surfaced as errors
    /// (plan-fingerprint mismatch on resume, journal write failure).
    ///
    /// When [`PipelineConfig::plan_shard_size`] is set (and > 0), the run
    /// plans and executes through the streaming
    /// [`PlanStream`](crate::stream::PlanStream) instead of materializing
    /// the whole [`ExecutionPlan`] — same predictions, usage, counters, and
    /// metrics, with planner memory bounded by the shard size.
    pub fn try_run(
        &self,
        instances: &[TaskInstance],
        examples: &[FewShotExample],
    ) -> Result<RunResult, String> {
        let options = self.exec_options.unwrap_or(ExecutionOptions {
            workers: self.config.workers,
            ..ExecutionOptions::default()
        });
        let mut executor = Executor::new(options)
            .with_tracer(Arc::clone(&self.tracer))
            .with_durability(self.durability.clone());
        if let Some(kill) = &self.kill {
            executor = executor.with_kill_switch(kill.clone());
        }
        if let Some(gate) = &self.gate {
            executor = executor.with_shard_gate(Arc::clone(gate));
        }
        if let Some(shard_size) = self.config.plan_shard_size {
            if shard_size == 0 {
                // Rejected rather than silently falling back to the
                // materialized path: a zero shard is a config bug, and a
                // caller asking for bounded planner memory must not get an
                // unbounded plan.
                return Err("plan_shard_size must be at least 1 (0 disables nothing; \
                     unset the option to use the materialized planner)"
                    .to_string());
            }
            let mut stream = crate::stream::PlanStream::new(
                self.model,
                &self.config,
                instances,
                examples,
                shard_size,
            );
            return executor.try_run_stream(self.model, &mut stream);
        }
        let plan = ExecutionPlan::build(self.model, &self.config, instances, examples);
        executor.try_run(self.model, &plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ComponentSet;
    use crate::exec::context_fitted_batch_size;
    use dprep_llm::{ChatRequest, ChatResponse, Usage};
    use dprep_prompt::Task;
    use dprep_tabular::{Record, Schema, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A scripted model echoing a fixed verdict, counting requests
    /// (atomically — the executor may call it from several threads).
    struct ScriptedModel {
        verdict: &'static str,
        requests: AtomicUsize,
    }

    impl ScriptedModel {
        fn new(verdict: &'static str) -> Self {
            ScriptedModel {
                verdict,
                requests: AtomicUsize::new(0),
            }
        }

        fn requests(&self) -> usize {
            self.requests.load(Ordering::Relaxed)
        }
    }

    impl ChatModel for ScriptedModel {
        fn name(&self) -> &str {
            "scripted"
        }
        fn context_window(&self) -> usize {
            100_000
        }
        fn cost_usd(&self, usage: &Usage) -> f64 {
            usage.total_tokens() as f64 * 1e-6
        }
        fn chat(&self, request: &ChatRequest) -> ChatResponse {
            self.requests.fetch_add(1, Ordering::Relaxed);
            // Answer every numbered question in the final user message.
            let body = &request.messages.last().unwrap().content;
            let count = body.matches("Question ").count().max(1);
            let mut text = String::new();
            for i in 1..=count {
                text.push_str(&format!("Answer {i}: {}\n", self.verdict));
            }
            ChatResponse::new(
                text,
                Usage {
                    prompt_tokens: 100,
                    completion_tokens: 10 * count,
                },
                1.0,
            )
        }
    }

    fn em_instances(n: usize) -> Vec<TaskInstance> {
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        (0..n)
            .map(|i| {
                let rec =
                    Record::new(schema.clone(), vec![Value::text(format!("product {i}"))]).unwrap();
                TaskInstance::EntityMatching {
                    a: rec.clone(),
                    b: rec,
                }
            })
            .collect()
    }

    #[test]
    fn run_answers_every_instance() {
        let model = ScriptedModel::new("yes");
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.batch_size = 4;
        let pre = Preprocessor::new(&model, config);
        let instances = em_instances(10);
        let result = pre.run(&instances, &[]);
        assert_eq!(result.predictions.len(), 10);
        assert_eq!(result.failed_count(), 0);
        assert!(result
            .predictions
            .iter()
            .all(|p| p.as_yes_no() == Some(true)));
        // 10 instances at batch size 4 -> 3 requests.
        assert_eq!(model.requests(), 3);
        assert_eq!(result.usage.requests, 3);
        assert_eq!(result.stats.requests, 3);
        assert!(result.usage.cost_usd > 0.0);
        assert!((result.usage.latency_secs - 3.0).abs() < 1e-12);
    }

    #[test]
    fn batching_off_sends_one_request_per_instance() {
        let model = ScriptedModel::new("no");
        let config = PipelineConfig::ablation(
            Task::EntityMatching,
            ComponentSet {
                few_shot: false,
                batching: false,
                reasoning: false,
            },
            15,
        );
        let pre = Preprocessor::new(&model, config);
        let instances = em_instances(5);
        let result = pre.run(&instances, &[]);
        assert_eq!(model.requests(), 5);
        assert!(result
            .predictions
            .iter()
            .all(|p| p.as_yes_no() == Some(false)));
    }

    #[test]
    fn zero_plan_shard_size_is_rejected_with_a_clear_error() {
        let model = ScriptedModel::new("yes");
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.plan_shard_size = Some(0);
        let err = Preprocessor::new(&model, config)
            .try_run(&em_instances(3), &[])
            .expect_err("zero shard size must be rejected");
        assert!(err.contains("plan_shard_size"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        assert_eq!(model.requests(), 0, "nothing may dispatch");
    }

    #[test]
    fn empty_run_is_empty() {
        let model = ScriptedModel::new("yes");
        let pre = Preprocessor::new(&model, PipelineConfig::best(Task::EntityMatching));
        let result = pre.run(&[], &[]);
        assert!(result.predictions.is_empty());
        assert_eq!(result.usage.requests, 0);
        assert_eq!(result.failure_rate(), 0.0);
    }

    /// A model that never answers question 2.
    struct SkippingModel;

    impl ChatModel for SkippingModel {
        fn name(&self) -> &str {
            "skipper"
        }
        fn context_window(&self) -> usize {
            100_000
        }
        fn cost_usd(&self, _usage: &Usage) -> f64 {
            0.0
        }
        fn chat(&self, request: &ChatRequest) -> ChatResponse {
            let body = &request.messages.last().unwrap().content;
            let count = body.matches("Question ").count().max(1);
            let mut text = String::new();
            for i in 1..=count {
                if i != 2 {
                    text.push_str(&format!("Answer {i}: yes\n"));
                }
            }
            ChatResponse::new(text, Usage::default(), 0.1)
        }
    }

    #[test]
    fn skipped_answers_are_classified() {
        let model = SkippingModel;
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.batch_size = 3;
        config.components.reasoning = false;
        let pre = Preprocessor::new(&model, config);
        let instances = em_instances(3);
        let result = pre.run(&instances, &[]);
        assert_eq!(result.failed_count(), 1);
        assert!((result.failure_rate() - 1.0 / 3.0).abs() < 1e-12);
        let skipped = result
            .failure_breakdown()
            .iter()
            .find(|(k, _)| *k == FailureKind::SkippedAnswer)
            .map(|&(_, n)| n)
            .unwrap();
        assert_eq!(skipped, 1);
        // Every instance is accounted for: answered + failed == total.
        let answered = result
            .predictions
            .iter()
            .filter(|p| p.answer().is_some())
            .count();
        assert_eq!(answered + result.failed_count(), instances.len());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let instances = em_instances(23);
        let mut reference: Option<RunResult> = None;
        for workers in [1usize, 2, 8] {
            let model = ScriptedModel::new("yes");
            let mut config = PipelineConfig::best(Task::EntityMatching);
            config.components.few_shot = false;
            config.batch_size = 3;
            config.workers = workers;
            let result = Preprocessor::new(&model, config).run(&instances, &[]);
            if let Some(reference) = &reference {
                assert_eq!(
                    result.predictions, reference.predictions,
                    "workers={workers}"
                );
                assert_eq!(result.stats, reference.stats, "workers={workers}");
                assert_eq!(
                    result.usage.total_tokens(),
                    reference.usage.total_tokens(),
                    "workers={workers}"
                );
                assert_eq!(result.usage.requests, reference.usage.requests);
                assert!((result.usage.cost_usd - reference.usage.cost_usd).abs() < 1e-15);
                assert!((result.usage.latency_secs - reference.usage.latency_secs).abs() < 1e-15);
                // The metrics snapshot aggregates in plan order, so it is
                // worker-count independent too (histograms included).
                assert_eq!(result.metrics, reference.metrics, "workers={workers}");
            } else {
                reference = Some(result);
            }
        }
    }

    #[test]
    fn identical_batches_are_deduplicated_at_plan_time() {
        // Ten byte-identical instances at batch size 1 produce ten identical
        // prompts -> one dispatched request regardless of worker count.
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        let rec = Record::new(schema, vec![Value::text("same product")]).unwrap();
        let instances: Vec<TaskInstance> = (0..10)
            .map(|_| TaskInstance::EntityMatching {
                a: rec.clone(),
                b: rec.clone(),
            })
            .collect();
        for workers in [1usize, 4] {
            let model = ScriptedModel::new("yes");
            let mut config = PipelineConfig::best(Task::EntityMatching);
            config.components.few_shot = false;
            config.components.batching = false;
            config.workers = workers;
            let result = Preprocessor::new(&model, config).run(&instances, &[]);
            assert_eq!(model.requests(), 1, "workers={workers}");
            assert_eq!(result.stats.deduped, 9);
            assert_eq!(result.usage.requests, 1);
            assert!(result
                .predictions
                .iter()
                .all(|p| p.as_yes_no() == Some(true)));
        }
    }

    // --- context_fitted_batch_size edge cases ---------------------------

    fn fit_config(batch_size: usize) -> PipelineConfig {
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.batch_size = batch_size;
        config
    }

    #[test]
    fn context_fit_empty_slice_keeps_configured_size() {
        let model = ScriptedModel::new("yes");
        let config = fit_config(12);
        assert_eq!(context_fitted_batch_size(&model, &config, &[], &[]), 12);
    }

    #[test]
    fn context_fit_batch_size_one_is_passthrough() {
        let model = ScriptedModel::new("yes");
        let mut config = fit_config(1);
        let instances = em_instances(3);
        assert_eq!(
            context_fitted_batch_size(&model, &config, &instances, &[]),
            1
        );
        // Batching disabled entirely behaves the same.
        config.components.batching = false;
        config.batch_size = 15;
        assert_eq!(
            context_fitted_batch_size(&model, &config, &instances, &[]),
            1
        );
    }

    #[test]
    fn context_fit_oversized_question_clamps_to_one() {
        /// A model whose window is smaller than any one-question prompt.
        struct TinyWindow;
        impl ChatModel for TinyWindow {
            fn name(&self) -> &str {
                "tiny"
            }
            fn context_window(&self) -> usize {
                10
            }
            fn cost_usd(&self, _usage: &Usage) -> f64 {
                0.0
            }
            fn chat(&self, _request: &ChatRequest) -> ChatResponse {
                ChatResponse::new("", Usage::default(), 0.0)
            }
        }
        let config = fit_config(15);
        let instances = em_instances(5);
        assert_eq!(
            context_fitted_batch_size(&TinyWindow, &config, &instances, &[]),
            1
        );
    }

    #[test]
    fn context_fit_never_exceeds_configured_size() {
        let model = ScriptedModel::new("yes");
        let config = fit_config(4);
        let instances = em_instances(50);
        // A 100k window fits far more than 4 questions; the configured size
        // is the ceiling.
        assert_eq!(
            context_fitted_batch_size(&model, &config, &instances, &[]),
            4
        );
    }
}
