//! The end-to-end preprocessing pipeline (the paper's Figure 1).
//!
//! ```text
//! instances ── batching ──► prompt builder ──► chat model ──► parser ──► predictions
//!                  ▲              ▲                                │
//!             (clustering)   (few-shot, zero-shot,             (usage,
//!                             contextualization,             cost, time)
//!                             feature selection)
//! ```

use dprep_llm::{ChatModel, UsageTotals};
use dprep_prompt::{
    build_request, make_batches, parse_response, ExtractedAnswer, FewShotExample, TaskInstance,
};

use crate::config::PipelineConfig;

/// The pipeline's output for one data instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prediction {
    /// A parsed answer.
    Answered(ExtractedAnswer),
    /// The model's response for this instance could not be parsed (format
    /// violation, skipped answer, or context overflow).
    Unparsed,
}

impl Prediction {
    /// The parsed answer, if any.
    pub fn answer(&self) -> Option<&ExtractedAnswer> {
        match self {
            Prediction::Answered(a) => Some(a),
            Prediction::Unparsed => None,
        }
    }

    /// Yes/no view of the answer (for ED/SM/EM).
    pub fn as_yes_no(&self) -> Option<bool> {
        self.answer().and_then(ExtractedAnswer::as_yes_no)
    }

    /// Value view of the answer (for DI).
    pub fn value(&self) -> Option<&str> {
        self.answer().map(|a| a.value.as_str())
    }
}

/// Result of a full run: one prediction per input instance (same order)
/// plus usage totals.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-instance predictions, parallel to the input slice.
    pub predictions: Vec<Prediction>,
    /// Aggregated tokens, cost, and virtual time.
    pub usage: UsageTotals,
}

impl RunResult {
    /// Number of instances whose answer could not be parsed.
    pub fn unparsed_count(&self) -> usize {
        self.predictions
            .iter()
            .filter(|p| matches!(p, Prediction::Unparsed))
            .count()
    }

    /// Fraction of unparseable instances (0 for an empty run).
    pub fn unparsed_rate(&self) -> f64 {
        if self.predictions.is_empty() {
            return 0.0;
        }
        self.unparsed_count() as f64 / self.predictions.len() as f64
    }
}

/// Drives a chat model through a preprocessing run.
pub struct Preprocessor<'a, M: ChatModel + ?Sized> {
    model: &'a M,
    config: PipelineConfig,
}

impl<'a, M: ChatModel + ?Sized> Preprocessor<'a, M> {
    /// Creates a preprocessor over `model` with `config`.
    pub fn new(model: &'a M, config: PipelineConfig) -> Self {
        Preprocessor { model, config }
    }

    /// Largest batch size whose prompt fits in ~85% of the model's context
    /// window, estimated from a one-instance sample request.
    fn context_fitted_batch_size(
        &self,
        instances: &[TaskInstance],
        shots: &[FewShotExample],
    ) -> usize {
        let configured = self.config.effective_batch_size();
        if configured <= 1 || instances.is_empty() {
            return configured.max(1);
        }
        let prompt_config = self.config.prompt_config();
        let sample = build_request(&prompt_config, shots, &[&instances[0]]);
        let fixed_plus_one = dprep_text::count_tokens(&sample.full_text());
        let per_question = dprep_text::count_tokens(
            &instances[0].question_text(prompt_config.feature_indices.as_deref()),
        ) + 8;
        let budget = (self.model.context_window() as f64 * 0.85) as usize;
        if fixed_plus_one >= budget {
            return 1;
        }
        (1 + (budget - fixed_plus_one) / per_question.max(1)).min(configured)
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the pipeline over `instances`, using `examples` when the
    /// configuration enables few-shot prompting.
    pub fn run(&self, instances: &[TaskInstance], examples: &[FewShotExample]) -> RunResult {
        let mut predictions = vec![Prediction::Unparsed; instances.len()];
        let mut usage = UsageTotals::default();
        if instances.is_empty() {
            return RunResult { predictions, usage };
        }

        let shots: &[FewShotExample] = if self.config.components.few_shot {
            examples
        } else {
            &[]
        };
        let prompt_config = self.config.prompt_config();
        let mut strategy = self.config.batch_strategy();
        if self.config.fit_context {
            let clamped = self.context_fitted_batch_size(instances, shots);
            strategy = match strategy {
                dprep_prompt::BatchStrategy::Random { batch_size } => {
                    dprep_prompt::BatchStrategy::Random {
                        batch_size: batch_size.min(clamped),
                    }
                }
                dprep_prompt::BatchStrategy::Cluster { batch_size, clusters } => {
                    dprep_prompt::BatchStrategy::Cluster {
                        batch_size: batch_size.min(clamped),
                        clusters,
                    }
                }
            };
        }
        let batches = make_batches(instances, &strategy, self.config.seed);

        for batch in batches {
            let batch_refs: Vec<&TaskInstance> = batch.iter().map(|&i| &instances[i]).collect();
            let request = build_request(&prompt_config, shots, &batch_refs)
                .with_temperature(
                    self.config
                        .temperature
                        .unwrap_or_else(|| self.model.default_temperature()),
                );
            let response = self.model.chat(&request);
            usage.record(
                &response.usage,
                self.model.cost_usd(&response.usage),
                response.latency_secs,
            );
            let answers = parse_response(&response.text, prompt_config.reasoning);
            for (position, &instance_idx) in batch.iter().enumerate() {
                if let Some(extracted) = answers.get(&(position + 1)) {
                    predictions[instance_idx] = Prediction::Answered(extracted.clone());
                }
            }
        }

        RunResult { predictions, usage }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ComponentSet;
    use dprep_llm::{ChatRequest, ChatResponse, Usage};
    use dprep_prompt::Task;
    use dprep_tabular::{Record, Schema, Value};

    /// A scripted model echoing a fixed verdict, counting requests.
    struct ScriptedModel {
        verdict: &'static str,
        requests: std::cell::Cell<usize>,
    }

    impl ScriptedModel {
        fn new(verdict: &'static str) -> Self {
            ScriptedModel {
                verdict,
                requests: std::cell::Cell::new(0),
            }
        }
    }

    impl ChatModel for ScriptedModel {
        fn name(&self) -> &str {
            "scripted"
        }
        fn context_window(&self) -> usize {
            100_000
        }
        fn cost_usd(&self, usage: &Usage) -> f64 {
            usage.total_tokens() as f64 * 1e-6
        }
        fn chat(&self, request: &ChatRequest) -> ChatResponse {
            self.requests.set(self.requests.get() + 1);
            // Answer every numbered question in the final user message.
            let body = &request.messages.last().unwrap().content;
            let count = body.matches("Question ").count().max(1);
            let mut text = String::new();
            for i in 1..=count {
                text.push_str(&format!("Answer {i}: {}\n", self.verdict));
            }
            ChatResponse {
                text,
                usage: Usage {
                    prompt_tokens: 100,
                    completion_tokens: 10 * count,
                },
                latency_secs: 1.0,
            }
        }
    }

    fn em_instances(n: usize) -> Vec<TaskInstance> {
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        (0..n)
            .map(|i| {
                let rec = Record::new(
                    schema.clone(),
                    vec![Value::text(format!("product {i}"))],
                )
                .unwrap();
                TaskInstance::EntityMatching {
                    a: rec.clone(),
                    b: rec,
                }
            })
            .collect()
    }

    #[test]
    fn run_answers_every_instance() {
        let model = ScriptedModel::new("yes");
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.batch_size = 4;
        let pre = Preprocessor::new(&model, config);
        let instances = em_instances(10);
        let result = pre.run(&instances, &[]);
        assert_eq!(result.predictions.len(), 10);
        assert_eq!(result.unparsed_count(), 0);
        assert!(result
            .predictions
            .iter()
            .all(|p| p.as_yes_no() == Some(true)));
        // 10 instances at batch size 4 -> 3 requests.
        assert_eq!(model.requests.get(), 3);
        assert_eq!(result.usage.requests, 3);
        assert!(result.usage.cost_usd > 0.0);
        assert!((result.usage.latency_secs - 3.0).abs() < 1e-12);
    }

    #[test]
    fn batching_off_sends_one_request_per_instance() {
        let model = ScriptedModel::new("no");
        let config = PipelineConfig::ablation(
            Task::EntityMatching,
            ComponentSet {
                few_shot: false,
                batching: false,
                reasoning: false,
            },
            15,
        );
        let pre = Preprocessor::new(&model, config);
        let instances = em_instances(5);
        let result = pre.run(&instances, &[]);
        assert_eq!(model.requests.get(), 5);
        assert!(result.predictions.iter().all(|p| p.as_yes_no() == Some(false)));
    }

    #[test]
    fn empty_run_is_empty() {
        let model = ScriptedModel::new("yes");
        let pre = Preprocessor::new(&model, PipelineConfig::best(Task::EntityMatching));
        let result = pre.run(&[], &[]);
        assert!(result.predictions.is_empty());
        assert_eq!(result.usage.requests, 0);
        assert_eq!(result.unparsed_rate(), 0.0);
    }

    /// A model that never answers question 2.
    struct SkippingModel;

    impl ChatModel for SkippingModel {
        fn name(&self) -> &str {
            "skipper"
        }
        fn context_window(&self) -> usize {
            100_000
        }
        fn cost_usd(&self, _usage: &Usage) -> f64 {
            0.0
        }
        fn chat(&self, request: &ChatRequest) -> ChatResponse {
            let body = &request.messages.last().unwrap().content;
            let count = body.matches("Question ").count().max(1);
            let mut text = String::new();
            for i in 1..=count {
                if i != 2 {
                    text.push_str(&format!("Answer {i}: yes\n"));
                }
            }
            ChatResponse {
                text,
                usage: Usage::default(),
                latency_secs: 0.1,
            }
        }
    }

    #[test]
    fn skipped_answers_become_unparsed() {
        let model = SkippingModel;
        let mut config = PipelineConfig::best(Task::EntityMatching);
        config.components.few_shot = false;
        config.batch_size = 3;
        config.components.reasoning = false;
        let pre = Preprocessor::new(&model, config);
        let instances = em_instances(3);
        let result = pre.run(&instances, &[]);
        assert_eq!(result.unparsed_count(), 1);
        assert!((result.unparsed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }
}
