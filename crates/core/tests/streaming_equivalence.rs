//! Streaming-planner equivalence: a run through `PlanStream` +
//! `Executor::try_run_stream` must be bit-identical to the materialized
//! `ExecutionPlan` + `Executor::try_run` path at every shard size and worker
//! count — same predictions, usage totals, serving counters, and metrics
//! snapshot — and a ladder-free streaming run must write the byte-identical
//! journal. Kill-point drills prove that a streaming run resumed from a
//! partial journal reproduces the uninterrupted streaming run exactly.

use std::sync::Arc;

use dprep_core::exec::{ExecutionOptions, ExecutionPlan};
use dprep_core::{
    Durability, Executor, KillSwitch, PipelineConfig, PlanStream, Prediction, Preprocessor,
    RunResult,
};
use dprep_llm::{ChatModel, ChatRequest, ChatResponse, Usage};
use dprep_obs::{AuditTracer, CollectingTracer, DurableJournal, Tracer};
use dprep_prompt::{Task, TaskInstance};
use dprep_tabular::{Record, Schema, Value};

/// Answers every question except one per multi-question batch (steering some
/// batches into the degradation ladder when it is enabled), billing fixed
/// per-attempt usage so budget arithmetic is exact.
struct FlakyModel {
    /// 1-based question number skipped in multi-question prompts.
    skip: usize,
}

impl ChatModel for FlakyModel {
    fn name(&self) -> &str {
        "flaky"
    }
    fn context_window(&self) -> usize {
        100_000
    }
    fn cost_usd(&self, usage: &Usage) -> f64 {
        usage.total_tokens() as f64 * 1e-6
    }
    fn chat(&self, request: &ChatRequest) -> ChatResponse {
        let body = &request.messages.last().unwrap().content;
        let count = body
            .lines()
            .filter(|l| l.trim_start().starts_with("Question "))
            .count()
            .max(1);
        let mut text = String::new();
        for i in 1..=count {
            if count == 1 || i != self.skip {
                text.push_str(&format!("Answer {i}: yes\n"));
            }
        }
        ChatResponse::new(
            text,
            Usage {
                prompt_tokens: 100,
                completion_tokens: 10 * count,
            },
            2.0,
        )
    }
}

/// `n` EM instances; every `dup_every`-th repeats a fixed pair so plans
/// contain cross-batch duplicate requests (dedup + response retention across
/// shards).
fn em_instances(n: usize, dup_every: usize) -> Vec<TaskInstance> {
    let schema = Schema::all_text(&["title"]).unwrap().shared();
    (0..n)
        .map(|i| {
            let label = if dup_every > 0 && i % dup_every == 0 {
                "duplicate product".to_string()
            } else {
                format!("product {i}")
            };
            let rec = Record::new(schema.clone(), vec![Value::text(label)]).unwrap();
            TaskInstance::EntityMatching {
                a: rec.clone(),
                b: rec,
            }
        })
        .collect()
}

fn config(batch_size: usize) -> PipelineConfig {
    let mut config = PipelineConfig::best(Task::EntityMatching);
    config.components.few_shot = false;
    config.components.reasoning = false;
    config.batch_size = batch_size;
    config.fit_context = false;
    config
}

fn assert_identical(result: &RunResult, reference: &RunResult, label: &str) {
    assert_eq!(result.predictions, reference.predictions, "{label}");
    assert_eq!(result.stats, reference.stats, "{label}");
    assert_eq!(result.usage.requests, reference.usage.requests, "{label}");
    assert_eq!(
        result.usage.total_tokens(),
        reference.usage.total_tokens(),
        "{label}"
    );
    assert!(
        (result.usage.cost_usd - reference.usage.cost_usd).abs() < 1e-15,
        "{label}"
    );
    assert!(
        (result.usage.latency_secs - reference.usage.latency_secs).abs() < 1e-15,
        "{label}"
    );
    // When the degradation ladder runs, streaming sums the same per-request
    // costs in shard order instead of materialized order, so the f64 total
    // can differ in the last ulp; every other metric is integral.
    let mut metrics = result.metrics.clone();
    let mut reference_metrics = reference.metrics.clone();
    assert!(
        (metrics.cost_usd - reference_metrics.cost_usd).abs() < 1e-15,
        "{label}"
    );
    metrics.cost_usd = 0.0;
    reference_metrics.cost_usd = 0.0;
    assert_eq!(metrics, reference_metrics, "{label}");
}

/// The tentpole equivalence: dedup + parse misses + the degradation ladder,
/// across shard sizes bracketing the batch count and across worker counts.
#[test]
fn streaming_matches_materialized_at_every_shard_size_and_worker_count() {
    let model = FlakyModel { skip: 2 };
    let instances = em_instances(23, 5);
    let config = config(3);
    for workers in [1usize, 4] {
        let options = ExecutionOptions {
            workers,
            degrade: true,
            ..ExecutionOptions::default()
        };
        let plan = ExecutionPlan::build(&model, &config, &instances, &[]);
        let reference = Executor::new(options).run(&model, &plan);
        assert!(
            reference.stats.splits > 0,
            "workload must exercise the ladder"
        );
        for shard_size in [1usize, 2, 3, 7, 1000] {
            let audit = Arc::new(AuditTracer::new());
            let mut stream = PlanStream::new(&model, &config, &instances, &[], shard_size);
            assert_eq!(stream.fingerprint(), plan.fingerprint());
            let result = Executor::new(options)
                .with_tracer(audit.clone() as Arc<dyn Tracer>)
                .try_run_stream(&model, &mut stream)
                .unwrap();
            audit.assert_clean();
            assert_identical(
                &result,
                &reference,
                &format!("shard_size={shard_size} workers={workers}"),
            );
        }
    }
}

/// Cross-shard dedup and response retention: with batching off, duplicate
/// instances in later shards are served by a request dispatched shards
/// earlier — the executor must keep that response alive until its last
/// referencing batch parses, and drop it afterwards.
#[test]
fn deduped_responses_are_retained_across_shards() {
    let model = FlakyModel { skip: 999 };
    // Every even instance is the same pair: 6 duplicate batches collapsing
    // into one request first seen in shard 0 and last used in the final
    // shard, interleaved with 5 unique batches.
    let instances = em_instances(11, 2);
    let mut config = config(1);
    config.components.batching = false;
    let plan = ExecutionPlan::build(&model, &config, &instances, &[]);
    let reference = Executor::serial().run(&model, &plan);
    assert_eq!(reference.stats.deduped, 5, "workload must exercise dedup");
    for shard_size in [1usize, 2, 3] {
        let mut stream = PlanStream::new(&model, &config, &instances, &[], shard_size);
        let result = Executor::serial()
            .try_run_stream(&model, &mut stream)
            .unwrap();
        assert_identical(&result, &reference, &format!("shard_size={shard_size}"));
    }
}

/// The `Preprocessor` facade routes through the streaming path when
/// `plan_shard_size` is set, with identical output.
#[test]
fn preprocessor_shard_size_knob_is_result_invariant() {
    let instances = em_instances(14, 4);
    let model = FlakyModel { skip: 1 };
    let mut reference: Option<RunResult> = None;
    for plan_shard_size in [None, Some(1), Some(2), Some(6)] {
        let mut config = config(3);
        config.plan_shard_size = plan_shard_size;
        let result = Preprocessor::new(&model, config)
            .with_exec_options(ExecutionOptions {
                degrade: true,
                ..ExecutionOptions::default()
            })
            .run(&instances, &[]);
        if let Some(reference) = &reference {
            assert_identical(&result, reference, &format!("{plan_shard_size:?}"));
        } else {
            reference = Some(result);
        }
    }
}

fn journal_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dprep-stream-test-{}-{name}.jsonl",
        std::process::id()
    ));
    p
}

/// With no degradation ladder in play, the streaming journal is not just the
/// same entry set — it is the byte-identical file.
#[test]
fn ladder_free_streaming_journal_is_byte_identical() {
    let model = FlakyModel { skip: 999 }; // answers everything: no ladder
    let instances = em_instances(12, 4);
    let config = config(2);
    let materialized_path = journal_path("bytes-materialized");
    let plan = ExecutionPlan::build(&model, &config, &instances, &[]);
    let journal = Arc::new(DurableJournal::fresh(&materialized_path, "flaky", "cfg", 0).unwrap());
    Executor::serial()
        .with_durability(Durability::new().with_journal(journal))
        .run(&model, &plan);
    let reference_bytes = std::fs::read(&materialized_path).unwrap();
    assert!(!reference_bytes.is_empty());
    for shard_size in [1usize, 3, 100] {
        let path = journal_path(&format!("bytes-shard-{shard_size}"));
        let journal = Arc::new(DurableJournal::fresh(&path, "flaky", "cfg", 0).unwrap());
        let mut stream = PlanStream::new(&model, &config, &instances, &[], shard_size);
        Executor::serial()
            .with_durability(Durability::new().with_journal(journal))
            .try_run_stream(&model, &mut stream)
            .unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            reference_bytes,
            "shard_size={shard_size}"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&materialized_path).ok();
}

/// Stage events aggregate across shards: exactly four, once, with the other
/// lifecycle counts matching the materialized run's.
#[test]
fn streaming_emits_aggregated_stage_events_once() {
    let model = FlakyModel { skip: 999 };
    let instances = em_instances(10, 0);
    let config = config(2);
    let tracer = Arc::new(CollectingTracer::new());
    let mut stream = PlanStream::new(&model, &config, &instances, &[], 2);
    let n_requests = stream.n_requests();
    let result = Executor::serial()
        .with_tracer(tracer.clone() as Arc<dyn Tracer>)
        .try_run_stream(&model, &mut stream)
        .unwrap();
    assert_eq!(tracer.count("run_started"), 1);
    assert_eq!(tracer.count("planned"), n_requests);
    assert_eq!(tracer.count("dispatched"), n_requests);
    assert_eq!(tracer.count("completed"), n_requests);
    assert_eq!(tracer.count("prompt_components"), n_requests);
    assert_eq!(
        tracer.count("stage"),
        4,
        "plan, prompt-build, dispatch, parse — once each, aggregated"
    );
    assert_eq!(tracer.count("parsed"), 10);
    assert_eq!(tracer.count("run_finished"), 1);
    assert_eq!(result.metrics.answered, 10);
}

/// A tripped token budget cancels the identical request suffix in both paths
/// when no ladder interleaves extra charges.
#[test]
fn budget_cancellation_matches_materialized_without_a_ladder() {
    let model = FlakyModel { skip: 999 };
    let instances = em_instances(12, 0);
    let config = config(2);
    // Each request bills 120 tokens; 300 lets three complete
    // (charge-then-check) and cancels the rest.
    let options = ExecutionOptions {
        token_budget: Some(300),
        ..ExecutionOptions::default()
    };
    let plan = ExecutionPlan::build(&model, &config, &instances, &[]);
    let reference = Executor::new(options).run(&model, &plan);
    assert!(reference.stats.cancelled > 0);
    for shard_size in [1usize, 2, 4] {
        let mut stream = PlanStream::new(&model, &config, &instances, &[], shard_size);
        let result = Executor::new(options)
            .try_run_stream(&model, &mut stream)
            .unwrap();
        assert_identical(&result, &reference, &format!("shard_size={shard_size}"));
    }
}

/// The kill-point drill on the streaming path: kill after every terminal,
/// resume streaming from the partial journal, and land bit-identical to the
/// uninterrupted streaming run — the journal contract survives sharding.
#[test]
fn killed_and_resumed_streaming_runs_are_bit_identical() {
    let model = FlakyModel { skip: 999 };
    let instances = em_instances(8, 0);
    let config = config(2);
    let shard_size = 2;
    let run_streaming = |durability: Durability,
                         kill: Option<KillSwitch>,
                         tracer: Option<Arc<dyn Tracer>>|
     -> RunResult {
        let mut executor = Executor::serial().with_durability(durability);
        if let Some(kill) = kill {
            executor = executor.with_kill_switch(kill);
        }
        if let Some(tracer) = tracer {
            executor = executor.with_tracer(tracer);
        }
        let mut stream = PlanStream::new(&model, &config, &instances, &[], shard_size);
        executor.try_run_stream(&model, &mut stream).unwrap()
    };
    let reference = run_streaming(Durability::new(), None, None);
    let n_requests = reference.stats.requests;
    assert_eq!(n_requests, 4);

    for kill_at in 1..=n_requests {
        let path = journal_path(&format!("kill-{kill_at}"));
        let journal = Arc::new(DurableJournal::fresh(&path, "flaky", "cfg", 0).unwrap());
        let kill = KillSwitch::after(kill_at);
        let killed = run_streaming(
            Durability::new().with_journal(journal),
            Some(kill.clone()),
            None,
        );
        assert!(kill.fired(), "kill_at={kill_at}");
        assert!(killed.usage.requests <= kill_at);
        // The partial result really is partial: later instances never got a
        // prediction beyond the placeholder.
        if kill_at < n_requests {
            assert!(killed
                .predictions
                .iter()
                .any(|p| matches!(p, Prediction::Failed(_))));
        }

        let recovered = DurableJournal::resume(&path).unwrap();
        assert!(recovered.warning.is_none());
        assert_eq!(recovered.entries.len(), kill_at);
        let audit = Arc::new(AuditTracer::new());
        let plan = recovered.require_header().unwrap().plan;
        let resumed = run_streaming(
            Durability::new()
                .with_journal(Arc::new(recovered.journal))
                .with_replay(&recovered.entries, plan),
            None,
            Some(audit.clone() as Arc<dyn Tracer>),
        );
        audit.assert_clean();
        assert_eq!(
            resumed.predictions, reference.predictions,
            "kill_at={kill_at}"
        );
        assert_eq!(resumed.stats, reference.stats, "kill_at={kill_at}");
        assert_eq!(resumed.usage.total_tokens(), reference.usage.total_tokens());
        assert!((resumed.usage.cost_usd - reference.usage.cost_usd).abs() < 1e-15);
        assert!((resumed.usage.latency_secs - reference.usage.latency_secs).abs() < 1e-15);
        let mut metrics = resumed.metrics.clone();
        assert_eq!(metrics.journal_replayed, kill_at);
        assert_eq!(metrics.journal_written, n_requests - kill_at);
        metrics.journal_replayed = 0;
        metrics.journal_written = 0;
        metrics.journal_truncated = 0;
        assert_eq!(metrics, reference.metrics, "kill_at={kill_at}");
        std::fs::remove_file(&path).ok();
    }
}

/// A streaming resume refuses a journal recorded for a different plan, just
/// like the materialized path — and the check fires before any dispatch.
#[test]
fn streaming_resume_rejects_a_mismatched_plan() {
    let model = FlakyModel { skip: 999 };
    let config = config(2);
    let instances = em_instances(4, 0);
    let path = journal_path("mismatch");
    let journal = Arc::new(DurableJournal::fresh(&path, "flaky", "cfg", 0).unwrap());
    let mut stream = PlanStream::new(&model, &config, &instances, &[], 2);
    Executor::serial()
        .with_durability(Durability::new().with_journal(journal))
        .try_run_stream(&model, &mut stream)
        .unwrap();
    let recovered = DurableJournal::resume(&path).unwrap();
    let other = em_instances(6, 0);
    let mut other_stream = PlanStream::new(&model, &config, &other, &[], 2);
    let err = Executor::serial()
        .with_durability(
            Durability::new()
                .with_replay(&recovered.entries, recovered.require_header().unwrap().plan),
        )
        .try_run_stream(&model, &mut other_stream)
        .unwrap_err();
    assert!(err.contains("refusing to resume"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// Satellite of the serving tentpole: two tenants running the same
/// streaming workload concurrently through the [`JobScheduler`] — their
/// shards strictly interleaved by the shared turnstile — each produce a
/// result byte-identical to a serial one-shot run. Fair-share gating is
/// pure scheduling; it must never leak into results.
#[test]
fn concurrent_tenants_through_the_scheduler_stay_bit_identical() {
    use dprep_core::{JobOutcome, JobScheduler, TenantLedger};
    use std::sync::Mutex;

    let instances = em_instances(16, 5);
    let run_config = || {
        let mut c = config(3);
        c.plan_shard_size = Some(2);
        c
    };
    let options = ExecutionOptions {
        workers: 2,
        degrade: true,
        ..ExecutionOptions::default()
    };

    // Serial one-shot reference, no gate: what either tenant would get
    // running alone.
    let model = FlakyModel { skip: 1 };
    let reference = Preprocessor::new(&model, run_config())
        .with_exec_options(options)
        .run(&instances, &[]);

    let scheduler = JobScheduler::new(TenantLedger::new());
    let results: Vec<Mutex<Option<RunResult>>> = vec![Mutex::new(None), Mutex::new(None)];
    std::thread::scope(|scope| {
        for (tenant, slot) in ["acme", "bmce"].into_iter().zip(&results) {
            let scheduler = &scheduler;
            let instances = &instances;
            scope.spawn(move || {
                scheduler
                    .run_job(tenant, options, |grant| {
                        let model = FlakyModel { skip: 1 };
                        let result = Preprocessor::new(&model, run_config())
                            .with_exec_options(grant.options)
                            .with_shard_gate(Arc::clone(&grant.gate))
                            .try_run(instances, &[])?;
                        *slot.lock().unwrap() = Some(result);
                        Ok(JobOutcome::default())
                    })
                    .expect("job admitted and completed");
            });
        }
    });

    for (i, slot) in results.iter().enumerate() {
        let result = slot
            .lock()
            .unwrap()
            .take()
            .expect("tenant produced a result");
        assert_identical(&result, &reference, &format!("concurrent tenant {i}"));
    }
}
