//! Integration: the blocking stage composed with the matching pipeline on
//! generated benchmark data — the full EM workflow of §2.1.

use std::sync::Arc;

use dprep_core::blocking::{evaluate_blocking, NgramBlocker};
use dprep_core::{PipelineConfig, Preprocessor};
use dprep_llm::{ModelProfile, SimulatedLlm};
use dprep_prompt::{Task, TaskInstance};
use dprep_tabular::Record;

/// Rebuilds left/right record collections from an EM dataset's pairs.
fn unpair(ds: &dprep_datasets::Dataset) -> (Vec<Record>, Vec<Record>, Vec<(usize, usize)>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut gold = Vec::new();
    for (inst, label) in ds.instances.iter().zip(&ds.labels) {
        let TaskInstance::EntityMatching { a, b } = inst else {
            continue;
        };
        let idx = left.len();
        left.push(a.clone());
        right.push(b.clone());
        if label.as_bool() == Some(true) {
            gold.push((idx, idx));
        }
    }
    (left, right, gold)
}

#[test]
fn block_then_match_recovers_most_gold_pairs() {
    let ds = dprep_datasets::dataset_by_name("Fodors-Zagats", 1.0, 17).unwrap();
    let (left, right, gold) = unpair(&ds);

    // Stage 1: blocking prunes the cross product but keeps the matches.
    let candidates = NgramBlocker {
        min_shared: 2,
        ..NgramBlocker::default()
    }
    .block(&left, &right);
    let stats = evaluate_blocking(&candidates, &gold, left.len(), right.len());
    assert!(stats.pair_completeness > 0.95, "{stats:?}");
    assert!(stats.reduction_ratio > 0.8, "{stats:?}");

    // Stage 2: pairwise matching over the candidates.
    let instances: Vec<TaskInstance> = candidates
        .pairs
        .iter()
        .map(|&(i, j)| TaskInstance::EntityMatching {
            a: left[i].clone(),
            b: right[j].clone(),
        })
        .collect();
    let model = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(ds.kb.clone()));
    let mut config = PipelineConfig::best(Task::EntityMatching);
    config.batch_size = 12;
    let pre = Preprocessor::new(&model, config);
    let result = pre.run(&instances, &ds.few_shot);

    let matched: std::collections::HashSet<(usize, usize)> = candidates
        .pairs
        .iter()
        .zip(&result.predictions)
        .filter(|(_, p)| p.as_yes_no() == Some(true))
        .map(|(pair, _)| *pair)
        .collect();
    let recovered = gold.iter().filter(|g| matched.contains(g)).count();
    assert!(
        recovered as f64 / gold.len() as f64 > 0.85,
        "end-to-end recall {recovered}/{}",
        gold.len()
    );
    // Precision at blocking scale: the candidate set is ~500x larger than
    // the gold set, so even a small per-candidate false-positive rate
    // swamps absolute precision — the classic reason EM systems tune
    // blocking and matching jointly. The per-candidate FP rate itself must
    // stay small.
    let false_positives = matched.len() - recovered;
    let fp_rate = false_positives as f64 / candidates.pairs.len() as f64;
    assert!(fp_rate < 0.08, "per-candidate FP rate {fp_rate:.4}");
}

#[test]
fn repair_pipeline_bills_both_passes() {
    // A second repair scenario at a different surface than the unit test:
    // dirty numeric cells across several rows.
    use dprep_llm::{Fact, KnowledgeBase};
    use dprep_tabular::{Schema, Table, Value};

    let schema = Schema::all_text(&["name", "hours"]).unwrap().shared();
    let mut table = Table::new(Arc::clone(&schema));
    for (name, hours) in [("a", "40"), ("b", "900"), ("c", "35"), ("d", "777")] {
        table
            .push_values(vec![Value::text(name), Value::text(hours)])
            .unwrap();
    }
    let mut kb = KnowledgeBase::new();
    kb.add(Fact::NumericRange {
        attribute: "hours".into(),
        min: 1.0,
        max: 99.0,
    });
    let model = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(kb));
    let outcome = dprep_core::Repairer::new(&model).repair(&table, &["hours".into()], &[], &[]);
    let repaired_rows: Vec<usize> = outcome.repairs.iter().map(|r| r.row).collect();
    assert_eq!(repaired_rows, vec![1, 3], "{:?}", outcome.repairs);
    // Clean cells untouched.
    assert_eq!(
        outcome.table.row(0).unwrap().get_by_name("hours"),
        Some(&Value::text("40"))
    );
    assert!(outcome.usage.requests >= 2);
}
