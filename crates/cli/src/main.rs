//! `dprep` — command-line data preprocessing over CSV files with the
//! simulated-LLM framework.
//!
//! ```text
//! dprep detect --input dirty.csv [--attrs age,city] [--model sim-gpt-4] [--facts facts.tsv]
//! dprep impute --input gaps.csv --attribute city [--facts facts.tsv]
//! dprep match  --left a.csv --right b.csv [--blocker ngram|embedding|none]
//! dprep datasets
//! ```
//!
//! World knowledge is supplied as a tab-separated facts file (see
//! [`facts`]); without one the model falls back to generic heuristics.

mod args;
mod commands;
mod facts;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `report` takes positional file arguments, which the shared flag
    // parser rejects, so it dispatches on the raw argv.
    if command == "report" {
        return match commands::report::run(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let parsed = match args::parse_flags(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "detect" => commands::detect::run(&parsed),
        "clean" => commands::clean::run(&parsed),
        "impute" => commands::impute::run(&parsed),
        "match" => commands::match_cmd::run(&parsed),
        "chaos" => commands::chaos::run(&parsed),
        "serve" => commands::serve::run(&parsed),
        "top" => commands::top::run(&parsed),
        "datasets" => commands::datasets::run(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "dprep — LLM-style data preprocessing over CSV files

USAGE:
  dprep detect   --input FILE [--attrs A,B] [--model NAME] [--facts FILE] [--seed N]
  dprep impute   --input FILE --attribute NAME [--model NAME] [--facts FILE] [--seed N]
  dprep clean    --input FILE [--attrs A,B] [--model NAME] [--facts FILE] [--seed N]
  dprep match    --left FILE --right FILE [--blocker ngram|embedding|none]
                 [--model NAME] [--facts FILE] [--seed N]
  dprep report   FILE [--format text|json|prom]
  dprep report   --diff BEFORE AFTER
  dprep chaos    [--scenario NAME] [--workers N] [--retries N] [--seed N]
                 [--soak on]
  dprep serve    [--host ADDR] [--port N] [--journal-dir DIR] [--seed N]
                 [--tenant-budgets NAME=TOKENS,..] [--default-tenant-budget N]
                 [--plan-shard-size N] [--retries N] [--slo SPEC,..]
                 [--recorder DIR] [--check on]
  dprep top      [--host ADDR] [--port N] [--interval SECS] [--once on]
                 [--format text|json] [--check on]
  dprep datasets

SERVING (detect/impute/clean/match):
  --workers N      executor threads (default 1; results are identical at any N)
  --retries N      re-ask on incomplete responses up to N times (default 2; 0 = off)
  --cache on|off   memoize identical requests across the run (default off)
  --plan-shard-size N
                   stream the plan in shards of N batches under bounded
                   memory instead of materializing it up front (default:
                   materialized; results are identical either way)
  --route A,B      serve through a model cascade, cheapest first: every
                   request tries A; responses that trip the escalation
                   policy re-ask B (and so on). Replaces --model. Each
                   route keeps its own retry budget and pricing; the
                   journal, trace, report, and Prometheus series bill
                   per route. Results are identical at any --workers N.
  --escalate-on CLASSES
                   comma list of response classes that escalate (default
                   fault,format,partial; also: garbled = corrupted
                   completions only)

OBSERVABILITY (detect/impute/clean/match):
  --trace FILE     write the request-lifecycle event stream as JSON lines
  --metrics on|off|FILE
                   print the serving-metrics summary after the run (default
                   off), or write the metrics snapshot as JSON to FILE
  --audit on|off   check ledger invariants online; violations fail the command

DURABILITY (detect/impute/clean/match):
  --journal FILE   append every terminal request to a crash-safe JSONL run
                   journal (flushed line-atomically; probed at startup)
  --resume FILE    replay completed requests from a recovered journal and
                   execute only the remainder — bit-identical to an
                   uninterrupted run. A torn final line is truncated with a
                   warning; a journal whose header (plan, model, config,
                   seed) mismatches the current run is rejected up front.
                   Pass the same FILE to both flags to keep extending it.

REPORT:
  Reads a --trace JSONL file or a metrics-snapshot JSON file and renders
  quality, cost breakdown by prompt component, latency quantiles, the
  failure taxonomy, and the span-tree profile. --diff compares two runs.

SERVE:
  Long-running multi-tenant daemon: newline-delimited JSON over TCP, one
  object per line, ops ping | submit | stats | metrics | health |
  shutdown. Each submit names a dataset workload plus a tenant; concurrent
  jobs interleave fairly at plan-shard granularity through a round-robin
  turnstile (gating never changes results — each job stays bit-identical
  to its one-shot run) and bill against per-tenant token budgets. With
  --journal-dir, a submit carrying journal_key is journaled per job and
  resumable after a crash with exactly-once billing. stats returns the
  tenant ledger; metrics returns Prometheus text with a tenant label
  ({\"op\":\"metrics\",\"format\":\"raw\"} returns the scrape body verbatim
  for real scrapers). Every job also feeds the live ops plane: per-tenant
  sliding windows over the deterministic virtual clock, and — with
  --slo latency-p95=SECS,failure-rate=FRAC,budget-headroom=FRAC —
  multi-window burn-rate alerting (ok -> warning -> paging) surfaced by
  the health op, in run reports, and as slo_transition trace events.
  --recorder DIR keeps a flight-recorder ring of recent events and dumps
  a postmortem JSONL there whenever an alert pages. --check on runs the
  serving smoke drill (ephemeral port, two concurrent tenants,
  bit-identity, ledger/prom reconciliation, clean shutdown) instead of
  listening.

TOP:
  Live per-tenant table against a running daemon's health op: windowed
  request/token rates, windowed error rate and p95 latency, budget
  headroom, active jobs, and SLO alert states. --once prints a single
  snapshot; --format json emits the raw health reply. --check on runs the
  ops-plane determinism drill instead: one breach-inducing workload at
  1/2/4 workers must produce byte-identical alert timelines and windowed
  snapshots, and must actually page.

CHAOS:
  Sweeps the seeded fault-scenario presets (burst outages, rate-limit
  storms, latency spikes, garbled completions, partial batch answers) over
  a pinned ED/EM workload with graceful batch degradation on, asserting
  terminal coverage, the serving-ledger audit, monotone degradation, and
  bit-identical results across worker counts; then drives the circuit
  breaker through closed -> open -> half-open -> closed under a burst
  outage, and runs the kill-point drill: a journaled run is aborted after
  every Nth terminal event in turn and resumed, asserting bit-identity
  with the uninterrupted run and exactly-once billing at every kill
  point — once with the materialized plan and once under the streaming
  planner. Any violation fails the command.

MODELS: sim-gpt-4 (default), sim-gpt-3.5, sim-gpt-3, sim-vicuna-13b

FACTS FILE (tab-separated, one fact per line):
  lexicon<TAB>DOMAIN<TAB>VALUE        legal value of a domain/attribute
  range<TAB>ATTR<TAB>MIN<TAB>MAX      plausible numeric range
  areacode<TAB>PREFIX<TAB>CITY        phone prefix -> city
  cue<TAB>ATTR<TAB>TOKEN<TAB>VALUE    token implies attribute value
  brand<TAB>TOKEN<TAB>MAKER           product token -> manufacturer
  synonym<TAB>NAME_A<TAB>NAME_B       schema-attribute synonyms
  alias<TAB>CANONICAL<TAB>VARIANT     spelling/abbreviation variants"
}
