//! `dprep impute` — fill missing cells of one attribute and emit the
//! completed CSV on stdout.

use dprep_core::{PipelineConfig, Preprocessor};
use dprep_prompt::{Task, TaskInstance};
use dprep_tabular::{csv::write_csv, Table, Value};

use crate::args::Flags;
use crate::commands::{load_table, print_metrics, print_usage_footer, serving_setup, ServingSetup};

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let table = load_table(flags.require("input")?)?;
    let attribute = flags.require("attribute")?.to_string();
    let Some(attr_idx) = table.schema().index_of(&attribute) else {
        return Err(format!(
            "attribute {attribute:?} not in the table (has: {})",
            table.schema().names().join(", ")
        ));
    };
    let mut config = PipelineConfig::best(Task::Imputation);
    let ServingSetup {
        serving,
        obs,
        durability,
        model,
    } = serving_setup(flags, &mut [&mut config])?;

    let mut instances = Vec::new();
    let mut rows_to_fill = Vec::new();
    for (row_idx, row) in table.rows().iter().enumerate() {
        if row.get(attr_idx).map(Value::is_missing).unwrap_or(false) {
            instances.push(TaskInstance::Imputation {
                record: row.clone(),
                attribute: attribute.clone(),
            });
            rows_to_fill.push(row_idx);
        }
    }
    if instances.is_empty() {
        eprintln!("nothing to impute: no missing {attribute:?} cells");
        print!("{}", write_csv(&table));
        return obs.finish();
    }

    let preprocessor = Preprocessor::new(&model, config)
        .with_durability(durability)
        .with_tracer(obs.tracer());
    let result = preprocessor.try_run(&instances, &[])?;

    // Rebuild the table with imputed values.
    let mut rows: Vec<_> = table.rows().to_vec();
    let mut filled = 0usize;
    for (&row_idx, prediction) in rows_to_fill.iter().zip(&result.predictions) {
        if let Some(value) = prediction.value() {
            rows[row_idx]
                .set(attr_idx, Value::text(value))
                .map_err(|e| e.to_string())?;
            filled += 1;
        }
    }
    let completed = Table::from_records(std::sync::Arc::clone(table.schema()), rows)
        .map_err(|e| e.to_string())?;
    print!("{}", write_csv(&completed));
    eprintln!("imputed {filled} of {} missing cells", instances.len());
    print_usage_footer(&result.usage, Some(&result.stats));
    print_metrics(&serving, &result.metrics)?;
    obs.finish()
}
