//! `dprep serve` — the multi-tenant preprocessing daemon.
//!
//! Binds a TCP socket and serves newline-delimited JSON jobs against the
//! pinned benchmark datasets: each `submit` names a dataset workload, a
//! tenant, and optional budgets, and runs through the shared
//! [`JobScheduler`] so concurrent jobs interleave fairly at plan-shard
//! granularity and bill against per-tenant token allowances. Per-job
//! journals (under `--journal-dir`) make submitted jobs crash-safe: a
//! resubmitted job with the same `journal_key` replays its journal and
//! executes only the remainder, bit-identical to an uninterrupted run.
//!
//! `--check on` runs the serving smoke drill instead of listening
//! publicly: an ephemeral daemon, two tenants submitting concurrently,
//! results checked bit-identical against one-shot runs, the Prometheus
//! tenant series and the ledger reconciled against the replies, then a
//! clean shutdown. CI gates on it.

use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use dprep_core::serve::{roundtrip, Daemon, JobGrant, JobHandler, JobOutcome, JobScheduler};
use dprep_core::{
    result_fingerprint, Durability, FailureKind, OpsPlane, OverloadPolicy, PipelineConfig,
    Preprocessor, TenantLedger, WireLimits,
};
use dprep_datasets::dataset_by_name;
use dprep_llm::{
    warm_cache_store, CacheLayer, FaultLayer, FaultScenario, ModelProfile, RetryLayer, SimulatedLlm,
};
use dprep_obs::{DurableJournal, FlightRecorder, Json, SloSpec, WindowConfig};

use crate::args::Flags;

/// Daemon-level defaults a `submit` body can override per job.
#[derive(Debug, Clone)]
pub struct HandlerDefaults {
    /// Seed for dataset generation and the simulator.
    pub seed: u64,
    /// Retry budget for the per-job middleware stack.
    pub retries: u32,
    /// Streaming shard size; small shards = fine-grained fair-share turns.
    pub plan_shard_size: usize,
    /// Per-job journal directory (`None` = jobs are not journaled).
    pub journal_dir: Option<PathBuf>,
    /// Default cascade routes (`--route a,b`, cheapest first); empty serves
    /// every job single-model on sim-gpt-4.
    pub routes: Vec<String>,
    /// Default escalation-policy spec (canonical form).
    pub escalate_on: Option<String>,
}

impl Default for HandlerDefaults {
    fn default() -> Self {
        HandlerDefaults {
            seed: 7,
            retries: 2,
            plan_shard_size: 4,
            journal_dir: None,
            routes: Vec::new(),
            escalate_on: None,
        }
    }
}

/// Keeps journal filenames shell- and filesystem-safe whatever the wire
/// sends as tenant or key.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The production job handler: runs one dataset workload under the
/// grant's clamped options with the grant's shard gate wired in.
///
/// `submit` body fields (beyond `tenant` / `workers` / `token_budget` /
/// `deadline_secs`, which the daemon consumes):
///
/// * `dataset` (required), `scale`, `seed` — the workload,
/// * `plan_shard_size`, `retries` — serving knobs,
/// * `scenario` — a chaos fault-scenario name for the job's middleware,
/// * `journal_key` — with `--journal-dir`, journal this job at
///   `DIR/<tenant>-<key>.jsonl` and resume it when the file exists,
/// * `kill_after` — drill hook: abort after the Nth journaled terminal.
///
/// With an ops plane attached, every job's trace stream feeds the tenant's
/// sliding window and SLO engine through [`OpsPlane::tracer_for`].
pub fn dataset_handler(defaults: HandlerDefaults, ops: Option<Arc<OpsPlane>>) -> Arc<JobHandler> {
    Arc::new(move |body: &Json, grant: &JobGrant| {
        let name = body
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or("submit has no \"dataset\" field")?;
        let scale = body.get("scale").and_then(Json::as_f64).unwrap_or(0.5);
        let seed = body
            .get("seed")
            .and_then(Json::as_usize)
            .map_or(defaults.seed, |s| s as u64);
        let retries = body
            .get("retries")
            .and_then(Json::as_usize)
            .map_or(defaults.retries, |r| r as u32);
        let shard_size = body
            .get("plan_shard_size")
            .and_then(Json::as_usize)
            .unwrap_or(defaults.plan_shard_size);
        let ds = dataset_by_name(name, scale, seed)
            .ok_or_else(|| format!("unknown dataset {name:?}"))?;
        let routes: Vec<String> = match body.get("route").and_then(Json::as_str) {
            Some(spec) => spec
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
            None => defaults.routes.clone(),
        };
        if routes.len() == 1 {
            return Err("\"route\" needs at least two models, cheapest first".into());
        }
        let escalate_on = match body
            .get("escalate_on")
            .and_then(Json::as_str)
            .map(str::to_string)
            .or_else(|| defaults.escalate_on.clone())
        {
            Some(spec) => Some(
                dprep_llm::EscalationPolicy::parse(&spec)
                    .map_err(|e| format!("escalate_on: {e}"))?
                    .canonical(),
            ),
            None => None,
        };
        let scenario = match body.get("scenario").and_then(Json::as_str) {
            Some(scenario_name) => Some(
                FaultScenario::by_name(scenario_name)
                    .ok_or_else(|| format!("unknown fault scenario {scenario_name:?}"))?,
            ),
            None => None,
        };

        let mut config = PipelineConfig::best(ds.task);
        config.plan_shard_size = Some(shard_size.max(1));
        config.routes = routes.clone();
        config.escalate_on = escalate_on.clone();

        // The middleware core (everything below the per-job cache):
        // single-model jobs fault/retry one sim; routed jobs cascade, the
        // scenario faulting the primary route only. Its name is the
        // journal's model identity, so a single-model job journal never
        // resumes a routed one or vice versa.
        let kb = Arc::new(ds.kb.clone());
        let (model_name, core): (String, Box<dyn dprep_llm::ChatModel>) = if routes.is_empty() {
            let sim = SimulatedLlm::new(ModelProfile::gpt4(), kb).with_seed(seed);
            let faulty = match scenario {
                Some(scenario) => FaultLayer::scenario(sim, scenario, seed),
                None => FaultLayer::new(sim, 0.0, seed),
            };
            (
                "sim-gpt-4".to_string(),
                Box::new(RetryLayer::new(faulty, retries)),
            )
        } else {
            let stats = dprep_llm::MiddlewareStats::shared();
            let router = crate::commands::build_router(
                &routes,
                escalate_on.as_deref(),
                kb,
                seed,
                retries,
                &stats,
                scenario.map(|s| (0, s)),
            )?;
            (
                dprep_llm::ChatModel::name(&router).to_string(),
                Box::new(router),
            )
        };

        // Per-job durability: fresh journal, or resume when a previous
        // incarnation of the same (tenant, journal_key) left one behind.
        let mut durability = Durability::new();
        let mut warm = Vec::new();
        let mut journal_state = "off";
        if let (Some(dir), Some(key)) = (
            defaults.journal_dir.as_ref(),
            body.get("journal_key").and_then(Json::as_str),
        ) {
            let tenant = body
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("default");
            let path = dir.join(format!("{}-{}.jsonl", sanitize(tenant), sanitize(key)));
            let descriptor = config.descriptor();
            let existing = std::fs::metadata(&path)
                .map(|m| m.len() > 0)
                .unwrap_or(false);
            if existing {
                let recovered = DurableJournal::resume(&path)
                    .map_err(|e| format!("cannot resume job journal {}: {e}", path.display()))?;
                match recovered.header.clone() {
                    Some(header) => {
                        if header.model != model_name
                            || header.config != descriptor
                            || header.seed != seed
                        {
                            return Err(format!(
                                "job journal {} was recorded for a different workload; \
                                 refusing to resume",
                                path.display()
                            ));
                        }
                        warm = recovered.entries.clone();
                        durability = durability
                            .with_replay(&recovered.entries, header.plan)
                            .with_journal(Arc::new(recovered.journal));
                        journal_state = "resumed";
                    }
                    None => {
                        // Crashed before the header landed: start over.
                        let journal = DurableJournal::fresh(&path, &model_name, &descriptor, seed)
                            .map_err(|e| format!("cannot journal to {}: {e}", path.display()))?;
                        durability = durability.with_journal(Arc::new(journal));
                        journal_state = "fresh";
                    }
                }
            } else {
                let journal = DurableJournal::fresh(&path, &model_name, &descriptor, seed)
                    .map_err(|e| format!("cannot journal to {}: {e}", path.display()))?;
                durability = durability.with_journal(Arc::new(journal));
                journal_state = "fresh";
            }
        }

        let mut model = CacheLayer::new(core);
        if !warm.is_empty() {
            model = model.with_store(warm_cache_store(&warm));
        }

        // The grant's halt doubles as the drill hook: a drain triggers it,
        // `kill_after` arms its countdown. Wiring it into the executor is
        // what makes a drain checkpoint journaled jobs (and stop
        // unjournaled ones) at their next shard boundary.
        if let Some(n) = body.get("kill_after").and_then(Json::as_usize) {
            if n == 0 {
                return Err("\"kill_after\" must be at least 1".into());
            }
            grant.halt.arm_after(n);
        }
        let mut preprocessor = Preprocessor::new(&model, config)
            .with_exec_options(grant.options)
            .with_durability(durability)
            .with_shard_gate(Arc::clone(&grant.gate))
            .with_kill_switch(grant.halt.clone());
        if let Some(ops) = &ops {
            let tenant = body
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("default");
            preprocessor = preprocessor.with_tracer(ops.tracer_for(tenant));
        }
        let result = preprocessor.try_run(&ds.instances, &ds.few_shot)?;

        let killed = grant.halt.fired();
        let budget_tripped = result.metrics.cancelled > 0
            || result
                .predictions
                .iter()
                .any(|p| p.failure() == Some(FailureKind::BudgetExhausted));
        Ok(JobOutcome {
            reply: vec![
                (
                    "fingerprint".to_string(),
                    Json::Str(format!("{:016x}", result_fingerprint(&result))),
                ),
                (
                    "answered".to_string(),
                    Json::Num((result.predictions.len() - result.failed_count()) as f64),
                ),
                (
                    "failed".to_string(),
                    Json::Num(result.failed_count() as f64),
                ),
                ("killed".to_string(), Json::Bool(killed)),
                ("journal".to_string(), Json::Str(journal_state.to_string())),
                (
                    "replayed".to_string(),
                    Json::Num(result.metrics.journal_replayed as f64),
                ),
            ],
            tokens_billed: result.usage.total_tokens(),
            cost_usd: result.usage.cost_usd,
            budget_tripped,
            metrics: result.metrics,
        })
    })
}

/// Parses `--tenant-budgets a=1000,b=2000` into a configured ledger.
fn ledger_from_flags(flags: &Flags) -> Result<TenantLedger, String> {
    let default_budget =
        match flags.get("default-tenant-budget") {
            None => None,
            Some(raw) => Some(raw.parse::<usize>().map_err(|_| {
                format!("--default-tenant-budget expects a token count, got {raw:?}")
            })?),
        };
    let ledger = TenantLedger::new().with_default_budget(default_budget);
    if let Some(spec) = flags.get("tenant-budgets") {
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (tenant, tokens) = pair.split_once('=').ok_or_else(|| {
                format!("--tenant-budgets expects NAME=TOKENS pairs, got {pair:?}")
            })?;
            let tokens = tokens.parse::<usize>().map_err(|_| {
                format!("--tenant-budgets: {tokens:?} is not a token count (in {pair:?})")
            })?;
            ledger.set_budget(tenant, Some(tokens));
        }
    }
    Ok(ledger)
}

/// Parses the overload-protection flags into a policy. Every cap is off
/// by default (the unprotected daemon): `--max-inflight N` bounds
/// concurrent jobs, `--max-queued N` adds a bounded wait queue on top
/// (without it, excess jobs shed immediately), `--tenant-inflight N` caps
/// one tenant's concurrency, `--default-deadline SECS` applies a deadline
/// to jobs that did not request one.
fn policy_from_flags(flags: &Flags) -> Result<OverloadPolicy, String> {
    let cap = |name: &str, floor: usize| -> Result<Option<usize>, String> {
        match flags.get(name) {
            None => Ok(None),
            Some(_) => {
                let n = flags.usize_or(name, 0)?;
                if n < floor {
                    return Err(format!("--{name} must be at least {floor}"));
                }
                Ok(Some(n))
            }
        }
    };
    let default_deadline_secs = match flags.get("default-deadline") {
        None => None,
        Some(_) => {
            let secs = flags.f64_or("default-deadline", 0.0)?;
            if secs <= 0.0 {
                return Err("--default-deadline must be positive seconds".into());
            }
            Some(secs)
        }
    };
    Ok(OverloadPolicy {
        max_inflight: cap("max-inflight", 1)?,
        max_queued: cap("max-queued", 0)?,
        tenant_inflight: cap("tenant-inflight", 1)?,
        default_deadline_secs,
    })
}

/// Parses the wire-hardening flags, defaulting to [`WireLimits::default`]:
/// `--max-frame-bytes`, `--frame-timeout SECS`, `--idle-timeout SECS`,
/// `--write-timeout SECS`.
fn wire_from_flags(flags: &Flags) -> Result<WireLimits, String> {
    let defaults = WireLimits::default();
    let limits = WireLimits {
        max_frame_bytes: flags.usize_or("max-frame-bytes", defaults.max_frame_bytes)?,
        frame_secs: flags.f64_or("frame-timeout", defaults.frame_secs)?,
        idle_secs: flags.f64_or("idle-timeout", defaults.idle_secs)?,
        write_secs: flags.f64_or("write-timeout", defaults.write_secs)?,
    };
    if limits.max_frame_bytes == 0 {
        return Err("--max-frame-bytes must be at least 1".into());
    }
    for (name, secs) in [
        ("frame-timeout", limits.frame_secs),
        ("idle-timeout", limits.idle_secs),
        ("write-timeout", limits.write_secs),
    ] {
        if secs <= 0.0 {
            return Err(format!("--{name} must be positive seconds"));
        }
    }
    Ok(limits)
}

/// Builds the daemon's live ops plane from `--slo` (objective spec list,
/// e.g. `latency-p95=30,failure-rate=0.1,budget-headroom=0.25`) and
/// `--recorder DIR` (flight-recorder postmortem directory). The plane is
/// always on — with no `--slo` it still aggregates per-tenant windows for
/// `dprep top`, just without alerting.
fn ops_from_flags(flags: &Flags) -> Result<Arc<OpsPlane>, String> {
    let specs = match flags.get("slo") {
        Some(spec) => SloSpec::parse_list(spec).map_err(|e| format!("--slo: {e}"))?,
        None => Vec::new(),
    };
    let mut plane = OpsPlane::new(specs, WindowConfig::default());
    if let Some(dir) = flags.get("recorder") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create --recorder {}: {e}", dir.display()))?;
        plane = plane.with_recorder(Arc::new(FlightRecorder::new(&dir, 256)));
    }
    Ok(Arc::new(plane))
}

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let (routes, escalate_on) = crate::args::route_spec(flags)?;
    let defaults = HandlerDefaults {
        seed: flags.seed()?,
        retries: flags.usize_or("retries", 2)? as u32,
        plan_shard_size: {
            let n = flags.usize_or("plan-shard-size", 4)?;
            if n == 0 {
                return Err("--plan-shard-size must be at least 1".into());
            }
            n
        },
        journal_dir: flags.get("journal-dir").map(PathBuf::from),
        routes,
        escalate_on,
    };
    if let Some(dir) = &defaults.journal_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create --journal-dir {}: {e}", dir.display()))?;
    }
    if flags.bool_or("check", false)? {
        return self_check(&defaults);
    }
    let host = flags.get("host").unwrap_or("127.0.0.1");
    let port = flags.usize_or("port", 7077)? as u16;
    let ledger = ledger_from_flags(flags)?;
    let policy = policy_from_flags(flags)?;
    let wire = wire_from_flags(flags)?;
    let ops = ops_from_flags(flags)?;
    let daemon = Daemon::bind(
        (host, port),
        JobScheduler::new(ledger).with_policy(policy),
        dataset_handler(defaults, Some(Arc::clone(&ops))),
    )
    .map_err(|e| format!("cannot bind {host}:{port}: {e}"))?
    .with_wire_limits(wire)
    .with_ops(ops);
    println!("dprep serve listening on {}", daemon.local_addr());
    println!(
        "ops: ping | submit | stats | metrics | health | drain | shutdown \
         (one JSON object per line)"
    );
    daemon.run().map_err(|e| format!("serve failed: {e}"))
}

/// A `submit` body for the self-check drill.
fn submit_body(tenant: &str, dataset: &str, workers: usize, budget: Option<usize>) -> Json {
    let mut fields = vec![
        ("op".to_string(), Json::Str("submit".to_string())),
        ("tenant".to_string(), Json::Str(tenant.to_string())),
        ("dataset".to_string(), Json::Str(dataset.to_string())),
        ("scale".to_string(), Json::Num(0.5)),
        ("workers".to_string(), Json::Num(workers as f64)),
        ("plan_shard_size".to_string(), Json::Num(2.0)),
    ];
    if let Some(b) = budget {
        fields.push(("token_budget".to_string(), Json::Num(b as f64)));
    }
    Json::Obj(fields)
}

/// The serving smoke drill behind `--check on` (CI gates on it): an
/// ephemeral daemon, two tenants submitting concurrently, bit-identity
/// against one-shot runs, metrics/ledger reconciliation, clean shutdown.
fn self_check(defaults: &HandlerDefaults) -> Result<(), String> {
    let handler = dataset_handler(defaults.clone(), None);

    // One-shot references, computed through the same handler but outside
    // the daemon: an idle scheduler grants every turn immediately.
    let reference = |tenant: &str, dataset: &str| -> Result<(String, usize), String> {
        let scheduler = JobScheduler::new(TenantLedger::new());
        let body = submit_body(tenant, dataset, 2, None);
        let (_, outcome) = scheduler
            .run_job(tenant, exec_options(2), |grant| handler(&body, grant))
            .map_err(|e| e.to_string())?;
        let fp = outcome
            .reply
            .iter()
            .find(|(k, _)| k == "fingerprint")
            .and_then(|(_, v)| v.as_str().map(str::to_string))
            .ok_or("reference reply has no fingerprint")?;
        Ok((fp, outcome.tokens_billed))
    };
    let (alpha_fp, alpha_tokens) = reference("alpha", "Restaurant")?;
    let (beta_fp, beta_tokens) = reference("beta", "Adult")?;

    let daemon = Daemon::bind(
        "127.0.0.1:0",
        JobScheduler::new(TenantLedger::new()),
        dataset_handler(defaults.clone(), None),
    )
    .map_err(|e| format!("cannot bind self-check daemon: {e}"))?;
    let addr = daemon.local_addr();

    let outcome: Result<(), String> = std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());
        let submit = |tenant: &str, dataset: &str| -> Result<Json, String> {
            let mut stream =
                TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
            let mut reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("clone failed: {e}"))?,
            );
            roundtrip(
                &mut stream,
                &mut reader,
                &submit_body(tenant, dataset, 2, None),
            )
        };
        // Two tenants in flight at once: their shards interleave through
        // the turnstile, their results must not.
        let (alpha, beta) = std::thread::scope(|jobs| {
            let a = jobs.spawn(|| submit("alpha", "Restaurant"));
            let b = jobs.spawn(|| submit("beta", "Adult"));
            (
                a.join().expect("alpha client"),
                b.join().expect("beta client"),
            )
        });
        let alpha = alpha?;
        let beta = beta?;
        let field = |reply: &Json, key: &str| -> Result<String, String> {
            reply
                .get(key)
                .map(|v| v.as_str().map_or_else(|| v.to_json(), str::to_string))
                .ok_or_else(|| format!("reply has no {key:?}: {}", reply.to_json()))
        };
        if field(&alpha, "fingerprint")? != alpha_fp {
            return Err("tenant alpha: concurrent result differs from one-shot run".into());
        }
        if field(&beta, "fingerprint")? != beta_fp {
            return Err("tenant beta: concurrent result differs from one-shot run".into());
        }
        let billed: usize = alpha
            .get("tokens_billed")
            .and_then(Json::as_usize)
            .unwrap_or(0)
            + beta
                .get("tokens_billed")
                .and_then(Json::as_usize)
                .unwrap_or(0);
        if billed != alpha_tokens + beta_tokens {
            return Err(format!(
                "billed tokens diverge from one-shot runs: {billed} vs {}",
                alpha_tokens + beta_tokens
            ));
        }

        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone failed: {e}"))?,
        );
        let stats = roundtrip(
            &mut stream,
            &mut reader,
            &Json::Obj(vec![("op".to_string(), Json::Str("stats".to_string()))]),
        )?;
        let ledger_total: usize = match stats.get("tenants") {
            Some(Json::Arr(rows)) => rows
                .iter()
                .filter_map(|r| r.get("tokens_billed").and_then(Json::as_usize))
                .sum(),
            _ => return Err(format!("stats has no tenants array: {}", stats.to_json())),
        };
        if ledger_total != billed {
            return Err(format!(
                "ledger reconciliation failed: ledger bills {ledger_total}, replies bill {billed}"
            ));
        }
        let metrics = roundtrip(
            &mut stream,
            &mut reader,
            &Json::Obj(vec![("op".to_string(), Json::Str("metrics".to_string()))]),
        )?;
        let prom = metrics
            .get("prom")
            .and_then(Json::as_str)
            .ok_or("metrics reply has no prom text")?;
        for needle in [
            "dprep_tenant_prompt_tokens_total{tenant=\"alpha\"}",
            "dprep_tenant_requests_total{tenant=\"beta\"}",
        ] {
            if !prom.contains(needle) {
                return Err(format!("prom exposition is missing {needle}"));
            }
        }

        roundtrip(
            &mut stream,
            &mut reader,
            &Json::Obj(vec![("op".to_string(), Json::Str("shutdown".to_string()))]),
        )?;
        server
            .join()
            .expect("daemon thread")
            .map_err(|e| format!("daemon exited uncleanly: {e}"))?;
        Ok(())
    });
    outcome?;
    println!(
        "serve self-check passed: 2 concurrent tenants bit-identical to one-shot runs, \
         ledger and prom series reconcile, clean shutdown"
    );
    Ok(())
}

/// Execution options for a self-check reference run.
fn exec_options(workers: usize) -> dprep_core::ExecutionOptions {
    dprep_core::ExecutionOptions {
        workers,
        ..dprep_core::ExecutionOptions::default()
    }
}
