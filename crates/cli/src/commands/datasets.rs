//! `dprep datasets` — list the built-in synthetic benchmarks.

use crate::args::Flags;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let scale: f64 = match flags.get("scale") {
        None => 0.1,
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--scale must be a number, got {raw:?}"))?,
    };
    println!(
        "{:<16} {:<18} {:>10} {:>9} {:>7}",
        "dataset", "task", "instances", "few-shot", "facts"
    );
    for ds in dprep_datasets::all_datasets(scale, flags.seed()?) {
        println!(
            "{:<16} {:<18} {:>10} {:>9} {:>7}",
            ds.name,
            ds.task.name(),
            ds.len(),
            ds.few_shot.len(),
            ds.kb.len()
        );
    }
    eprintln!("(generated at scale {scale}; scale 1.0 = the paper's instance counts)");
    Ok(())
}
