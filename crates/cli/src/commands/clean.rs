//! `dprep clean` — detect-then-repair: flag suspicious cells and re-impute
//! them, emitting the repaired CSV on stdout and the audit trail on stderr.

use dprep_core::{PipelineConfig, Repairer};
use dprep_prompt::Task;
use dprep_tabular::csv::write_csv;

use crate::args::Flags;
use crate::commands::{
    attrs_for, load_table, print_metrics, print_usage_footer, serving_setup, ServingSetup,
};

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let table = load_table(flags.require("input")?)?;
    let attrs = attrs_for(flags, &table)?;
    let mut detect_config = PipelineConfig::best(Task::ErrorDetection);
    let mut impute_config = PipelineConfig::best(Task::Imputation);
    // One journal covers both passes; its config identity is the pair of
    // pass descriptors (the header's plan fingerprint binds the detect
    // pass — the impute plan derives deterministically from its results).
    let ServingSetup {
        serving,
        obs,
        durability,
        model,
    } = serving_setup(flags, &mut [&mut detect_config, &mut impute_config])?;

    let repairer = Repairer::new(&model)
        .with_detect_config(detect_config)
        .with_impute_config(impute_config)
        .with_durability(durability)
        .with_tracer(obs.tracer());
    let outcome = repairer.try_repair(&table, &attrs, &[], &[])?;

    print!("{}", write_csv(&outcome.table));
    for repair in &outcome.repairs {
        eprintln!(
            "row {}, {}: {:?} -> {}",
            repair.row,
            repair.attribute,
            repair.original.to_string(),
            repair
                .replacement
                .as_deref()
                .unwrap_or("(masked: imputation unparseable)"),
        );
        if let Some(reason) = &repair.detection_reason {
            eprintln!("  {reason}");
        }
    }
    eprintln!("{} repair(s) applied", outcome.repairs.len());
    print_usage_footer(&outcome.usage, Some(&outcome.stats));
    print_metrics(&serving, &outcome.metrics)?;
    obs.finish()
}
