//! `dprep clean` — detect-then-repair: flag suspicious cells and re-impute
//! them, emitting the repaired CSV on stdout and the audit trail on stderr.

use dprep_core::Repairer;
use dprep_tabular::csv::write_csv;

use crate::args::{model_profile, Flags};
use crate::commands::{attrs_for, build_model, load_table, print_usage_footer};
use crate::facts;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let table = load_table(flags.require("input")?)?;
    let attrs = attrs_for(flags, &table)?;
    let profile = model_profile(flags)?;
    let kb = facts::load(flags)?;
    let model = build_model(profile, kb, flags.seed()?);

    let repairer = Repairer::new(&model);
    let outcome = repairer.repair(&table, &attrs, &[], &[]);

    print!("{}", write_csv(&outcome.table));
    for repair in &outcome.repairs {
        eprintln!(
            "row {}, {}: {:?} -> {}",
            repair.row,
            repair.attribute,
            repair.original.to_string(),
            repair
                .replacement
                .as_deref()
                .unwrap_or("(masked: imputation unparseable)"),
        );
        if let Some(reason) = &repair.detection_reason {
            eprintln!("  {reason}");
        }
    }
    eprintln!("{} repair(s) applied", outcome.repairs.len());
    print_usage_footer(&outcome.usage);
    Ok(())
}
