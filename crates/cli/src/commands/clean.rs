//! `dprep clean` — detect-then-repair: flag suspicious cells and re-impute
//! them, emitting the repaired CSV on stdout and the audit trail on stderr.

use dprep_core::{PipelineConfig, Repairer};
use dprep_prompt::Task;
use dprep_tabular::csv::write_csv;

use crate::args::{model_profile, Flags};
use crate::commands::{
    apply_serving, attrs_for, build_model, durability_from_serving, load_table, print_metrics,
    print_usage_footer, serving_from_flags, Observability,
};
use crate::facts;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let table = load_table(flags.require("input")?)?;
    let attrs = attrs_for(flags, &table)?;
    let profile = model_profile(flags)?;
    let kb = facts::load(flags)?;
    let serving = serving_from_flags(flags)?;
    let obs = Observability::from_serving(&serving)?;
    let stats = dprep_llm::MiddlewareStats::shared();
    let seed = flags.seed()?;
    let mut detect_config = PipelineConfig::best(Task::ErrorDetection);
    detect_config.workers = serving.workers;
    let mut impute_config = PipelineConfig::best(Task::Imputation);
    impute_config.workers = serving.workers;
    // One journal covers both passes; its config identity is the pair of
    // pass descriptors (the header's plan fingerprint binds the detect
    // pass — the impute plan derives deterministically from its results).
    let descriptor = format!(
        "{} ++ {}",
        detect_config.descriptor(),
        impute_config.descriptor()
    );
    let (durability, warm) = durability_from_serving(&serving, &profile.name, &descriptor, seed)?;
    let model = apply_serving(
        build_model(profile, kb, seed),
        &serving,
        &stats,
        obs.tracer(),
        &warm,
    );

    let repairer = Repairer::new(&model)
        .with_detect_config(detect_config)
        .with_impute_config(impute_config)
        .with_durability(durability)
        .with_tracer(obs.tracer());
    let outcome = repairer.try_repair(&table, &attrs, &[], &[])?;

    print!("{}", write_csv(&outcome.table));
    for repair in &outcome.repairs {
        eprintln!(
            "row {}, {}: {:?} -> {}",
            repair.row,
            repair.attribute,
            repair.original.to_string(),
            repair
                .replacement
                .as_deref()
                .unwrap_or("(masked: imputation unparseable)"),
        );
        if let Some(reason) = &repair.detection_reason {
            eprintln!("  {reason}");
        }
    }
    eprintln!("{} repair(s) applied", outcome.repairs.len());
    print_usage_footer(&outcome.usage, Some(&outcome.stats));
    print_metrics(&serving, &outcome.metrics)?;
    obs.finish()
}
