//! `dprep detect` — cell-level error detection over a CSV file.

use dprep_core::{PipelineConfig, Preprocessor};
use dprep_prompt::{Task, TaskInstance};

use crate::args::{model_profile, Flags};
use crate::commands::{
    apply_serving, attrs_for, build_model, durability_from_serving, load_table, print_metrics,
    print_usage_footer, serving_from_flags, Observability,
};
use crate::facts;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let table = load_table(flags.require("input")?)?;
    let attrs = attrs_for(flags, &table)?;
    let profile = model_profile(flags)?;
    let kb = facts::load(flags)?;
    let serving = serving_from_flags(flags)?;
    let obs = Observability::from_serving(&serving)?;
    let stats = dprep_llm::MiddlewareStats::shared();
    let seed = flags.seed()?;
    let mut config = PipelineConfig::best(Task::ErrorDetection);
    config.workers = serving.workers;
    let (durability, warm) =
        durability_from_serving(&serving, &profile.name, &config.descriptor(), seed)?;
    let model = apply_serving(
        build_model(profile, kb, seed),
        &serving,
        &stats,
        obs.tracer(),
        &warm,
    );

    let mut instances = Vec::new();
    let mut cells = Vec::new();
    for (row_idx, row) in table.rows().iter().enumerate() {
        for attr in &attrs {
            if row
                .get_by_name(attr)
                .map(|v| v.is_missing())
                .unwrap_or(true)
            {
                continue;
            }
            instances.push(TaskInstance::ErrorDetection {
                record: row.clone(),
                attribute: attr.clone(),
            });
            cells.push((row_idx, attr.clone()));
        }
    }
    if instances.is_empty() {
        return Err("no checkable cells (everything missing?)".into());
    }

    let preprocessor = Preprocessor::new(&model, config)
        .with_durability(durability)
        .with_tracer(obs.tracer());
    let result = preprocessor.try_run(&instances, &[])?;

    println!("row\tattribute\tvalue\tverdict\treason");
    let mut flagged = 0usize;
    for ((row_idx, attr), prediction) in cells.iter().zip(&result.predictions) {
        let verdict = prediction.as_yes_no();
        if verdict == Some(true) {
            flagged += 1;
        }
        // Print errors always; clean cells only with --all true.
        if verdict == Some(true) || flags.get("all").is_some() {
            let value = table
                .row(*row_idx)
                .and_then(|r| r.get_by_name(attr))
                .map(|v| v.to_string())
                .unwrap_or_default();
            let reason = prediction
                .answer()
                .and_then(|a| a.reason.clone())
                .unwrap_or_default();
            println!(
                "{row_idx}\t{attr}\t{value}\t{}\t{reason}",
                match (verdict, prediction.failure()) {
                    (Some(true), _) => "error",
                    (Some(false), _) => "ok",
                    (None, Some(kind)) => kind.label(),
                    (None, None) => "unparsed",
                }
            );
        }
    }
    eprintln!("{flagged} of {} cells flagged", instances.len());
    print_usage_footer(&result.usage, Some(&result.stats));
    print_metrics(&serving, &result.metrics)?;
    obs.finish()
}
