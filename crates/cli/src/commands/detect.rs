//! `dprep detect` — cell-level error detection over a CSV file.

use dprep_core::{PipelineConfig, Preprocessor};
use dprep_prompt::{Task, TaskInstance};

use crate::args::Flags;
use crate::commands::{
    attrs_for, load_table, print_metrics, print_usage_footer, serving_setup, ServingSetup,
};

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let table = load_table(flags.require("input")?)?;
    let attrs = attrs_for(flags, &table)?;
    let mut config = PipelineConfig::best(Task::ErrorDetection);
    let ServingSetup {
        serving,
        obs,
        durability,
        model,
    } = serving_setup(flags, &mut [&mut config])?;

    let mut instances = Vec::new();
    let mut cells = Vec::new();
    for (row_idx, row) in table.rows().iter().enumerate() {
        for attr in &attrs {
            if row
                .get_by_name(attr)
                .map(|v| v.is_missing())
                .unwrap_or(true)
            {
                continue;
            }
            instances.push(TaskInstance::ErrorDetection {
                record: row.clone(),
                attribute: attr.clone(),
            });
            cells.push((row_idx, attr.clone()));
        }
    }
    if instances.is_empty() {
        return Err("no checkable cells (everything missing?)".into());
    }

    let preprocessor = Preprocessor::new(&model, config)
        .with_durability(durability)
        .with_tracer(obs.tracer());
    let result = preprocessor.try_run(&instances, &[])?;

    println!("row\tattribute\tvalue\tverdict\treason");
    let mut flagged = 0usize;
    for ((row_idx, attr), prediction) in cells.iter().zip(&result.predictions) {
        let verdict = prediction.as_yes_no();
        if verdict == Some(true) {
            flagged += 1;
        }
        // Print errors always; clean cells only with --all true.
        if verdict == Some(true) || flags.get("all").is_some() {
            let value = table
                .row(*row_idx)
                .and_then(|r| r.get_by_name(attr))
                .map(|v| v.to_string())
                .unwrap_or_default();
            let reason = prediction
                .answer()
                .and_then(|a| a.reason.clone())
                .unwrap_or_default();
            println!(
                "{row_idx}\t{attr}\t{value}\t{}\t{reason}",
                match (verdict, prediction.failure()) {
                    (Some(true), _) => "error",
                    (Some(false), _) => "ok",
                    (None, Some(kind)) => kind.label(),
                    (None, None) => "unparsed",
                }
            );
        }
    }
    eprintln!("{flagged} of {} cells flagged", instances.len());
    print_usage_footer(&result.usage, Some(&result.stats));
    print_metrics(&serving, &result.metrics)?;
    obs.finish()
}
