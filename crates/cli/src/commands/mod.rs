//! CLI subcommands.

pub mod clean;
pub mod datasets;
pub mod detect;
pub mod impute;
pub mod match_cmd;

use std::sync::Arc;

use dprep_core::ExecStats;
use dprep_llm::{
    CacheLayer, ChatModel, KnowledgeBase, MiddlewareStats, ModelProfile, RetryLayer, SimulatedLlm,
};
use dprep_tabular::Table;

use crate::args::Flags;

/// Loads a CSV file into a typed table.
pub fn load_table(path: &str) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    dprep_tabular::csv::read_csv_typed(&text).map_err(|e| format!("{path}: {e}"))
}

/// Builds the simulated model from flags and a knowledge base.
pub fn build_model(profile: ModelProfile, kb: KnowledgeBase, seed: u64) -> SimulatedLlm {
    SimulatedLlm::new(profile, Arc::new(kb)).with_seed(seed)
}

/// Serving options shared by every model-running command: `--workers N`,
/// `--retries N`, `--cache on|off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Serving {
    /// Executor worker threads.
    pub workers: usize,
    /// Retry budget per request.
    pub retries: u32,
    /// Response caching enabled.
    pub cache: bool,
}

/// Parses the serving flags (defaults: 1 worker, 2 retries, cache off).
pub fn serving_from_flags(flags: &Flags) -> Result<Serving, String> {
    let workers = flags.usize_or("workers", 1)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(Serving {
        workers,
        retries: flags.usize_or("retries", 2)? as u32,
        cache: flags.bool_or("cache", false)?,
    })
}

/// Wraps `model` in the middleware stack the serving options ask for
/// (cache over retry), reporting into `stats`.
pub fn apply_serving<M: ChatModel + 'static>(
    model: M,
    serving: Serving,
    stats: &Arc<MiddlewareStats>,
) -> Box<dyn ChatModel> {
    let mut stack: Box<dyn ChatModel> = Box::new(model);
    if serving.retries > 0 {
        stack = Box::new(RetryLayer::new(stack, serving.retries).with_stats(Arc::clone(stats)));
    }
    if serving.cache {
        stack = Box::new(CacheLayer::new(stack).with_stats(Arc::clone(stats)));
    }
    stack
}

/// Prints the run's usage footer, including serving counters when any are
/// nonzero.
pub fn print_usage_footer(usage: &dprep_llm::UsageTotals, stats: Option<&ExecStats>) {
    eprintln!(
        "[{} request(s), {} tokens, ${:.4} virtual cost, {:.1}s virtual latency]",
        usage.requests,
        usage.total_tokens(),
        usage.cost_usd,
        usage.latency_secs
    );
    if let Some(stats) = stats {
        if stats.deduped + stats.retries + stats.cache_hits + stats.faulted > 0 {
            eprintln!(
                "[{} deduped, {} retried, {} cache hit(s), {} faulted]",
                stats.deduped, stats.retries, stats.cache_hits, stats.faulted
            );
        }
    }
}

/// Resolves the attribute list for `--attrs` (default: every attribute).
pub fn attrs_for(flags: &Flags, table: &Table) -> Result<Vec<String>, String> {
    match flags.get("attrs") {
        None => Ok(table
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect()),
        Some(spec) => {
            let mut out = Vec::new();
            for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if table.schema().index_of(name).is_none() {
                    return Err(format!(
                        "attribute {name:?} not in the table (has: {})",
                        table.schema().names().join(", ")
                    ));
                }
                out.push(name.to_string());
            }
            if out.is_empty() {
                return Err("--attrs selected no attributes".into());
            }
            Ok(out)
        }
    }
}
