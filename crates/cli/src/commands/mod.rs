//! CLI subcommands.

pub mod chaos;
pub mod clean;
pub mod datasets;
pub mod detect;
pub mod impute;
pub mod match_cmd;
pub mod report;
pub mod serve;
pub mod top;

use std::sync::Arc;

use dprep_core::{Durability, ExecStats, PipelineConfig};
use dprep_llm::{
    warm_cache_store, CacheLayer, ChatModel, EscalationPolicy, FaultLayer, FaultScenario,
    KnowledgeBase, MiddlewareStats, ModelProfile, RetryLayer, RouterLayer, SimulatedLlm,
};
use dprep_obs::{AuditTracer, DurableJournal, JournalEntry, JsonlTracer, MultiTracer, Tracer};
use dprep_tabular::Table;

use crate::args::{model_profile, Flags};
use crate::facts;

/// Loads a CSV file into a typed table.
pub fn load_table(path: &str) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    dprep_tabular::csv::read_csv_typed(&text).map_err(|e| format!("{path}: {e}"))
}

/// Builds the simulated model from flags and a knowledge base.
pub fn build_model(profile: ModelProfile, kb: KnowledgeBase, seed: u64) -> SimulatedLlm {
    SimulatedLlm::new(profile, Arc::new(kb)).with_seed(seed)
}

/// Serving options shared by every model-running command: `--workers N`,
/// `--retries N`, `--cache on|off`, plus the observability flags
/// `--trace FILE`, `--metrics on|off|FILE`, `--audit on|off`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Serving {
    /// Executor worker threads.
    pub workers: usize,
    /// Retry budget per request.
    pub retries: u32,
    /// Response caching enabled.
    pub cache: bool,
    /// JSONL trace output path (`--trace FILE`).
    pub trace: Option<String>,
    /// Print the serving-metrics summary after the run.
    pub metrics: bool,
    /// Write the metrics snapshot as JSON to this path (`--metrics FILE`).
    pub metrics_out: Option<String>,
    /// Audit ledger invariants online; violations fail the command.
    pub audit: bool,
    /// Crash-safe run journal output path (`--journal FILE`).
    pub journal: Option<String>,
    /// Journal to resume from (`--resume FILE`): completed requests replay
    /// instead of re-dispatching.
    pub resume: Option<String>,
    /// Streaming-planner shard size (`--plan-shard-size N`): plan and
    /// execute N batches at a time under bounded memory instead of
    /// materializing the whole plan. `None` plans materialized.
    pub plan_shard: Option<usize>,
    /// Cascade routes (`--route a,b`), cheapest first; empty means a
    /// single-model run served directly by `--model`.
    pub routes: Vec<String>,
    /// Canonical escalation-policy spec (`--escalate-on CLASSES`); `None`
    /// uses the default policy.
    pub escalate_on: Option<String>,
}

/// Parses the serving flags (defaults: 1 worker, 2 retries, cache off,
/// no trace, metrics off, audit off). `--metrics` accepts `on`/`off` (print
/// the summary to stderr) or a file path (write the snapshot JSON there).
pub fn serving_from_flags(flags: &Flags) -> Result<Serving, String> {
    let workers = flags.usize_or("workers", 1)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let plan_shard = match flags.get("plan-shard-size") {
        None => None,
        Some(raw) => {
            let n: usize = raw.parse().map_err(|_| {
                format!("--plan-shard-size expects a positive integer, got {raw:?}")
            })?;
            if n == 0 {
                return Err("--plan-shard-size must be at least 1".into());
            }
            Some(n)
        }
    };
    let (metrics, metrics_out) = match flags.get("metrics") {
        None => (false, None),
        Some("on" | "true" | "1") => (true, None),
        Some("off" | "false" | "0") => (false, None),
        Some(path) => (false, Some(path.to_string())),
    };
    let (routes, escalate_on) = crate::args::route_spec(flags)?;
    if !routes.is_empty() && flags.get("model").is_some() {
        return Err(
            "--model conflicts with --route (the cascade names its own models, cheapest first)"
                .into(),
        );
    }
    Ok(Serving {
        workers,
        retries: flags.usize_or("retries", 2)? as u32,
        cache: flags.bool_or("cache", false)?,
        trace: flags.get("trace").map(str::to_string),
        metrics,
        metrics_out,
        audit: flags.bool_or("audit", false)?,
        journal: flags.get("journal").map(str::to_string),
        resume: flags.get("resume").map(str::to_string),
        plan_shard,
        routes,
        escalate_on,
    })
}

/// Everything a model-running command needs standing before it builds its
/// task instances: the parsed serving flags, the observability sinks, the
/// run's durability (journal/resume), and the middleware-wrapped model.
/// Built once by [`serving_setup`]; consume the fields by value.
pub struct ServingSetup {
    /// Parsed serving flags (workers, retries, cache, metrics, ...).
    pub serving: Serving,
    /// Trace/audit sinks; call [`Observability::finish`] after the run.
    pub obs: Observability,
    /// Journal/resume wiring for the executor.
    pub durability: Durability,
    /// The simulated model wrapped in the requested middleware stack.
    pub model: Box<dyn ChatModel>,
}

/// The startup sequence shared by `detect`, `impute`, `clean`, and
/// `match`: resolve the model profile and facts file, parse the serving
/// flags, build the observability sinks, apply the `--workers` and
/// `--plan-shard-size` knobs to every pass config, open or recover the run
/// journal under the joint config descriptor, and wrap the model in the
/// middleware stack (cache warm-started from a resumed journal).
///
/// Multi-pass commands hand in one config per pass; the journal's config
/// identity is the pass descriptors joined with ` ++ `, so a journal
/// recorded by one command is never resumed by another with different
/// pass settings.
pub fn serving_setup(
    flags: &Flags,
    configs: &mut [&mut PipelineConfig],
) -> Result<ServingSetup, String> {
    let kb = facts::load(flags)?;
    let serving = serving_from_flags(flags)?;
    let obs = Observability::from_serving(&serving)?;
    let stats = MiddlewareStats::shared();
    let seed = flags.seed()?;
    for config in configs.iter_mut() {
        config.workers = serving.workers;
        config.plan_shard_size = serving.plan_shard;
        config.routes = serving.routes.clone();
        config.escalate_on = serving.escalate_on.clone();
    }
    let descriptor = configs
        .iter()
        .map(|c| c.descriptor())
        .collect::<Vec<_>>()
        .join(" ++ ");
    let (durability, model) = if serving.routes.is_empty() {
        let profile = model_profile(flags)?;
        let (durability, warm) =
            durability_from_serving(&serving, &profile.name, &descriptor, seed)?;
        let model = apply_serving(
            build_model(profile, kb, seed),
            &serving,
            &stats,
            obs.tracer(),
            &warm,
        );
        (durability, model)
    } else {
        let router = build_router(
            &serving.routes,
            serving.escalate_on.as_deref(),
            Arc::new(kb),
            seed,
            serving.retries,
            &stats,
            None,
        )?;
        // The journal identity is the composite (`router(a->b)`): a
        // single-model journal never resumes a cascade or vice versa.
        let model_name = router.name().to_string();
        let (durability, warm) = durability_from_serving(&serving, &model_name, &descriptor, seed)?;
        let model = apply_cache(Box::new(router), &serving, &stats, obs.tracer(), &warm);
        (durability, model)
    };
    Ok(ServingSetup {
        serving,
        obs,
        durability,
        model,
    })
}

/// Builds the cascade: one independent `RetryLayer(FaultLayer?(sim))`
/// stack per route over a shared knowledge base, fronted by a
/// [`RouterLayer`]. Route stacks deliberately carry **no tracer** — their
/// retries are internal to each leg, and the audit reconciles routed
/// completions against `route_leg` events, not `retry_attempt` events.
/// `fault` wraps the route at the given index in a fault scenario (the
/// chaos drills fault the primary and leave the escalation route calm).
pub fn build_router(
    route_names: &[String],
    escalate_on: Option<&str>,
    kb: Arc<KnowledgeBase>,
    seed: u64,
    retries: u32,
    stats: &Arc<MiddlewareStats>,
    fault: Option<(usize, FaultScenario)>,
) -> Result<RouterLayer, String> {
    let policy = match escalate_on {
        Some(spec) => EscalationPolicy::parse(spec)?,
        None => EscalationPolicy::default(),
    };
    let mut routes: Vec<Box<dyn ChatModel>> = Vec::new();
    for (i, name) in route_names.iter().enumerate() {
        let profile = ModelProfile::by_name(name)
            .ok_or_else(|| format!("unknown route model {name:?} (see dprep help)"))?;
        let sim = SimulatedLlm::new(profile, Arc::clone(&kb)).with_seed(seed);
        let mut stack: Box<dyn ChatModel> = match &fault {
            Some((target, scenario)) if *target == i => {
                Box::new(FaultLayer::scenario(sim, scenario.clone(), seed))
            }
            _ => Box::new(sim),
        };
        if retries > 0 {
            stack = Box::new(RetryLayer::new(stack, retries).with_stats(Arc::clone(stats)));
        }
        routes.push(stack);
    }
    Ok(RouterLayer::new(routes, policy))
}

/// Probes an output path for writability without truncating existing
/// content, so a typo'd directory or read-only target fails the command
/// before any (potentially expensive) model work runs.
fn probe_writable(path: &str, what: &str) -> Result<(), String> {
    std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map(|_| ())
        .map_err(|e| format!("cannot write {what} {path:?}: {e}"))
}

/// The observability sinks a command wires into its middleware stack and
/// executor, built from the serving flags. Call [`Observability::finish`]
/// after the run to flush the trace file and surface audit violations.
pub struct Observability {
    tracer: Arc<dyn Tracer>,
    jsonl: Option<(Arc<JsonlTracer>, String)>,
    audit: Option<Arc<AuditTracer>>,
}

impl Observability {
    /// Builds the sinks requested by `serving`. With neither `--trace`
    /// nor `--audit` the composite tracer is an empty no-op fan-out.
    ///
    /// A `--trace FILE` path is probed for writability **up front**, so a
    /// typo'd directory or a read-only target fails the command before any
    /// (potentially expensive) model work runs, not after.
    pub fn from_serving(serving: &Serving) -> Result<Self, String> {
        let mut multi = MultiTracer::new();
        let jsonl = match serving.trace.as_ref() {
            None => None,
            Some(path) => {
                // Probed up front, without truncating: an existing trace
                // survives until the run actually finishes and overwrites it.
                probe_writable(path, "trace")?;
                let sink = Arc::new(JsonlTracer::new());
                multi.push(Arc::clone(&sink) as Arc<dyn Tracer>);
                Some((sink, path.clone()))
            }
        };
        // The metrics snapshot path gets the same up-front probe as the
        // trace path: fail before the run, not after it.
        if let Some(path) = serving.metrics_out.as_ref() {
            probe_writable(path, "metrics")?;
        }
        let audit = serving.audit.then(|| {
            let sink = Arc::new(AuditTracer::new());
            multi.push(Arc::clone(&sink) as Arc<dyn Tracer>);
            sink
        });
        Ok(Observability {
            tracer: Arc::new(multi),
            jsonl,
            audit,
        })
    }

    /// The composite tracer to hand to middleware layers and executors.
    pub fn tracer(&self) -> Arc<dyn Tracer> {
        Arc::clone(&self.tracer)
    }

    /// Writes the JSONL trace (if `--trace` was given) and reports audit
    /// violations (if `--audit` was on) as a hard error.
    pub fn finish(self) -> Result<(), String> {
        if let Some((sink, path)) = &self.jsonl {
            sink.write_to(std::path::Path::new(path))
                .map_err(|e| format!("cannot write trace {path:?}: {e}"))?;
            eprintln!("[trace: {} event(s) -> {path}]", sink.len());
        }
        if let Some(audit) = &self.audit {
            let violations = audit.violations();
            if violations.is_empty() {
                eprintln!(
                    "[audit: {} run(s), ledger invariants hold]",
                    audit.runs_audited()
                );
            } else {
                for v in &violations {
                    eprintln!("[audit violation] {v}");
                }
                return Err(format!(
                    "serving-ledger audit failed with {} violation(s)",
                    violations.len()
                ));
            }
        }
        Ok(())
    }
}

/// Whether two flag paths name the same file. Falls back to literal
/// equality when either path cannot be canonicalized (e.g. does not exist
/// yet) — a nonexistent journal target cannot be the recovered file.
fn same_path(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (std::fs::canonicalize(a), std::fs::canonicalize(b)) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => false,
    }
}

/// Builds the [`Durability`] a command's run executes under from the
/// `--journal` / `--resume` serving flags, plus the recovered entries (for
/// seeding a journal-warmed response cache).
///
/// `--resume FILE` recovers the journal — truncating a torn final line
/// with a warning — and rejects it unless the header's model, config
/// descriptor, and seed all match the current invocation. (The plan
/// fingerprint in the header is checked by the executor itself, against
/// the actual plan, before any request runs.) `--journal FILE` opens the
/// file up front, which doubles as the startup writability probe; when it
/// names the same file as `--resume`, the recovered handle is reused so
/// appends extend the existing journal instead of truncating it.
pub fn durability_from_serving(
    serving: &Serving,
    model_name: &str,
    config: &str,
    seed: u64,
) -> Result<(Durability, Vec<JournalEntry>), String> {
    let mut durability = Durability::new();
    let Some(resume_path) = serving.resume.as_deref() else {
        if let Some(journal_path) = serving.journal.as_deref() {
            let journal = DurableJournal::fresh(journal_path, model_name, config, seed)
                .map_err(|e| format!("cannot create journal {journal_path:?}: {e}"))?;
            durability = durability.with_journal(Arc::new(journal));
        }
        return Ok((durability, Vec::new()));
    };
    let recovered = DurableJournal::resume(resume_path)?;
    if let Some(warning) = &recovered.warning {
        eprintln!("[journal warning] {warning}");
    }
    // An empty file (a crash between journal creation and the first header
    // write) recovers with no header and nothing to replay: fall back to
    // fresh-journal behaviour. `fresh` truncating the empty file is
    // harmless even when `--journal` names the same path.
    let Some(header) = recovered.header.clone() else {
        drop(recovered);
        if let Some(journal_path) = serving.journal.as_deref() {
            let journal = DurableJournal::fresh(journal_path, model_name, config, seed)
                .map_err(|e| format!("cannot create journal {journal_path:?}: {e}"))?;
            durability = durability.with_journal(Arc::new(journal));
        }
        return Ok((durability, Vec::new()));
    };
    let mismatch = |what: &str, recorded: &str, current: &str| {
        format!(
            "journal {resume_path:?} was recorded under {what} {recorded:?} \
             but this run uses {current:?}; refusing to resume"
        )
    };
    if header.model != model_name {
        return Err(mismatch("model", &header.model, model_name));
    }
    if header.config != config {
        return Err(mismatch("config", &header.config, config));
    }
    if header.seed != seed {
        return Err(mismatch(
            "seed",
            &header.seed.to_string(),
            &seed.to_string(),
        ));
    }
    durability = durability.with_replay(&recovered.entries, header.plan);
    let truncated = recovered.journal.truncated();
    match serving.journal.as_deref() {
        // Same file: keep appending to the recovered journal (it carries
        // its own torn-tail truncation count into the run's JournalState).
        Some(journal_path) if same_path(journal_path, resume_path) => {
            durability = durability.with_journal(Arc::new(recovered.journal));
        }
        // Different file: start it fresh; the recovered handle is dropped,
        // so its truncation count rides on the durability instead.
        Some(journal_path) => {
            let journal = DurableJournal::fresh(journal_path, model_name, config, seed)
                .map_err(|e| format!("cannot create journal {journal_path:?}: {e}"))?;
            durability = durability
                .with_journal(Arc::new(journal))
                .with_truncated(truncated);
        }
        // Read-only resume: replay without journaling further.
        None => durability = durability.with_truncated(truncated),
    }
    Ok((durability, recovered.entries))
}

/// Wraps `model` in the middleware stack the serving options ask for
/// (cache over retry), reporting into `stats` and streaming lifecycle
/// events into `tracer`. `warm` is the recovered journal of a resumed run:
/// when caching is on, the cache store is pre-seeded with every journaled
/// response the uninterrupted run's cache would have memoized, so
/// cross-run cache hits bill identically on resume.
pub fn apply_serving<M: ChatModel + 'static>(
    model: M,
    serving: &Serving,
    stats: &Arc<MiddlewareStats>,
    tracer: Arc<dyn Tracer>,
    warm: &[JournalEntry],
) -> Box<dyn ChatModel> {
    let mut stack: Box<dyn ChatModel> = Box::new(model);
    if serving.retries > 0 {
        stack = Box::new(
            RetryLayer::new(stack, serving.retries)
                .with_stats(Arc::clone(stats))
                .with_tracer(Arc::clone(&tracer)),
        );
    }
    apply_cache(stack, serving, stats, tracer, warm)
}

/// Wraps `stack` in the response cache when `--cache on`, warm-started
/// from a resumed journal. This is the routed path's whole middleware
/// story — the cascade's retries live inside each route, so only the cache
/// sits above the [`RouterLayer`].
pub fn apply_cache(
    stack: Box<dyn ChatModel>,
    serving: &Serving,
    stats: &Arc<MiddlewareStats>,
    tracer: Arc<dyn Tracer>,
    warm: &[JournalEntry],
) -> Box<dyn ChatModel> {
    if !serving.cache {
        return stack;
    }
    let mut cache = CacheLayer::new(stack)
        .with_stats(Arc::clone(stats))
        .with_tracer(tracer);
    if !warm.is_empty() {
        cache = cache.with_store(warm_cache_store(warm));
    }
    Box::new(cache)
}

/// Prints the multi-line serving-metrics summary when `--metrics on`, and
/// writes the snapshot JSON when `--metrics FILE` was given.
pub fn print_metrics(
    serving: &Serving,
    metrics: &dprep_obs::MetricsSnapshot,
) -> Result<(), String> {
    if serving.metrics {
        eprint!("{}", metrics.summary());
    }
    if let Some(path) = &serving.metrics_out {
        let mut json = metrics.to_json().to_json();
        json.push('\n');
        std::fs::write(path, json).map_err(|e| format!("cannot write metrics {path:?}: {e}"))?;
        eprintln!("[metrics snapshot -> {path}]");
    }
    Ok(())
}

/// Prints the run's usage footer, including serving counters when any are
/// nonzero.
pub fn print_usage_footer(usage: &dprep_llm::UsageTotals, stats: Option<&ExecStats>) {
    eprintln!(
        "[{} request(s), {} tokens, ${:.4} virtual cost, {:.1}s virtual latency]",
        usage.requests,
        usage.total_tokens(),
        usage.cost_usd,
        usage.latency_secs
    );
    if let Some(stats) = stats {
        if stats.deduped + stats.retries + stats.cache_hits + stats.faulted > 0 {
            eprintln!(
                "[{} deduped, {} retried, {} cache hit(s), {} faulted]",
                stats.deduped, stats.retries, stats.cache_hits, stats.faulted
            );
        }
    }
}

/// Resolves the attribute list for `--attrs` (default: every attribute).
pub fn attrs_for(flags: &Flags, table: &Table) -> Result<Vec<String>, String> {
    match flags.get("attrs") {
        None => Ok(table
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect()),
        Some(spec) => {
            let mut out = Vec::new();
            for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if table.schema().index_of(name).is_none() {
                    return Err(format!(
                        "attribute {name:?} not in the table (has: {})",
                        table.schema().names().join(", ")
                    ));
                }
                out.push(name.to_string());
            }
            if out.is_empty() {
                return Err("--attrs selected no attributes".into());
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Flags;

    #[test]
    fn zero_plan_shard_size_is_rejected_at_flag_parse() {
        let mut flags = Flags::default();
        flags.set("plan-shard-size", "0");
        let err = serving_from_flags(&flags).unwrap_err();
        assert!(err.contains("--plan-shard-size"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        flags.set("plan-shard-size", "64");
        assert_eq!(serving_from_flags(&flags).unwrap().plan_shard, Some(64));
    }

    #[test]
    fn resuming_an_empty_journal_falls_back_to_a_fresh_one() {
        let mut path = std::env::temp_dir();
        path.push(format!("dprep-cli-empty-journal-{}", std::process::id()));
        let path_str = path.to_string_lossy().to_string();
        // A crash between journal creation and the first header write
        // leaves a zero-length file behind.
        std::fs::write(&path, "").unwrap();
        let serving = Serving {
            journal: Some(path_str.clone()),
            resume: Some(path_str),
            ..serving_from_flags(&Flags::default()).unwrap()
        };
        let (durability, warm) =
            durability_from_serving(&serving, "sim-gpt-4", "cfg", 7).expect("empty file recovers");
        assert!(warm.is_empty(), "nothing to replay");
        assert!(
            durability.journal().is_some(),
            "journaling restarts fresh at the same path"
        );
        std::fs::remove_file(&path).ok();
    }
}
