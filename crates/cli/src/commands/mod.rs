//! CLI subcommands.

pub mod clean;
pub mod datasets;
pub mod detect;
pub mod impute;
pub mod match_cmd;

use std::sync::Arc;

use dprep_llm::{KnowledgeBase, ModelProfile, SimulatedLlm};
use dprep_tabular::Table;

use crate::args::Flags;

/// Loads a CSV file into a typed table.
pub fn load_table(path: &str) -> Result<Table, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    dprep_tabular::csv::read_csv_typed(&text).map_err(|e| format!("{path}: {e}"))
}

/// Builds the simulated model from flags and a knowledge base.
pub fn build_model(
    profile: ModelProfile,
    kb: KnowledgeBase,
    seed: u64,
) -> SimulatedLlm {
    SimulatedLlm::new(profile, Arc::new(kb)).with_seed(seed)
}

/// Prints the run's usage footer.
pub fn print_usage_footer(usage: &dprep_llm::UsageTotals) {
    eprintln!(
        "[{} request(s), {} tokens, ${:.4} virtual cost, {:.1}s virtual latency]",
        usage.requests,
        usage.total_tokens(),
        usage.cost_usd,
        usage.latency_secs
    );
}

/// Resolves the attribute list for `--attrs` (default: every attribute).
pub fn attrs_for(flags: &Flags, table: &Table) -> Result<Vec<String>, String> {
    match flags.get("attrs") {
        None => Ok(table
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect()),
        Some(spec) => {
            let mut out = Vec::new();
            for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if table.schema().index_of(name).is_none() {
                    return Err(format!(
                        "attribute {name:?} not in the table (has: {})",
                        table.schema().names().join(", ")
                    ));
                }
                out.push(name.to_string());
            }
            if out.is_empty() {
                return Err("--attrs selected no attributes".into());
            }
            Ok(out)
        }
    }
}
