//! `dprep match` — full entity matching between two CSV files: blocking
//! (§2.1) then pairwise LLM matching.

use dprep_core::blocking::{EmbeddingBlocker, NgramBlocker};
use dprep_core::{PipelineConfig, Preprocessor};
use dprep_prompt::{Task, TaskInstance};

use crate::args::Flags;
use crate::commands::{load_table, print_metrics, print_usage_footer, serving_setup, ServingSetup};

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let left = load_table(flags.require("left")?)?;
    let right = load_table(flags.require("right")?)?;
    let mut config = PipelineConfig::best(Task::EntityMatching);
    let ServingSetup {
        serving,
        obs,
        durability,
        model,
    } = serving_setup(flags, &mut [&mut config])?;

    // ── blocking ─────────────────────────────────────────────────────────
    let blocker = flags.get("blocker").unwrap_or("ngram");
    let candidates: Vec<(usize, usize)> = match blocker {
        "ngram" => {
            NgramBlocker::default()
                .block(left.rows(), right.rows())
                .pairs
        }
        "embedding" => {
            EmbeddingBlocker::default()
                .block(left.rows(), right.rows())
                .pairs
        }
        "none" => {
            let mut all = Vec::with_capacity(left.len() * right.len());
            for i in 0..left.len() {
                for j in 0..right.len() {
                    all.push((i, j));
                }
            }
            all
        }
        other => return Err(format!("unknown blocker {other:?} (ngram|embedding|none)")),
    };
    eprintln!(
        "blocking ({blocker}): {} candidate pairs of {} possible",
        candidates.len(),
        left.len() * right.len()
    );
    if candidates.is_empty() {
        eprintln!("no candidates survived blocking");
        return obs.finish();
    }

    // ── pairwise matching ────────────────────────────────────────────────
    let instances: Vec<TaskInstance> = candidates
        .iter()
        .map(|&(i, j)| TaskInstance::EntityMatching {
            a: left.rows()[i].clone(),
            b: right.rows()[j].clone(),
        })
        .collect();
    let preprocessor = Preprocessor::new(&model, config)
        .with_durability(durability)
        .with_tracer(obs.tracer());
    let result = preprocessor.try_run(&instances, &[])?;

    println!("left\tright\tleft_record\tright_record");
    let mut matches = 0usize;
    for (&(i, j), prediction) in candidates.iter().zip(&result.predictions) {
        if prediction.as_yes_no() == Some(true) {
            matches += 1;
            println!(
                "{i}\t{j}\t{}\t{}",
                dprep_tabular::context::contextualize(&left.rows()[i]),
                dprep_tabular::context::contextualize(&right.rows()[j]),
            );
        }
    }
    eprintln!(
        "{matches} matching pair(s) of {} candidates",
        candidates.len()
    );
    print_usage_footer(&result.usage, Some(&result.stats));
    print_metrics(&serving, &result.metrics)?;
    obs.finish()
}
