//! `dprep report` — render a run report from a JSONL trace or a metrics
//! snapshot, or diff two of them.
//!
//! Unlike every other subcommand this one takes positional arguments
//! (`dprep report run.trace`), so it parses its argv directly instead of
//! going through [`crate::args::parse_flags`], which rejects positionals.

use dprep_obs::{ReportFormat, RunReport};

/// Runs the command on the raw argv after `report`.
pub fn run(argv: &[String]) -> Result<(), String> {
    let mut inputs: Vec<&str> = Vec::new();
    let mut format = ReportFormat::Text;
    let mut diff = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--format needs a value (text|json|prom)".to_string())?;
                format = ReportFormat::parse(value)?;
            }
            "--diff" => diff = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?} for report"));
            }
            path => inputs.push(path),
        }
    }
    match (diff, inputs.as_slice()) {
        (false, [path]) => {
            let report = load(path)?;
            print!("{}", report.render(format));
            Ok(())
        }
        (true, [a, b]) => {
            let before = load(a)?;
            let after = load(b)?;
            print!("{}", before.render_diff(&after));
            Ok(())
        }
        (false, _) => Err("report needs exactly one input file (or --diff A B)".into()),
        (true, _) => Err("report --diff needs exactly two input files".into()),
    }
}

fn load(path: &str) -> Result<RunReport, String> {
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    RunReport::from_contents(&contents).map_err(|e| format!("{path}: {e}"))
}
