//! `dprep chaos` — sweep the fault-scenario presets over a pinned ED/EM
//! workload and assert the robustness invariants online.
//!
//! For every scenario × workload the sweep runs the pipeline three times
//! with a fresh serving stack each time: a baseline (degradation off), a
//! degraded run at `--workers N`, and the same degraded run serially. It
//! then asserts, failing the command on any violation:
//!
//! 1. **Terminal coverage** — every instance reaches exactly one terminal
//!    prediction (answered or a classified failure).
//! 2. **Ledger soundness** — an [`AuditTracer`] watches every run: billed
//!    tokens reconcile across retries and splits (never double-counted),
//!    cache hits bill zero, every planned request completes or cancels
//!    exactly once.
//! 3. **Monotone degradation** — the degraded run answers at least as many
//!    instances as the baseline.
//! 4. **Determinism** — the degraded run's metrics snapshot is
//!    bit-identical at `--workers N` and `--workers 1`, so the printed
//!    report never depends on the worker count.
//!
//! The sweep stack is cache → retry → fault injection (order-independent
//! layers, so parallel dispatch stays deterministic). The circuit breaker
//! holds ordered mutable state, so it gets its own **serial** drill: a
//! burst-outage schedule drives it closed → open → half-open → closed and
//! the transition sequence is printed.

use std::fmt::Write as _;
use std::sync::Arc;

use dprep_core::{
    Durability, ExecutionOptions, KillSwitch, PipelineConfig, Preprocessor, RunResult,
};
use dprep_datasets::{dataset_by_name, Dataset};
use dprep_llm::{
    warm_cache_store, CacheLayer, CircuitBreakerLayer, FaultLayer, FaultScenario, MiddlewareStats,
    ModelProfile, RetryLayer, SimulatedLlm,
};
use dprep_obs::{
    AuditTracer, CollectingTracer, DurableJournal, JournalEntry, MetricsRecorder, MetricsSnapshot,
    MultiTracer, TerminalKind, TraceEvent, Tracer,
};

use crate::args::Flags;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    let seed = flags.seed()?;
    let workers = flags.usize_or("workers", 2)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let retries = flags.usize_or("retries", 2)? as u32;
    if flags.bool_or("soak", false)? {
        print!("{}", soak_drill(seed, retries)?);
        return Ok(());
    }
    if flags.bool_or("overload", false)? {
        print!("{}", overload_drill(seed, retries)?);
        return Ok(());
    }
    let scenarios: Vec<FaultScenario> = match flags.get("scenario") {
        // The hard-down route-outage preset is excluded from the default
        // single-model sweep: with no cascade to fail over to it just
        // grinds every batch through the ladder to retries-exhausted. The
        // dedicated route-outage drill below exercises it the way it is
        // meant to be used — killing a cascade's primary. Naming it with
        // --scenario still sweeps it.
        None => FaultScenario::presets()
            .into_iter()
            .filter(|s| s.name != "route-outage")
            .collect(),
        Some(name) => {
            let scenario = FaultScenario::by_name(name).ok_or_else(|| {
                let known: Vec<&str> = FaultScenario::presets().iter().map(|s| s.name).collect();
                format!("unknown scenario {name:?} (have: {})", known.join(", "))
            })?;
            vec![scenario]
        }
    };
    // The pinned workload: one error-detection table, one entity-matching
    // table, both small enough that the full sweep stays fast.
    let workloads = [
        dataset_by_name("Adult", 0.1, seed).expect("pinned dataset exists"),
        dataset_by_name("Restaurant", 2.0, seed).expect("pinned dataset exists"),
    ];

    println!("dprep chaos sweep (seed {seed}, retries {retries})");
    let mut violations: Vec<String> = Vec::new();
    for ds in &workloads {
        println!();
        println!("workload {} ({} instances)", ds.name, ds.len());
        println!(
            "{:<18} {:>9} {:>9} {:>7} {:>7} {:>8} {:>10}",
            "scenario", "answered", "degraded", "splits", "recov", "faults", "tokens"
        );
        for scenario in &scenarios {
            let audit = Arc::new(AuditTracer::new());
            let base = sweep_run(ds, scenario, seed, retries, workers, false, &audit);
            let degraded = sweep_run(ds, scenario, seed, retries, workers, true, &audit);
            let serial = sweep_run(ds, scenario, seed, retries, 1, true, &audit);
            check_invariants(
                &mut violations,
                ds,
                scenario.name,
                &base,
                &degraded,
                &serial,
                &audit,
            );
            let answered = |r: &RunResult| r.predictions.len() - r.failed_count();
            println!(
                "{:<18} {:>9} {:>9} {:>7} {:>7} {:>8} {:>10}{}",
                scenario.name,
                answered(&base.result),
                answered(&degraded.result),
                degraded.result.stats.splits,
                degraded.result.stats.split_recovered,
                degraded.faults_injected,
                degraded.result.usage.total_tokens(),
                failure_suffix(&degraded.result),
            );
        }
    }

    println!();
    print!("{}", breaker_drill(&workloads[0], seed, retries)?);

    println!();
    print!("{}", route_outage_drill(seed, retries)?);

    println!();
    print!(
        "{}",
        kill_drill(&workloads[0], seed, retries, workers, None)?
    );
    // The same drill with the streaming planner on: shards of 2 batches
    // put several shard boundaries inside the kill sweep, so resume is
    // proven bit-identical when the plan was never materialized.
    print!(
        "{}",
        kill_drill(&workloads[0], seed, retries, workers, Some(2))?
    );

    if violations.is_empty() {
        println!();
        println!("all invariants hold: terminal coverage, ledger audit, monotone degradation, worker-count determinism");
        Ok(())
    } else {
        for v in &violations {
            eprintln!("[chaos violation] {v}");
        }
        Err(format!(
            "chaos sweep failed with {} invariant violation(s)",
            violations.len()
        ))
    }
}

/// One sweep run and the middleware fault counts its stack injected.
struct SweepRun {
    result: RunResult,
    /// Total `FaultInjected` events across all attempts, observed by a
    /// recorder on the stack's tracer (the run's own metrics snapshot only
    /// aggregates executor-emitted events).
    faults_injected: usize,
}

/// One sweep run with a fresh cache → retry → fault-injection stack.
fn sweep_run(
    ds: &Dataset,
    scenario: &FaultScenario,
    seed: u64,
    retries: u32,
    workers: usize,
    degrade: bool,
    audit: &Arc<AuditTracer>,
) -> SweepRun {
    let recorder = Arc::new(MetricsRecorder::new());
    let tracer: Arc<dyn Tracer> = Arc::new(
        MultiTracer::new()
            .with(Arc::clone(audit) as Arc<dyn Tracer>)
            .with(Arc::clone(&recorder) as Arc<dyn Tracer>),
    );
    let sim = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(ds.kb.clone())).with_seed(seed);
    let faulty = FaultLayer::scenario(sim, scenario.clone(), seed).with_tracer(Arc::clone(&tracer));
    let retried = RetryLayer::new(faulty, retries).with_tracer(Arc::clone(&tracer));
    let stack = CacheLayer::new(retried).with_tracer(Arc::clone(&tracer));
    let mut config = PipelineConfig::best(ds.task);
    config.workers = workers;
    let result = Preprocessor::new(&stack, config)
        .with_exec_options(ExecutionOptions {
            workers,
            degrade,
            ..ExecutionOptions::default()
        })
        .with_tracer(tracer)
        .run(&ds.instances, &ds.few_shot);
    let faults_injected = recorder.snapshot().faults_injected.values().sum();
    SweepRun {
        result,
        faults_injected,
    }
}

/// Checks the sweep invariants for one scenario, collecting violations.
fn check_invariants(
    violations: &mut Vec<String>,
    ds: &Dataset,
    scenario: &str,
    base: &SweepRun,
    degraded: &SweepRun,
    serial: &SweepRun,
    audit: &Arc<AuditTracer>,
) {
    let at = format!("{}/{scenario}", ds.name);
    for (label, run) in [("base", base), ("degraded", degraded)] {
        if run.result.predictions.len() != ds.len() {
            violations.push(format!(
                "{at}: {label} run produced {} predictions for {} instances",
                run.result.predictions.len(),
                ds.len()
            ));
        }
    }
    let answered = |r: &RunResult| r.predictions.len() - r.failed_count();
    if answered(&degraded.result) < answered(&base.result) {
        violations.push(format!(
            "{at}: degradation lost answers ({} -> {})",
            answered(&base.result),
            answered(&degraded.result)
        ));
    }
    if degraded.result.metrics != serial.result.metrics {
        violations.push(format!(
            "{at}: degraded metrics differ between worker counts"
        ));
    }
    if degraded.result.predictions != serial.result.predictions {
        violations.push(format!(
            "{at}: degraded predictions differ between worker counts"
        ));
    }
    if degraded.faults_injected != serial.faults_injected {
        violations.push(format!(
            "{at}: injected-fault counts differ between worker counts ({} vs {})",
            degraded.faults_injected, serial.faults_injected
        ));
    }
    for v in audit.violations() {
        violations.push(format!("{at}: audit: {v}"));
    }
}

/// Renders nonzero failure kinds as a compact suffix, or nothing.
fn failure_suffix(result: &RunResult) -> String {
    let mut out = String::new();
    for (kind, n) in result.failure_breakdown() {
        if n > 0 {
            if out.is_empty() {
                out.push_str("  [");
            } else {
                out.push_str(", ");
            }
            let _ = write!(out, "{} {}", n, kind.label());
        }
    }
    if !out.is_empty() {
        out.push(']');
    }
    out
}

/// The kill-point drill's pinned parameters: one workload under the
/// partial-batch scenario with degradation on.
struct Drill<'a> {
    ds: &'a Dataset,
    seed: u64,
    retries: u32,
    /// Streaming-planner shard size; `None` materializes the plan.
    plan_shard: Option<usize>,
}

impl Drill<'_> {
    /// One drill run with a fresh fault → retry → cache stack under the
    /// given durability, kill switch, and warm cache entries.
    fn run(
        &self,
        workers: usize,
        durability: Durability,
        kill: Option<KillSwitch>,
        warm: &[JournalEntry],
        audit: Option<&Arc<AuditTracer>>,
    ) -> Result<RunResult, String> {
        let recorder = Arc::new(MetricsRecorder::new());
        let mut multi = MultiTracer::new().with(Arc::clone(&recorder) as Arc<dyn Tracer>);
        if let Some(audit) = audit {
            multi = multi.with(Arc::clone(audit) as Arc<dyn Tracer>);
        }
        let tracer: Arc<dyn Tracer> = Arc::new(multi);
        let sim = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(self.ds.kb.clone()))
            .with_seed(self.seed);
        let faulty = FaultLayer::scenario(sim, FaultScenario::partial_batch(), self.seed)
            .with_tracer(Arc::clone(&tracer));
        let retried = RetryLayer::new(faulty, self.retries).with_tracer(Arc::clone(&tracer));
        let mut cache = CacheLayer::new(retried).with_tracer(Arc::clone(&tracer));
        if !warm.is_empty() {
            cache = cache.with_store(warm_cache_store(warm));
        }
        let mut config = PipelineConfig::best(self.ds.task);
        config.workers = workers;
        config.plan_shard_size = self.plan_shard;
        let mut preprocessor = Preprocessor::new(&cache, config)
            .with_exec_options(ExecutionOptions {
                workers,
                degrade: true,
                ..ExecutionOptions::default()
            })
            .with_durability(durability)
            .with_tracer(tracer);
        if let Some(kill) = kill {
            preprocessor = preprocessor.with_kill_switch(kill);
        }
        preprocessor.try_run(&self.ds.instances, &self.ds.few_shot)
    }
}

/// A metrics snapshot with its journal counters zeroed, so a resumed run
/// (which replays instead of writing) compares equal to the uninterrupted
/// reference on everything else.
fn strip_journal_counters(mut metrics: MetricsSnapshot) -> MetricsSnapshot {
    metrics.journal_replayed = 0;
    metrics.journal_written = 0;
    metrics.journal_truncated = 0;
    metrics
}

/// The kill-point drill: journal an uninterrupted reference run, then for
/// every kill point N in the sweep, run with a seeded [`KillSwitch`] that
/// aborts right after the Nth terminal event is journaled, resume from
/// that journal with a fresh stack, and assert the resumed run is
/// **bit-identical** to the reference — predictions, billed usage, stats,
/// and metrics (minus the journal counters) — with every fingerprint
/// billed exactly once across the kill/resume pair. Resumes alternate
/// between serial and `--workers N` to cover worker-count invariance too.
///
/// With `plan_shard` set the whole drill — reference, killed runs, and
/// resumes — executes under the streaming planner, proving the resume
/// contract holds when the plan is consumed shard by shard instead of
/// materialized.
fn kill_drill(
    ds: &Dataset,
    seed: u64,
    retries: u32,
    workers: usize,
    plan_shard: Option<usize>,
) -> Result<String, String> {
    let mode = match plan_shard {
        None => "materialized".to_string(),
        Some(n) => format!("streaming shard {n}"),
    };
    let temp = |tag: &str| {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dprep-chaos-kill-{}-{seed}-{}-{tag}.jsonl",
            std::process::id(),
            plan_shard.map_or(0, |n| n),
        ));
        p
    };

    // Uninterrupted reference, journaled: its entry count is the number of
    // kill points, and its fingerprint set is the exactly-once oracle.
    let ref_path = temp("ref");
    let ref_journal = Arc::new(
        DurableJournal::fresh(&ref_path, "sim-gpt-4", "chaos-kill", seed)
            .map_err(|e| format!("cannot create drill journal: {e}"))?,
    );
    let drill = Drill {
        ds,
        seed,
        retries,
        plan_shard,
    };
    let reference = drill.run(
        workers,
        Durability::new().with_journal(Arc::clone(&ref_journal)),
        None,
        &[],
        None,
    )?;
    let kill_points = ref_journal.written();
    let recovered = DurableJournal::resume(&ref_path)?;
    let mut oracle: Vec<u64> = recovered
        .entries
        .iter()
        .filter(|e| e.kind == TerminalKind::Completed)
        .map(|e| e.fingerprint)
        .collect();
    oracle.sort_unstable();
    std::fs::remove_file(&ref_path).ok();

    let mut violations: Vec<String> = Vec::new();
    for n in 1..=kill_points {
        let path = temp(&n.to_string());
        let journal = Arc::new(
            DurableJournal::fresh(&path, "sim-gpt-4", "chaos-kill", seed)
                .map_err(|e| format!("cannot create drill journal: {e}"))?,
        );
        let kill = KillSwitch::after(n);
        let killed = drill.run(
            workers,
            Durability::new().with_journal(journal),
            Some(kill.clone()),
            &[],
            None,
        )?;
        drop(killed); // a crashed process would never have delivered it
        if !kill.fired() {
            violations.push(format!("kill point {n}: switch never fired"));
            std::fs::remove_file(&path).ok();
            continue;
        }
        let recovered = DurableJournal::resume(&path)?;
        // Resume keeps journaling into the same file, like a restarted
        // command with both --resume and --journal pointing at it.
        let durability = Durability::new()
            .with_replay(&recovered.entries, recovered.require_header()?.plan)
            .with_journal(Arc::new(recovered.journal));
        let audit = Arc::new(AuditTracer::new());
        let resume_workers = if n % 2 == 0 { 1 } else { workers };
        let resumed = drill.run(
            resume_workers,
            durability,
            None,
            &recovered.entries,
            Some(&audit),
        )?;
        if resumed.predictions != reference.predictions {
            violations.push(format!("kill point {n}: predictions diverge after resume"));
        }
        if resumed.usage != reference.usage {
            violations.push(format!(
                "kill point {n}: billed usage diverges after resume ({} vs {} tokens)",
                resumed.usage.total_tokens(),
                reference.usage.total_tokens()
            ));
        }
        if resumed.stats != reference.stats {
            violations.push(format!("kill point {n}: exec stats diverge after resume"));
        }
        if strip_journal_counters(resumed.metrics.clone())
            != strip_journal_counters(reference.metrics.clone())
        {
            violations.push(format!("kill point {n}: metrics diverge after resume"));
        }
        for v in audit.violations() {
            violations.push(format!("kill point {n}: audit: {v}"));
        }
        // Exactly-once billing: the final journal holds each completed
        // fingerprint once, and the set matches the reference run's.
        let finished = DurableJournal::resume(&path)?;
        let mut fingerprints: Vec<u64> = finished
            .entries
            .iter()
            .filter(|e| e.kind == TerminalKind::Completed)
            .map(|e| e.fingerprint)
            .collect();
        fingerprints.sort_unstable();
        if fingerprints.windows(2).any(|w| w[0] == w[1]) {
            violations.push(format!("kill point {n}: a fingerprint was billed twice"));
        }
        if fingerprints != oracle {
            violations.push(format!(
                "kill point {n}: journaled fingerprint set diverges from the reference"
            ));
        }
        std::fs::remove_file(&path).ok();
    }

    if violations.is_empty() {
        Ok(format!(
            "kill drill ({}, partial-batch, degrade on, {mode} plan): {kill_points} kill \
             point(s), every resume bit-identical, 0 double-billed fingerprints\n",
            ds.name
        ))
    } else {
        Err(format!(
            "kill drill ({mode} plan) failed: {}",
            violations.join("; ")
        ))
    }
}

/// The serial circuit-breaker drill: a burst-outage schedule behind a
/// breaker with the default thresholds, printed as the observed transition
/// sequence. Serial by construction — the breaker's consecutive-failure
/// state is order-sensitive, so it never goes behind the parallel executor.
fn breaker_drill(ds: &Dataset, seed: u64, retries: u32) -> Result<String, String> {
    let scenario = FaultScenario::burst_outage();
    let collector = Arc::new(CollectingTracer::new());
    let audit = Arc::new(AuditTracer::new());
    let tracer: Arc<dyn Tracer> = Arc::new(
        MultiTracer::new()
            .with(Arc::clone(&collector) as Arc<dyn Tracer>)
            .with(Arc::clone(&audit) as Arc<dyn Tracer>),
    );
    let sim = SimulatedLlm::new(ModelProfile::gpt4(), Arc::new(ds.kb.clone())).with_seed(seed);
    let faulty = FaultLayer::scenario(sim, scenario.clone(), seed).with_tracer(Arc::clone(&tracer));
    let retried = RetryLayer::new(faulty, retries).with_tracer(Arc::clone(&tracer));
    let breaker = CircuitBreakerLayer::new(retried).with_tracer(Arc::clone(&tracer));
    let stack = CacheLayer::new(breaker).with_tracer(Arc::clone(&tracer));
    let mut config = PipelineConfig::best(ds.task);
    config.workers = 1;
    let result = Preprocessor::new(&stack, config)
        .with_tracer(tracer)
        .run(&ds.instances, &ds.few_shot);
    if !audit.is_clean() {
        return Err(format!(
            "breaker drill failed the ledger audit: {}",
            audit.violations().join("; ")
        ));
    }
    let transitions: Vec<String> = collector
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::BreakerTransition { from, to, .. } => Some(format!("{from}->{to}")),
            _ => None,
        })
        .collect();
    let shorted = collector
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::FaultInjected { kind, .. } if *kind == "circuit-open"))
        .count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "breaker drill ({}, burst-outage, serial): {} transition(s), {} short-circuited",
        ds.name,
        transitions.len(),
        shorted
    );
    let _ = writeln!(
        out,
        "  {}",
        if transitions.is_empty() {
            "steady: breaker never opened".to_string()
        } else {
            transitions.join(", ")
        }
    );
    let _ = writeln!(
        out,
        "  {} of {} instances answered under the outage",
        result.predictions.len() - result.failed_count(),
        result.predictions.len()
    );
    Ok(out)
}

/// The route-outage drill: a `sim-gpt-3.5 -> sim-gpt-4` cascade whose
/// primary route is hard-down (every request times out, and keeps timing
/// out past any retry budget) while the escalation route stays calm.
/// Asserts:
///
/// 1. **Zero unserved requests** — no completion carries a fault; every
///    instance that a calm run answers is still answered.
/// 2. **Full failover** — every served leg is the secondary's; the dead
///    primary serves none.
/// 3. **Breaker engagement** — after the failure threshold the primary's
///    legs short (billed zero) instead of paying for doomed dispatches;
///    only periodic half-open probes bill.
/// 4. **Per-route ledger reconciliation** — route-attributed tokens and
///    cost sum exactly to the run's billed totals, and the shorted legs
///    bill nothing.
/// 5. **Worker-count determinism** — predictions and the metrics snapshot
///    (route table included) are bit-identical at `--workers 1`, `2`,
///    and `4`, with the audit clean at each.
fn route_outage_drill(seed: u64, retries: u32) -> Result<String, String> {
    let ds = dataset_by_name("Adult", 0.1, seed).expect("pinned dataset exists");
    let routes = vec!["sim-gpt-3.5".to_string(), "sim-gpt-4".to_string()];
    let run = |workers: usize| -> Result<(RunResult, MetricsSnapshot), String> {
        let audit = Arc::new(AuditTracer::new());
        let recorder = Arc::new(MetricsRecorder::new());
        let tracer: Arc<dyn Tracer> = Arc::new(
            MultiTracer::new()
                .with(Arc::clone(&audit) as Arc<dyn Tracer>)
                .with(Arc::clone(&recorder) as Arc<dyn Tracer>),
        );
        let router = crate::commands::build_router(
            &routes,
            None,
            Arc::new(ds.kb.clone()),
            seed,
            retries,
            &MiddlewareStats::shared(),
            Some((0, FaultScenario::route_outage())),
        )?;
        let mut config = PipelineConfig::best(ds.task);
        config.workers = workers;
        config.routes = routes.clone();
        let result = Preprocessor::new(&router, config)
            .with_exec_options(ExecutionOptions {
                workers,
                ..ExecutionOptions::default()
            })
            .with_tracer(tracer)
            .try_run(&ds.instances, &ds.few_shot)?;
        if !audit.is_clean() {
            return Err(format!(
                "route-outage drill failed the ledger audit at workers {workers}: {}",
                audit.violations().join("; ")
            ));
        }
        Ok((result, recorder.snapshot()))
    };

    let (reference, metrics) = run(1)?;
    let mut violations: Vec<String> = Vec::new();
    if reference.stats.faulted != 0 {
        violations.push(format!(
            "{} completion(s) faulted — the cascade left requests unserved",
            reference.stats.faulted
        ));
    }
    let primary = metrics
        .routes
        .get("sim-gpt-3.5")
        .cloned()
        .unwrap_or_default();
    let secondary = metrics.routes.get("sim-gpt-4").cloned().unwrap_or_default();
    if primary.served != 0 {
        violations.push(format!("dead primary served {} leg(s)", primary.served));
    }
    if secondary.served != metrics.fresh_requests {
        violations.push(format!(
            "secondary served {} of {} fresh request(s)",
            secondary.served, metrics.fresh_requests
        ));
    }
    if primary.shorted == 0 {
        violations.push("breaker never shorted the dead primary".to_string());
    }
    let route_prompt = primary.prompt_tokens + secondary.prompt_tokens;
    let route_completion = primary.completion_tokens + secondary.completion_tokens;
    if route_prompt != metrics.prompt_tokens || route_completion != metrics.completion_tokens {
        violations.push(format!(
            "route-attributed tokens ({route_prompt}p/{route_completion}c) diverge from billed \
             totals ({}p/{}c)",
            metrics.prompt_tokens, metrics.completion_tokens
        ));
    }
    if (primary.cost_usd + secondary.cost_usd - metrics.cost_usd).abs() > 1e-6 {
        violations.push(format!(
            "route-attributed cost ${:.6} diverges from billed ${:.6}",
            primary.cost_usd + secondary.cost_usd,
            metrics.cost_usd
        ));
    }
    for workers in [2usize, 4] {
        let (result, snapshot) = run(workers)?;
        if result.predictions != reference.predictions {
            violations.push(format!("predictions diverge at workers {workers}"));
        }
        if snapshot != metrics {
            violations.push(format!("metrics diverge at workers {workers}"));
        }
    }

    if violations.is_empty() {
        Ok(format!(
            "route-outage drill ({}, {} -> {}): {} request(s) all served by the secondary, \
             {} probe(s) billed on the dead primary, {} shorted, bit-identical at workers 1/2/4\n",
            ds.name,
            routes[0],
            routes[1],
            metrics.fresh_requests,
            primary.escalated,
            primary.shorted,
        ))
    } else {
        Err(format!(
            "route-outage drill failed: {}",
            violations.join("; ")
        ))
    }
}

/// The serving soak drill behind `--soak on`: an ephemeral daemon running
/// the production dataset handler, exercised the way a long-lived
/// deployment would be.
///
/// 1. **Tenant isolation under faults** — three tenants submit
///    concurrently: one under a fault scenario, one clean, one with a
///    token budget small enough to trip mid-run. The tripped tenant must
///    report `budget_tripped` while the other two stay bit-identical to
///    their one-shot reference runs.
/// 2. **Kill + resume, exactly once** — a journaled job is killed after
///    its Nth terminal, then resubmitted with the same `journal_key`: the
///    resumed reply must replay the journal, match the uninterrupted
///    fingerprint, and bill the uninterrupted total exactly once.
/// 3. **Accounting reconciliation** — the `stats` ledger totals must
///    equal the sum of every reply's `tokens_billed`, and the `metrics`
///    Prometheus text must carry per-tenant series.
/// 4. **Clean shutdown** — the `shutdown` op stops the accept loop and
///    the daemon thread exits without error.
fn soak_drill(seed: u64, retries: u32) -> Result<String, String> {
    use std::io::BufReader;
    use std::net::TcpStream;

    use dprep_core::serve::{roundtrip, Daemon, JobScheduler};
    use dprep_core::{ExecutionOptions, TenantLedger};
    use dprep_obs::Json;

    use super::serve::{dataset_handler, HandlerDefaults};

    let journal_dir =
        std::env::temp_dir().join(format!("dprep-chaos-soak-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&journal_dir)
        .map_err(|e| format!("cannot create soak journal dir: {e}"))?;
    let defaults = HandlerDefaults {
        seed,
        retries,
        plan_shard_size: 2,
        journal_dir: Some(journal_dir.clone()),
        routes: Vec::new(),
        escalate_on: None,
    };
    let handler = dataset_handler(defaults.clone(), None);

    // A `submit` body. `journal_key: None` jobs run unjournaled, so the
    // reference runs below see the exact same workload the daemon runs.
    let body = |tenant: &str, dataset: &str, extra: Vec<(&str, Json)>| -> Json {
        let mut fields = vec![
            ("op".to_string(), Json::Str("submit".to_string())),
            ("tenant".to_string(), Json::Str(tenant.to_string())),
            ("dataset".to_string(), Json::Str(dataset.to_string())),
            ("scale".to_string(), Json::Num(0.5)),
            ("workers".to_string(), Json::Num(2.0)),
            ("plan_shard_size".to_string(), Json::Num(2.0)),
        ];
        fields.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
        Json::Obj(fields)
    };
    let str_field = |reply: &Json, key: &str| -> Result<String, String> {
        reply
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("soak reply has no {key:?}: {}", reply.to_json()))
    };
    let num_field = |reply: &Json, key: &str| -> Result<usize, String> {
        reply
            .get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("soak reply has no {key:?}: {}", reply.to_json()))
    };

    // One-shot references through the same handler, outside the daemon: an
    // idle scheduler grants every shard turn immediately.
    let reference = |tenant: &str, dataset: &str, extra: Vec<(&str, Json)>| {
        let scheduler = JobScheduler::new(TenantLedger::new());
        let request = body(tenant, dataset, extra);
        let (_, outcome) = scheduler
            .run_job(
                tenant,
                ExecutionOptions {
                    workers: 2,
                    ..ExecutionOptions::default()
                },
                |grant| handler(&request, grant),
            )
            .map_err(|e| e.to_string())?;
        let reply = Json::Obj(outcome.reply.to_vec());
        Ok::<(String, usize), String>((str_field(&reply, "fingerprint")?, outcome.tokens_billed))
    };
    let faulted = vec![("scenario", Json::Str("partial-batch".to_string()))];
    let (alpha_fp, _) = reference("alpha", "Restaurant", faulted.clone())?;
    let (beta_fp, beta_tokens) = reference("beta", "Adult", vec![])?;
    let (delta_fp, delta_tokens) = reference("delta", "Adult", vec![])?;

    // Tenant gamma gets a budget that trips partway through an Adult run.
    let ledger = TenantLedger::new();
    ledger.set_budget("gamma", Some(beta_tokens / 2));
    let daemon = Daemon::bind("127.0.0.1:0", JobScheduler::new(ledger), handler)
        .map_err(|e| format!("cannot bind soak daemon: {e}"))?;
    let addr = daemon.local_addr();

    let mut lines: Vec<String> = Vec::new();
    let outcome: Result<(), String> = std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());
        let submit = |request: &Json| -> Result<Json, String> {
            let mut stream =
                TcpStream::connect(addr).map_err(|e| format!("soak connect failed: {e}"))?;
            let mut reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("soak clone failed: {e}"))?,
            );
            roundtrip(&mut stream, &mut reader, request)
        };

        // Phase 1+3 setup: three tenants in flight at once.
        let (alpha, beta, gamma) = std::thread::scope(|jobs| {
            let a = jobs.spawn(|| submit(&body("alpha", "Restaurant", faulted.clone())));
            let b = jobs.spawn(|| submit(&body("beta", "Adult", vec![])));
            let g = jobs.spawn(|| submit(&body("gamma", "Adult", vec![])));
            (
                a.join().expect("alpha client"),
                b.join().expect("beta client"),
                g.join().expect("gamma client"),
            )
        });
        let (alpha, beta, gamma) = (alpha?, beta?, gamma?);
        if str_field(&alpha, "fingerprint")? != alpha_fp {
            return Err("soak: faulted tenant alpha diverged from its one-shot run".into());
        }
        if str_field(&beta, "fingerprint")? != beta_fp {
            return Err("soak: tenant beta diverged from its one-shot run".into());
        }
        if gamma.get("budget_tripped") != Some(&Json::Bool(true)) {
            return Err(format!(
                "soak: tenant gamma should have tripped its budget: {}",
                gamma.to_json()
            ));
        }
        lines.push(format!(
            "soak phase 1: 3 concurrent tenants; alpha (partial-batch faults) and beta \
             bit-identical to one-shot runs; gamma tripped its {}-token budget",
            beta_tokens / 2
        ));

        // Phase 2: kill + resume with exactly-once billing.
        let killed = submit(&body(
            "delta",
            "Adult",
            vec![
                ("journal_key", Json::Str("soak".to_string())),
                ("kill_after", Json::Num(3.0)),
            ],
        ))?;
        if killed.get("killed") != Some(&Json::Bool(true)) {
            return Err(format!(
                "soak: kill switch never fired: {}",
                killed.to_json()
            ));
        }
        let resumed = submit(&body(
            "delta",
            "Adult",
            vec![("journal_key", Json::Str("soak".to_string()))],
        ))?;
        if str_field(&resumed, "journal")? != "resumed" {
            return Err(format!(
                "soak: resubmit did not resume its journal: {}",
                resumed.to_json()
            ));
        }
        let replayed = num_field(&resumed, "replayed")?;
        if replayed == 0 {
            return Err("soak: resumed job replayed nothing".into());
        }
        if str_field(&resumed, "fingerprint")? != delta_fp {
            return Err("soak: resumed job diverged from the uninterrupted run".into());
        }
        if num_field(&resumed, "tokens_billed")? != delta_tokens {
            return Err(format!(
                "soak: resumed job billed {} tokens, uninterrupted run billed {delta_tokens}",
                num_field(&resumed, "tokens_billed")?
            ));
        }
        lines.push(format!(
            "soak phase 2: killed after 3 terminals, resumed from its journal \
             ({replayed} replayed), bit-identical and billed exactly once"
        ));

        // Phase 3: the ledger and the replies agree to the token.
        let expected: usize = [&alpha, &beta, &gamma, &killed, &resumed]
            .into_iter()
            .map(|r| num_field(r, "tokens_billed"))
            .sum::<Result<usize, String>>()?;
        let stats = submit(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("stats".to_string()),
        )]))?;
        let ledger_total: usize = match stats.get("tenants") {
            Some(Json::Arr(rows)) => rows
                .iter()
                .filter_map(|r| r.get("tokens_billed").and_then(Json::as_usize))
                .sum(),
            _ => return Err(format!("soak: stats has no tenants: {}", stats.to_json())),
        };
        if ledger_total != expected {
            return Err(format!(
                "soak: ledger bills {ledger_total} tokens, replies bill {expected}"
            ));
        }
        let metrics = submit(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("metrics".to_string()),
        )]))?;
        let prom = str_field(&metrics, "prom")?;
        for tenant in ["alpha", "beta", "gamma", "delta"] {
            let needle = format!("{{tenant=\"{tenant}\"}}");
            if !prom.contains(&needle) {
                return Err(format!("soak: prom exposition has no series for {tenant}"));
            }
        }
        lines.push(format!(
            "soak phase 3: ledger, replies, and prom series reconcile at {ledger_total} tokens"
        ));

        // Phase 4: clean shutdown.
        submit(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("shutdown".to_string()),
        )]))?;
        server
            .join()
            .expect("soak daemon thread")
            .map_err(|e| format!("soak daemon exited uncleanly: {e}"))?;
        lines.push("soak phase 4: shutdown acknowledged, daemon thread exited cleanly".to_string());
        Ok(())
    });
    std::fs::remove_dir_all(&journal_dir).ok();
    outcome?;
    Ok(format!(
        "dprep chaos soak (seed {seed})\n{}\n",
        lines.join("\n")
    ))
}

/// The overload drill behind `--overload on`: a storm at 4× the admission
/// capacity against a policy-bounded daemon, then deadline propagation,
/// then a mid-flight drain with checkpoint/resume. Asserts:
///
/// 1. **Bounded admission under storm** — with `max_inflight 2, max_queued
///    2, tenant_inflight 1`, 16 concurrent submits either complete
///    bit-identically to the one-shot reference or shed with
///    `rejected: "overloaded"` and a positive `retry_after`; admitted +
///    shed account for every submit, and the admitted wall-clock p95 stays
///    bounded (the queue is bounded, so no job waits behind 12 others).
/// 2. **Shed jobs bill zero** — the ledger's token total equals the sum of
///    the admitted replies' `tokens_billed` exactly; per-tenant
///    `jobs_shed` counters account for every shed; an [`AuditTracer`] on
///    the scheduler proves no shed job id ever completes or bills.
/// 3. **Deadline propagation** — a `deadline_ms` submit trips its budget
///    mid-run and returns the same deterministic-partial fingerprint as a
///    one-shot run under the same deadline; a dead-on-arrival deadline
///    sheds with `rejected: "deadline"` before any model work.
/// 4. **Drain checkpoints and resumes exactly once** — two journaled jobs
///    are drained mid-flight: both checkpoint (`killed: true`), a submit
///    during the drain sheds with `rejected: "draining"`, and the daemon
///    exits on its own once quiesced. A fresh daemon then resumes both
///    journals at workers 1, 2, and 4 — every resume bit-identical to the
///    uninterrupted run, billed the uninterrupted total, with no journal
///    fingerprint recorded twice.
fn overload_drill(seed: u64, retries: u32) -> Result<String, String> {
    use std::io::BufReader;
    use std::net::TcpStream;
    use std::time::Instant;

    use dprep_core::serve::{roundtrip, Daemon, JobScheduler};
    use dprep_core::{OverloadPolicy, TenantLedger};
    use dprep_obs::Json;

    use super::serve::{dataset_handler, HandlerDefaults};

    let journal_dir = std::env::temp_dir().join(format!(
        "dprep-chaos-overload-{}-{seed}",
        std::process::id()
    ));
    std::fs::create_dir_all(&journal_dir)
        .map_err(|e| format!("cannot create overload journal dir: {e}"))?;
    let defaults = HandlerDefaults {
        seed,
        retries,
        plan_shard_size: 2,
        journal_dir: Some(journal_dir.clone()),
        routes: Vec::new(),
        escalate_on: None,
    };
    let handler = dataset_handler(defaults.clone(), None);

    let body = |tenant: &str, dataset: &str, extra: Vec<(&str, Json)>| -> Json {
        let mut fields = vec![
            ("op".to_string(), Json::Str("submit".to_string())),
            ("tenant".to_string(), Json::Str(tenant.to_string())),
            ("dataset".to_string(), Json::Str(dataset.to_string())),
            ("scale".to_string(), Json::Num(0.5)),
            ("workers".to_string(), Json::Num(2.0)),
            ("plan_shard_size".to_string(), Json::Num(2.0)),
        ];
        fields.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
        Json::Obj(fields)
    };
    let str_field = |reply: &Json, key: &str| -> Result<String, String> {
        reply
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("overload reply has no {key:?}: {}", reply.to_json()))
    };
    let num_field = |reply: &Json, key: &str| -> Result<usize, String> {
        reply
            .get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("overload reply has no {key:?}: {}", reply.to_json()))
    };

    // One-shot references through the same handler, outside any daemon.
    let reference = |tenant: &str,
                     dataset: &str,
                     deadline: Option<f64>|
     -> Result<(String, usize, bool), String> {
        let scheduler = JobScheduler::new(TenantLedger::new());
        let request = body(tenant, dataset, vec![]);
        let (_, outcome) = scheduler
            .run_job(
                tenant,
                ExecutionOptions {
                    workers: 2,
                    deadline_secs: deadline,
                    ..ExecutionOptions::default()
                },
                |grant| handler(&request, grant),
            )
            .map_err(|e| e.to_string())?;
        let reply = Json::Obj(outcome.reply.to_vec());
        Ok((
            str_field(&reply, "fingerprint")?,
            outcome.tokens_billed,
            outcome.budget_tripped,
        ))
    };
    let (storm_fp, storm_tokens, _) = reference("storm", "Restaurant", None)?;
    let deadline_secs = 1.0;
    let (deadline_fp, deadline_tokens, deadline_tripped) =
        reference("tight", "Restaurant", Some(deadline_secs))?;
    if !deadline_tripped {
        return Err(format!(
            "overload drill: the {deadline_secs}s reference deadline never tripped — \
             the deadline phase would be vacuous"
        ));
    }
    let (adult_fp, adult_tokens, _) = reference("resume", "Adult", None)?;

    let submit_to = |addr: std::net::SocketAddr, request: &Json| -> Result<Json, String> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| format!("overload connect failed: {e}"))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("overload clone failed: {e}"))?,
        );
        roundtrip(&mut stream, &mut reader, request)
    };

    let mut lines: Vec<String> = Vec::new();

    // ---- Phases 1–3: the storm daemon (bounded admission + deadlines).
    let audit = Arc::new(AuditTracer::new());
    let policy = OverloadPolicy {
        max_inflight: Some(2),
        max_queued: Some(2),
        tenant_inflight: Some(1),
        default_deadline_secs: None,
    };
    let capacity = 4; // 2 in flight + 2 queued
    let storm = 4 * capacity;
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        JobScheduler::new(TenantLedger::new())
            .with_policy(policy)
            .with_tracer(Arc::clone(&audit) as Arc<dyn Tracer>),
        Arc::clone(&handler),
    )
    .map_err(|e| format!("cannot bind overload daemon: {e}"))?;
    let addr = daemon.local_addr();

    let outcome: Result<(), String> = std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());

        // Phase 1: the storm. 16 concurrent submits, 4 tenants × 4 jobs,
        // against a capacity of 4.
        let replies: Vec<(Result<Json, String>, f64)> = std::thread::scope(|jobs| {
            let handles: Vec<_> = (0..storm)
                .map(|i| {
                    let tenant = format!("storm-{}", i % 4);
                    jobs.spawn(move || {
                        let started = Instant::now();
                        let reply = submit_to(addr, &body(&tenant, "Restaurant", vec![]));
                        (reply, started.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("storm client"))
                .collect()
        });
        let mut admitted_walls: Vec<f64> = Vec::new();
        let mut admitted_count = 0usize;
        let mut shed_count = 0usize;
        let mut billed_by_replies = 0usize;
        for (reply, wall) in replies {
            let reply = reply?;
            if reply.get("ok") == Some(&Json::Bool(true)) {
                if str_field(&reply, "fingerprint")? != storm_fp {
                    return Err("overload: an admitted storm job diverged from its \
                                one-shot run"
                        .into());
                }
                if num_field(&reply, "tokens_billed")? != storm_tokens {
                    return Err("overload: an admitted storm job billed a different \
                                total than its one-shot run"
                        .into());
                }
                billed_by_replies += storm_tokens;
                admitted_walls.push(wall);
                admitted_count += 1;
            } else {
                if str_field(&reply, "rejected")? != "overloaded" {
                    return Err(format!(
                        "overload: a storm shed was not \"overloaded\": {}",
                        reply.to_json()
                    ));
                }
                let retry_after = reply
                    .get("retry_after")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                if retry_after <= 0.0 {
                    return Err(format!(
                        "overload: a shed carried no positive retry_after: {}",
                        reply.to_json()
                    ));
                }
                shed_count += 1;
            }
        }
        if admitted_count + shed_count != storm {
            return Err(format!(
                "overload: {admitted_count} admitted + {shed_count} shed != {storm} submitted"
            ));
        }
        if admitted_count < 2 || shed_count == 0 {
            return Err(format!(
                "overload: the storm did not exercise the gate \
                 ({admitted_count} admitted, {shed_count} shed)"
            ));
        }
        admitted_walls.sort_by(|a, b| a.partial_cmp(b).expect("finite walls"));
        let p95 = admitted_walls
            [((admitted_walls.len() as f64 * 0.95).ceil() as usize).saturating_sub(1)];
        if p95 > 120.0 {
            return Err(format!(
                "overload: admitted p95 wall latency unbounded at {p95:.1}s"
            ));
        }
        lines.push(format!(
            "overload phase 1: {storm} submits at 4x capacity -> {admitted_count} admitted \
             (bit-identical, p95 {p95:.2}s), {shed_count} shed with retry_after hints"
        ));

        // Phase 2: shed jobs billed exactly zero — the ledger total is the
        // admitted replies' total, and every shed shows up per-tenant.
        let stats = submit_to(
            addr,
            &Json::Obj(vec![("op".to_string(), Json::Str("stats".to_string()))]),
        )?;
        let rows = match stats.get("tenants") {
            Some(Json::Arr(rows)) => rows.as_slice(),
            _ => {
                return Err(format!(
                    "overload: stats has no tenants: {}",
                    stats.to_json()
                ))
            }
        };
        let ledger_total: usize = rows
            .iter()
            .filter_map(|r| r.get("tokens_billed").and_then(Json::as_usize))
            .sum();
        if ledger_total != billed_by_replies {
            return Err(format!(
                "overload: ledger bills {ledger_total} tokens but admitted replies bill \
                 {billed_by_replies} — shed jobs were not free"
            ));
        }
        let shed_by_ledger: usize = rows
            .iter()
            .filter_map(|r| r.get("jobs_shed").and_then(Json::as_usize))
            .sum();
        if shed_by_ledger != shed_count {
            return Err(format!(
                "overload: ledger counts {shed_by_ledger} shed job(s), clients saw {shed_count}"
            ));
        }
        lines.push(format!(
            "overload phase 2: {shed_count} shed jobs billed exactly 0 tokens \
             (ledger reconciles at {ledger_total})"
        ));

        // Phase 3: deadlines. A tight deadline trips deterministically; a
        // dead-on-arrival one sheds before any model work.
        let tight = submit_to(
            addr,
            &body(
                "tight",
                "Restaurant",
                vec![("deadline_ms", Json::Num(deadline_secs * 1000.0))],
            ),
        )?;
        if tight.get("budget_tripped") != Some(&Json::Bool(true)) {
            return Err(format!(
                "overload: the {deadline_secs}s deadline never tripped: {}",
                tight.to_json()
            ));
        }
        if str_field(&tight, "fingerprint")? != deadline_fp
            || num_field(&tight, "tokens_billed")? != deadline_tokens
        {
            return Err("overload: deadline partials diverge from the one-shot \
                        run under the same deadline"
                .into());
        }
        let dead = submit_to(
            addr,
            &body("tight", "Restaurant", vec![("deadline_ms", Json::Num(0.0))]),
        )?;
        if str_field(&dead, "rejected")? != "deadline" {
            return Err(format!(
                "overload: a dead-on-arrival deadline was not shed: {}",
                dead.to_json()
            ));
        }
        lines.push(format!(
            "overload phase 3: {deadline_secs}s deadline tripped with deterministic \
             partials; 0s deadline shed at admission"
        ));

        submit_to(
            addr,
            &Json::Obj(vec![("op".to_string(), Json::Str("shutdown".to_string()))]),
        )?;
        server
            .join()
            .expect("overload daemon thread")
            .map_err(|e| format!("overload daemon exited uncleanly: {e}"))?;
        Ok(())
    });
    outcome?;
    if !audit.is_clean() {
        std::fs::remove_dir_all(&journal_dir).ok();
        return Err(format!(
            "overload drill failed the scheduler audit: {}",
            audit.violations().join("; ")
        ));
    }

    // ---- Phase 4: mid-flight drain with checkpoint, then resume.
    let drain_audit = Arc::new(AuditTracer::new());
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        JobScheduler::new(TenantLedger::new())
            .with_tracer(Arc::clone(&drain_audit) as Arc<dyn Tracer>),
        Arc::clone(&handler),
    )
    .map_err(|e| format!("cannot bind drain daemon: {e}"))?;
    let addr = daemon.local_addr();
    let outcome: Result<(usize, usize), String> = std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());
        let jobs: Vec<_> = [("ja", "drain-a"), ("jb", "drain-b")]
            .into_iter()
            .map(|(tenant, key)| {
                scope.spawn(move || {
                    submit_to(
                        addr,
                        &body(
                            tenant,
                            "Adult",
                            vec![("journal_key", Json::Str(key.to_string()))],
                        ),
                    )
                })
            })
            .collect();
        // Wait until both jobs hold slots, then drain mid-flight. The
        // drain and the during-drain shed share one connection so the
        // shed lands before the daemon can quiesce and close.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let ping = submit_to(
                addr,
                &Json::Obj(vec![("op".to_string(), Json::Str("ping".to_string()))]),
            )?;
            if ping.get("active_jobs") == Some(&Json::Num(2.0)) {
                break;
            }
            if Instant::now() > deadline {
                return Err("overload: journaled jobs never reached in-flight".into());
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut stream =
            TcpStream::connect(addr).map_err(|e| format!("overload connect failed: {e}"))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("overload clone failed: {e}"))?,
        );
        let drained = roundtrip(
            &mut stream,
            &mut reader,
            &Json::Obj(vec![("op".to_string(), Json::Str("drain".to_string()))]),
        )?;
        if drained.get("state") != Some(&Json::Str("draining".to_string())) {
            return Err(format!(
                "overload: drain op did not enter draining: {}",
                drained.to_json()
            ));
        }
        let refused = roundtrip(
            &mut stream,
            &mut reader,
            &body("late", "Restaurant", vec![]),
        )?;
        if str_field(&refused, "rejected")? != "draining" {
            return Err(format!(
                "overload: a submit during the drain was not shed as draining: {}",
                refused.to_json()
            ));
        }
        drop(reader);
        drop(stream);
        let mut checkpointed = 0usize;
        let mut partial_tokens = 0usize;
        for job in jobs {
            let reply = job.join().expect("drained client")?;
            if reply.get("ok") != Some(&Json::Bool(true)) {
                return Err(format!(
                    "overload: a drained job failed outright: {}",
                    reply.to_json()
                ));
            }
            if reply.get("killed") == Some(&Json::Bool(true)) {
                checkpointed += 1;
            }
            partial_tokens += num_field(&reply, "tokens_billed")?;
        }
        if checkpointed == 0 {
            return Err("overload: the drain checkpointed neither in-flight job".into());
        }
        // No shutdown op: a quiesced drain closes the daemon on its own.
        server
            .join()
            .expect("drain daemon thread")
            .map_err(|e| format!("drain daemon exited uncleanly: {e}"))?;
        Ok((checkpointed, partial_tokens))
    });
    let (checkpointed, partial_tokens) = match outcome {
        Ok(pair) => pair,
        Err(e) => {
            std::fs::remove_dir_all(&journal_dir).ok();
            return Err(e);
        }
    };
    if !drain_audit.is_clean() {
        std::fs::remove_dir_all(&journal_dir).ok();
        return Err(format!(
            "overload drill failed the drain audit: {}",
            drain_audit.violations().join("; ")
        ));
    }
    lines.push(format!(
        "overload phase 4: drain mid-flight checkpointed {checkpointed}/2 journaled job(s) \
         ({partial_tokens} partial tokens billed), shed a late submit as draining, \
         daemon closed itself once quiesced"
    ));

    // ---- Phase 5: resume the checkpointed journals at workers 1/2/4,
    // bit-identical and billed exactly once.
    let resume_audit = Arc::new(AuditTracer::new());
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        JobScheduler::new(TenantLedger::new())
            .with_tracer(Arc::clone(&resume_audit) as Arc<dyn Tracer>),
        Arc::clone(&handler),
    )
    .map_err(|e| format!("cannot bind resume daemon: {e}"))?;
    let addr = daemon.local_addr();
    let outcome: Result<usize, String> = std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.run());
        let mut resumes = 0usize;
        for (tenant, key) in [("ja", "drain-a"), ("jb", "drain-b")] {
            for workers in [1usize, 2, 4] {
                let resumed = submit_to(
                    addr,
                    &body(
                        tenant,
                        "Adult",
                        vec![
                            ("journal_key", Json::Str(key.to_string())),
                            ("workers", Json::Num(workers as f64)),
                        ],
                    ),
                )?;
                if str_field(&resumed, "journal")? != "resumed" {
                    return Err(format!(
                        "overload: {tenant}/{key} did not resume its journal at \
                         workers {workers}: {}",
                        resumed.to_json()
                    ));
                }
                if str_field(&resumed, "fingerprint")? != adult_fp {
                    return Err(format!(
                        "overload: {tenant}/{key} resumed at workers {workers} diverges \
                         from the uninterrupted run"
                    ));
                }
                if num_field(&resumed, "tokens_billed")? != adult_tokens {
                    return Err(format!(
                        "overload: {tenant}/{key} resumed at workers {workers} billed {} \
                         tokens, uninterrupted run billed {adult_tokens}",
                        num_field(&resumed, "tokens_billed")?
                    ));
                }
                resumes += 1;
            }
        }
        submit_to(
            addr,
            &Json::Obj(vec![("op".to_string(), Json::Str("shutdown".to_string()))]),
        )?;
        server
            .join()
            .expect("resume daemon thread")
            .map_err(|e| format!("resume daemon exited uncleanly: {e}"))?;
        Ok(resumes)
    });
    let resumes = match outcome {
        Ok(n) => n,
        Err(e) => {
            std::fs::remove_dir_all(&journal_dir).ok();
            return Err(e);
        }
    };
    if !resume_audit.is_clean() {
        std::fs::remove_dir_all(&journal_dir).ok();
        return Err(format!(
            "overload drill failed the resume audit: {}",
            resume_audit.violations().join("; ")
        ));
    }
    // Exactly-once at the journal level: no completed fingerprint appears
    // twice in either job's final journal.
    for (tenant, key) in [("ja", "drain-a"), ("jb", "drain-b")] {
        let path = journal_dir.join(format!("{tenant}-{key}.jsonl"));
        let finished = DurableJournal::resume(&path)
            .map_err(|e| format!("overload: cannot inspect {}: {e}", path.display()))?;
        let mut fingerprints: Vec<u64> = finished
            .entries
            .iter()
            .filter(|e| e.kind == TerminalKind::Completed)
            .map(|e| e.fingerprint)
            .collect();
        fingerprints.sort_unstable();
        if fingerprints.windows(2).any(|w| w[0] == w[1]) {
            std::fs::remove_dir_all(&journal_dir).ok();
            return Err(format!(
                "overload: {tenant}/{key} journaled a fingerprint twice"
            ));
        }
    }
    lines.push(format!(
        "overload phase 5: {resumes} resume(s) across workers 1/2/4 bit-identical to the \
         uninterrupted run, every journal fingerprint billed exactly once"
    ));
    std::fs::remove_dir_all(&journal_dir).ok();
    Ok(format!(
        "dprep chaos overload (seed {seed})\n{}\n",
        lines.join("\n")
    ))
}
