//! `dprep top` — a live per-tenant view of a running `dprep serve` daemon.
//!
//! Polls the daemon's `health` op and renders one table row per tenant:
//! windowed request/token rates, windowed error rate and p95 latency (all
//! over the sequential-account virtual clock), budget headroom, active
//! jobs, shed counts, and the current SLO alert states; the header shows
//! the daemon's drain state and overload-gate occupancy. `--once` prints a
//! single snapshot and exits (scripts and CI use this); without it the
//! table refreshes every `--interval` seconds until interrupted. A failed
//! poll (daemon restarting, drain window, transient network) retries with
//! capped exponential backoff up to `--retry` consecutive failures instead
//! of exiting on the first one. `--format json` emits the raw health reply
//! instead of the table.
//!
//! `--check on` runs the ops-plane determinism drill instead of
//! connecting anywhere: the same breach-inducing workload is executed at
//! several worker counts through the real job handler, and the resulting
//! alert timelines and windowed snapshots must be byte-identical — the
//! live ops plane observes, it never perturbs, and what it observes does
//! not depend on scheduling. CI gates on it.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

use dprep_core::serve::{roundtrip, JobScheduler};
use dprep_core::{ExecutionOptions, OpsPlane, TenantLedger};
use dprep_obs::export::event_to_json;
use dprep_obs::{Json, SloSpec, WindowConfig};

use super::serve::{dataset_handler, HandlerDefaults};
use crate::args::Flags;

/// Runs the command.
pub fn run(flags: &Flags) -> Result<(), String> {
    if flags.bool_or("check", false)? {
        return self_check(flags.seed()?);
    }
    let host = flags.get("host").unwrap_or("127.0.0.1");
    let port = flags.usize_or("port", 7077)? as u16;
    let once = flags.bool_or("once", false)?;
    let interval = flags.usize_or("interval", 2)?.max(1);
    let format = flags.get("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("--format must be text or json, got {format:?}"));
    }
    let retries = flags.usize_or("retry", 5)?;
    let mut failures = 0usize;
    loop {
        let health = match poll(host, port) {
            Ok(health) => {
                failures = 0;
                health
            }
            Err(e) => {
                failures += 1;
                if failures > retries {
                    return Err(format!("{e} ({failures} consecutive failures, giving up)"));
                }
                let delay = backoff_delay(failures);
                eprintln!(
                    "dprep top: {e}; retrying in {:.1}s ({failures}/{retries})",
                    delay.as_secs_f64()
                );
                std::thread::sleep(delay);
                continue;
            }
        };
        if format == "json" {
            println!("{}", health.to_json());
        } else {
            print!("{}", render(&health));
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval as u64));
    }
}

/// Reconnect backoff for the `attempt`th consecutive poll failure
/// (1-based): 500ms doubling per attempt, capped at 8s so a long outage
/// polls steadily instead of backing off forever.
fn backoff_delay(attempt: usize) -> std::time::Duration {
    let millis = 500u64.saturating_mul(1u64 << attempt.saturating_sub(1).min(4));
    std::time::Duration::from_millis(millis.min(8_000))
}

/// One `health` round trip against the daemon.
fn poll(host: &str, port: u16) -> Result<Json, String> {
    let mut stream = TcpStream::connect((host, port))
        .map_err(|e| format!("cannot connect to {host}:{port}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone failed: {e}"))?,
    );
    let reply = roundtrip(
        &mut stream,
        &mut reader,
        &Json::Obj(vec![("op".to_string(), Json::Str("health".to_string()))]),
    )?;
    if reply.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("health op failed: {}", reply.to_json()));
    }
    Ok(reply)
}

/// Renders one health reply as the per-tenant table.
fn render(health: &Json) -> String {
    let mut out = String::new();
    let active = health
        .get("active_jobs")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let tenants = match health.get("tenants") {
        Some(Json::Arr(rows)) => rows.as_slice(),
        _ => &[],
    };
    let state = health
        .get("state")
        .and_then(Json::as_str)
        .unwrap_or("serving");
    let queued = health.get("queued").and_then(Json::as_usize).unwrap_or(0);
    let shed = health
        .get("shed_jobs")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    out.push_str(&format!(
        "dprep top [{state}] — {} tenant(s), {} active job(s), {queued} queued, {shed} shed\n",
        tenants.len(),
        active
    ));
    if tenants.is_empty() {
        out.push_str("(no tenants yet — submit a job first)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<14} {:>8} {:>9} {:>6} {:>8} {:>9} {:>7} {:>6}  {}\n",
        "TENANT", "REQ/S", "TOK/S", "ERR%", "P95(S)", "HEADROOM", "ACTIVE", "SHED", "ALERTS"
    ));
    for row in tenants {
        let tenant = row.get("tenant").and_then(Json::as_str).unwrap_or("?");
        let num = |outer: &Json, key: &str| outer.get(key).and_then(Json::as_f64);
        let window = row.get("window");
        let wnum = |key: &str| window.and_then(|w| num(w, key));
        let headroom = match num(row, "headroom") {
            Some(f) => format!("{:.0}%", f * 100.0),
            None => "-".to_string(),
        };
        let alerts = match row.get("slos") {
            Some(Json::Arr(slos)) if !slos.is_empty() => slos
                .iter()
                .map(|s| {
                    format!(
                        "{}:{}",
                        s.get("slo").and_then(Json::as_str).unwrap_or("?"),
                        s.get("state").and_then(Json::as_str).unwrap_or("?")
                    )
                })
                .collect::<Vec<_>>()
                .join(" "),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<14} {:>8.2} {:>9.1} {:>6.1} {:>8.2} {:>9} {:>7} {:>6}  {}\n",
            tenant,
            wnum("requests_per_sec").unwrap_or(0.0),
            wnum("tokens_per_sec").unwrap_or(0.0),
            wnum("error_rate").unwrap_or(0.0) * 100.0,
            wnum("latency_p95_secs").unwrap_or(0.0),
            headroom,
            row.get("jobs_active").and_then(Json::as_usize).unwrap_or(0),
            row.get("jobs_shed").and_then(Json::as_usize).unwrap_or(0),
            alerts
        ));
    }
    out
}

/// The ops-plane determinism drill behind `--check on` (CI gates on it).
///
/// Runs one breach-inducing workload (a latency-spike scenario against a
/// tight latency-p95 objective) through the real dataset handler at worker
/// counts 1, 2, and 4, each time through a fresh [`OpsPlane`], and asserts
/// the serialized alert timelines and windowed snapshots are byte-identical
/// across all three — and that the timeline actually pages, so the drill
/// cannot pass vacuously.
fn self_check(seed: u64) -> Result<(), String> {
    let fingerprint = |workers: usize| -> Result<(String, String), String> {
        let plane = Arc::new(OpsPlane::new(
            SloSpec::parse_list("latency-p95=0.5,failure-rate=0.05")?,
            WindowConfig::default(),
        ));
        let defaults = HandlerDefaults {
            seed,
            ..HandlerDefaults::default()
        };
        let handler = dataset_handler(defaults, Some(Arc::clone(&plane)));
        let scheduler = JobScheduler::new(TenantLedger::new());
        let body = Json::Obj(vec![
            ("op".to_string(), Json::Str("submit".to_string())),
            ("tenant".to_string(), Json::Str("acme".to_string())),
            ("dataset".to_string(), Json::Str("Restaurant".to_string())),
            ("scale".to_string(), Json::Num(0.5)),
            (
                "scenario".to_string(),
                Json::Str("latency-spikes".to_string()),
            ),
            ("plan_shard_size".to_string(), Json::Num(2.0)),
        ]);
        let options = ExecutionOptions {
            workers,
            ..ExecutionOptions::default()
        };
        scheduler
            .run_job("acme", options, |grant| handler(&body, grant))
            .map_err(|e| e.to_string())?;
        let timeline: String = plane
            .timelines()
            .values()
            .flat_map(|events| events.iter().map(event_to_json))
            .map(|line| line + "\n")
            .collect();
        let windows: String = plane
            .health()
            .iter()
            .map(|h| h.window.to_json().to_json() + "\n")
            .collect();
        Ok((timeline, windows))
    };

    let (timeline_1, windows_1) = fingerprint(1)?;
    if !timeline_1.contains("\"to\":\"paging\"") {
        return Err(format!(
            "top self-check: the breach workload never paged — the drill would be vacuous\n\
             timeline:\n{timeline_1}"
        ));
    }
    for workers in [2usize, 4] {
        let (timeline_n, windows_n) = fingerprint(workers)?;
        if timeline_n != timeline_1 {
            return Err(format!(
                "top self-check: alert timeline diverges between 1 and {workers} worker(s)\n\
                 --- 1 worker ---\n{timeline_1}--- {workers} workers ---\n{timeline_n}"
            ));
        }
        if windows_n != windows_1 {
            return Err(format!(
                "top self-check: windowed snapshot diverges between 1 and {workers} worker(s)\n\
                 --- 1 worker ---\n{windows_1}--- {workers} workers ---\n{windows_n}"
            ));
        }
    }
    let transitions = timeline_1.lines().count();
    println!(
        "top self-check passed: {transitions} alert transition(s) and windowed snapshots \
         bit-identical across 1/2/4 workers, paging reached"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_tenants_and_handles_missing_fields() {
        let health = Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("active_jobs".to_string(), Json::Num(1.0)),
            (
                "tenants".to_string(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("tenant".to_string(), Json::Str("acme".to_string())),
                        ("headroom".to_string(), Json::Num(0.4)),
                        ("jobs_active".to_string(), Json::Num(1.0)),
                        (
                            "window".to_string(),
                            Json::Obj(vec![
                                ("requests_per_sec".to_string(), Json::Num(0.5)),
                                ("tokens_per_sec".to_string(), Json::Num(42.0)),
                                ("error_rate".to_string(), Json::Num(0.25)),
                                ("latency_p95_secs".to_string(), Json::Num(3.0)),
                            ]),
                        ),
                        (
                            "slos".to_string(),
                            Json::Arr(vec![Json::Obj(vec![
                                ("slo".to_string(), Json::Str("latency-p95".to_string())),
                                ("state".to_string(), Json::Str("paging".to_string())),
                            ])]),
                        ),
                    ]),
                    // A ledger-only tenant: no window, no slos, no budget.
                    Json::Obj(vec![(
                        "tenant".to_string(),
                        Json::Str("ledger-only".to_string()),
                    )]),
                ]),
            ),
        ]);
        let table = render(&health);
        assert!(table.contains("2 tenant(s), 1 active job(s)"), "{table}");
        assert!(table.contains("latency-p95:paging"), "{table}");
        assert!(table.contains("40%"), "{table}");
        let ledger_line = table
            .lines()
            .find(|l| l.starts_with("ledger-only"))
            .expect("ledger-only row");
        assert!(ledger_line.contains('-'), "{ledger_line}");
    }

    #[test]
    fn backoff_doubles_and_caps_at_eight_seconds() {
        assert_eq!(backoff_delay(1).as_millis(), 500);
        assert_eq!(backoff_delay(2).as_millis(), 1000);
        assert_eq!(backoff_delay(3).as_millis(), 2000);
        assert_eq!(backoff_delay(5).as_millis(), 8000);
        assert_eq!(backoff_delay(50).as_millis(), 8000, "capped, no overflow");
    }

    #[test]
    fn render_shows_drain_state_and_shed_counts() {
        let health = Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("active_jobs".to_string(), Json::Num(1.0)),
            ("state".to_string(), Json::Str("draining".to_string())),
            ("queued".to_string(), Json::Num(3.0)),
            ("shed_jobs".to_string(), Json::Num(7.0)),
            (
                "tenants".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    ("tenant".to_string(), Json::Str("acme".to_string())),
                    ("jobs_shed".to_string(), Json::Num(7.0)),
                ])]),
            ),
        ]);
        let table = render(&health);
        assert!(table.contains("[draining]"), "{table}");
        assert!(table.contains("3 queued, 7 shed"), "{table}");
        assert!(table.contains("SHED"), "{table}");
        let row = table.lines().find(|l| l.starts_with("acme")).unwrap();
        assert!(row.contains('7'), "{row}");
    }

    #[test]
    fn render_explains_an_empty_daemon() {
        let health = Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("active_jobs".to_string(), Json::Num(0.0)),
            ("tenants".to_string(), Json::Arr(vec![])),
        ]);
        assert!(render(&health).contains("no tenants yet"));
    }
}
