//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed flags: every `--name value` pair.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of a required flag, or a readable error.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Parses a u64 flag with a default.
    pub fn seed(&self) -> Result<u64, String> {
        match self.get("seed") {
            None => Ok(0),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--seed must be an integer, got {raw:?}")),
        }
    }

    /// Parses a usize flag with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name} must be a non-negative integer, got {raw:?}")),
        }
    }

    /// Parses a finite non-negative f64 flag (seconds, scales) with a
    /// default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => match raw.parse::<f64>() {
                Ok(value) if value.is_finite() && value >= 0.0 => Ok(value),
                _ => Err(format!(
                    "--{name} must be a non-negative number, got {raw:?}"
                )),
            },
        }
    }

    /// Parses an on/off flag (`true`/`false`/`on`/`off`/`1`/`0`) with a
    /// default.
    pub fn bool_or(&self, name: &str, default: bool) -> Result<bool, String> {
        match self.get(name) {
            None => Ok(default),
            Some("true") | Some("on") | Some("1") => Ok(true),
            Some("false") | Some("off") | Some("0") => Ok(false),
            Some(raw) => Err(format!("--{name} must be on or off, got {raw:?}")),
        }
    }

    /// Inserts a flag value (used by tests).
    #[cfg(test)]
    pub fn set(&mut self, name: &str, value: &str) {
        self.values.insert(name.to_string(), value.to_string());
    }
}

/// Parses `--name value` pairs; rejects dangling or unnamed arguments.
pub fn parse_flags(argv: &[String]) -> Result<Flags, String> {
    let mut values = HashMap::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let name = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {arg:?}"))?;
        if name.is_empty() {
            return Err("empty flag name".into());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} is missing its value"))?;
        if values.insert(name.to_string(), value.clone()).is_some() {
            return Err(format!("flag --{name} given twice"));
        }
    }
    Ok(Flags { values })
}

/// Resolves a model-name flag to a profile (default: sim-gpt-4).
pub fn model_profile(flags: &Flags) -> Result<dprep_llm::ModelProfile, String> {
    let name = flags.get("model").unwrap_or("sim-gpt-4");
    dprep_llm::ModelProfile::all_presets()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| format!("unknown model {name:?} (see dprep help)"))
}

/// Parses the cascade flags: `--route a,b[,c…]` (model profile names,
/// cheapest first) and `--escalate-on CLASSES` (stored canonical, so two
/// spellings of one policy share a journal identity). Returns empty routes
/// for a single-model run. At least two distinct, known models are
/// required — a one-model cascade is just `--model`.
pub fn route_spec(flags: &Flags) -> Result<(Vec<String>, Option<String>), String> {
    let routes: Vec<String> = match flags.get("route") {
        None => Vec::new(),
        Some(spec) => {
            let names: Vec<String> = spec
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if names.len() < 2 {
                return Err(
                    "--route needs at least two comma-separated models, cheapest first \
                     (a single model is just --model)"
                        .into(),
                );
            }
            for (i, name) in names.iter().enumerate() {
                if dprep_llm::ModelProfile::by_name(name).is_none() {
                    return Err(format!("unknown route model {name:?} (see dprep help)"));
                }
                if names[..i].contains(name) {
                    return Err(format!("route model {name:?} appears twice in --route"));
                }
            }
            names
        }
    };
    let escalate_on = match flags.get("escalate-on") {
        None => None,
        Some(spec) => {
            if routes.is_empty() {
                return Err("--escalate-on needs --route".into());
            }
            let policy = dprep_llm::EscalationPolicy::parse(spec)
                .map_err(|e| format!("--escalate-on: {e}"))?;
            Some(policy.canonical())
        }
    };
    Ok((routes, escalate_on))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let flags = parse_flags(&argv(&["--input", "a.csv", "--seed", "7"])).unwrap();
        assert_eq!(flags.get("input"), Some("a.csv"));
        assert_eq!(flags.seed().unwrap(), 7);
        assert_eq!(flags.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_args() {
        assert!(parse_flags(&argv(&["input"])).is_err());
        assert!(parse_flags(&argv(&["--input"])).is_err());
        assert!(parse_flags(&argv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let flags = parse_flags(&[]).unwrap();
        let err = flags.require("input").unwrap_err();
        assert!(err.contains("--input"));
    }

    #[test]
    fn model_lookup() {
        let mut flags = Flags::default();
        assert_eq!(model_profile(&flags).unwrap().name, "sim-gpt-4");
        flags.set("model", "sim-gpt-3.5");
        assert_eq!(model_profile(&flags).unwrap().name, "sim-gpt-3.5");
        flags.set("model", "gpt-9");
        assert!(model_profile(&flags).is_err());
    }

    #[test]
    fn route_spec_validates_the_cascade() {
        let mut flags = Flags::default();
        assert_eq!(route_spec(&flags).unwrap(), (Vec::new(), None));

        flags.set("route", "sim-gpt-3.5,sim-gpt-4");
        let (routes, policy) = route_spec(&flags).unwrap();
        assert_eq!(routes, vec!["sim-gpt-3.5", "sim-gpt-4"]);
        assert_eq!(policy, None);

        flags.set("escalate-on", "partial, fault");
        let (_, policy) = route_spec(&flags).unwrap();
        assert_eq!(policy.as_deref(), Some("fault,partial"), "canonical order");

        for bad in ["sim-gpt-4", "sim-gpt-4,gpt-9", "sim-gpt-4,sim-gpt-4"] {
            flags.set("route", bad);
            assert!(route_spec(&flags).is_err(), "{bad}");
        }
    }

    #[test]
    fn escalate_on_needs_a_route() {
        let mut flags = Flags::default();
        flags.set("escalate-on", "fault");
        assert!(route_spec(&flags).unwrap_err().contains("--route"));
    }

    #[test]
    fn bad_seed_is_an_error() {
        let mut flags = Flags::default();
        flags.set("seed", "xyz");
        assert!(flags.seed().is_err());
    }

    #[test]
    fn usize_flag_defaults_and_parses() {
        let mut flags = Flags::default();
        assert_eq!(flags.usize_or("workers", 1).unwrap(), 1);
        flags.set("workers", "8");
        assert_eq!(flags.usize_or("workers", 1).unwrap(), 8);
        flags.set("workers", "-2");
        assert!(flags.usize_or("workers", 1).is_err());
    }

    #[test]
    fn f64_flag_defaults_and_rejects_junk() {
        let mut flags = Flags::default();
        assert_eq!(flags.f64_or("deadline", 30.0).unwrap(), 30.0);
        flags.set("deadline", "2.5");
        assert_eq!(flags.f64_or("deadline", 30.0).unwrap(), 2.5);
        for bad in ["-1", "NaN", "inf", "soon"] {
            flags.set("deadline", bad);
            assert!(flags.f64_or("deadline", 30.0).is_err(), "{bad}");
        }
    }

    #[test]
    fn bool_flag_accepts_on_off_forms() {
        let mut flags = Flags::default();
        assert!(!flags.bool_or("cache", false).unwrap());
        for (raw, expect) in [("on", true), ("off", false), ("true", true), ("0", false)] {
            flags.set("cache", raw);
            assert_eq!(flags.bool_or("cache", false).unwrap(), expect, "{raw}");
        }
        flags.set("cache", "maybe");
        assert!(flags.bool_or("cache", false).is_err());
    }
}
