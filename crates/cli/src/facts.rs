//! Parsing the tab-separated world-facts file into a [`KnowledgeBase`].

use dprep_llm::{Fact, KnowledgeBase};

/// Parses facts text (one tab-separated fact per line; `#` comments and
/// blank lines ignored).
pub fn parse_facts(text: &str) -> Result<KnowledgeBase, String> {
    let mut kb = KnowledgeBase::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let err = |msg: &str| format!("facts line {}: {msg}: {line:?}", lineno + 1);
        let fact = match fields.as_slice() {
            ["lexicon", domain, value] => Fact::LexiconMember {
                domain: domain.to_string(),
                value: value.to_lowercase(),
            },
            ["range", attribute, min, max] => Fact::NumericRange {
                attribute: attribute.to_string(),
                min: min.parse().map_err(|_| err("bad min"))?,
                max: max.parse().map_err(|_| err("bad max"))?,
            },
            ["areacode", prefix, city] => Fact::AreaCode {
                prefix: prefix.to_string(),
                city: city.to_lowercase(),
            },
            ["cue", attribute, token, value] => Fact::Cue {
                attribute: attribute.to_string(),
                token: token.to_lowercase(),
                value: value.to_lowercase(),
            },
            ["brand", token, manufacturer] => Fact::Brand {
                token: token.to_lowercase(),
                manufacturer: manufacturer.to_lowercase(),
            },
            ["synonym", a, b] => Fact::AttrSynonym {
                a: a.to_lowercase(),
                b: b.to_lowercase(),
            },
            ["alias", canonical, variant] => Fact::Alias {
                canonical: canonical.to_lowercase(),
                variant: variant.to_lowercase(),
            },
            [kind, ..] => return Err(err(&format!("unknown fact kind {kind:?}"))),
            [] => continue,
        };
        kb.add(fact);
    }
    Ok(kb)
}

/// Loads the knowledge base named by `--facts`, or an empty one.
pub fn load(flags: &crate::args::Flags) -> Result<KnowledgeBase, String> {
    match flags.get("facts") {
        None => Ok(KnowledgeBase::new()),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read facts file {path:?}: {e}"))?;
            parse_facts(&text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_llm::knowledge::Memorizer;

    #[test]
    fn parses_every_fact_kind() {
        let text = "# comment\n\
                    lexicon\tcity\tAtlanta\n\
                    range\tage\t0\t110\n\
                    areacode\t770\tMarietta\n\
                    cue\tcity\tpowers ferry\tmarietta\n\
                    brand\tthinkpad\tLenovo\n\
                    synonym\tzip\tpostal code\n\
                    alias\tindia pale ale\tipa\n\
                    \n";
        let kb = parse_facts(text).unwrap();
        assert_eq!(kb.len(), 7);
        let mem = Memorizer {
            model_name: "t".into(),
            coverage: 1.0,
            seed: 0,
        };
        assert_eq!(kb.city_for_area_code(&mem, "770"), Some("marietta"));
        assert_eq!(kb.numeric_range(&mem, "age"), Some((0.0, 110.0)));
        assert!(kb.are_synonyms(&mem, "zip", "postal code"));
    }

    #[test]
    fn reports_bad_lines_with_numbers() {
        let err = parse_facts("lexicon\tcity\ta\nwhatever\tx\ty\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_facts("range\tage\tlow\thigh\n").unwrap_err();
        assert!(err.contains("bad min"), "{err}");
    }
}
