//! Table 2 — prompt-component ablation with GPT-3.5.
//!
//! Six component sets (ZS-T, +B, +B+ZS-R, +FS, +FS+B, +FS+B+ZS-R) over the
//! same 12 datasets, all with the simulated GPT-3.5 — the paper picks it as
//! the cost-effective model worth tuning.

use dprep_core::{ComponentSet, PipelineConfig};
use dprep_llm::ModelProfile;

use crate::experiments::{table1::DATASETS, ExperimentConfig};
use crate::harness::run_llm_on_dataset;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Component-set label (e.g. `ZS-T+FS+B`).
    pub components: String,
    /// Scores per dataset (None = N/A).
    pub cells: Vec<Option<f64>>,
}

/// The full ablation table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in the paper's order.
    pub rows: Vec<Row>,
}

/// Runs the ablation.
pub fn run(cfg: &ExperimentConfig) -> Table2 {
    let profile = ModelProfile::gpt35();
    let mut rows = Vec::new();
    for (label, components) in ComponentSet::table2_rows() {
        let mut cells = Vec::with_capacity(DATASETS.len());
        for name in DATASETS {
            let dataset =
                dprep_datasets::dataset_by_name(name, cfg.scale, cfg.seed).expect("known dataset");
            let config = ablation_config(&dataset, components);
            let scored = run_llm_on_dataset(&profile, &dataset, &config, cfg.seed);
            cells.push(scored.value);
        }
        rows.push(Row {
            components: label.to_string(),
            cells,
        });
    }
    Table2 { rows }
}

/// The pipeline configuration for one ablation row on one dataset: no
/// feature selection (that is studied separately), GPT-3.5's batch size.
pub fn ablation_config(
    dataset: &dprep_datasets::Dataset,
    components: ComponentSet,
) -> PipelineConfig {
    let mut config = PipelineConfig::ablation(dataset.task, components, 15);
    config.type_hint = dataset.type_hint.clone();
    config
}

impl Table2 {
    /// Rendering-ready rows.
    pub fn to_rows(&self) -> Vec<(String, Vec<String>)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.components.clone(),
                    r.cells.iter().map(|c| crate::report::cell(*c)).collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shape() {
        let table = run(&ExperimentConfig::smoke());
        assert_eq!(table.rows.len(), 6);
        assert_eq!(table.rows[0].components, "ZS-T");
        assert_eq!(table.rows[5].components, "ZS-T+FS+B+ZS-R");
        for row in &table.rows {
            assert_eq!(row.cells.len(), 12);
        }
    }
}
