//! §4.2 in-text — feature selection on Beer with GPT-4.
//!
//! The paper: "for entity matching on the Beer dataset without few-shot
//! prompting, the F1 scores before and after feature selection are 74.1%
//! and 90.3%". Beer's `notes` attribute is uncorrelated tasting text;
//! selecting the informative attributes (name, brewery, style, ABV) removes
//! its drag on the match score.

use dprep_core::{ComponentSet, PipelineConfig};
use dprep_llm::ModelProfile;
use dprep_prompt::Task;

use crate::experiments::ExperimentConfig;
use crate::harness::{default_batch_size, run_llm_on_dataset};

/// Before/after scores.
#[derive(Debug, Clone)]
pub struct FeatureSelection {
    /// F1 with all attributes.
    pub before: Option<f64>,
    /// F1 with the informative subset.
    pub after: Option<f64>,
}

/// Runs the comparison.
pub fn run(cfg: &ExperimentConfig) -> FeatureSelection {
    let profile = ModelProfile::gpt4();
    let dataset =
        dprep_datasets::dataset_by_name("Beer", cfg.scale, cfg.seed).expect("known dataset");
    // "Without few-shot prompting" (the paper's wording); reasoning stays
    // on as in the best setting.
    let components = ComponentSet {
        few_shot: false,
        batching: true,
        reasoning: true,
    };
    let mut base = PipelineConfig::ablation(Task::EntityMatching, components, 0);
    base.batch_size = default_batch_size(&profile);

    let before = run_llm_on_dataset(&profile, &dataset, &base, cfg.seed).value;
    let mut selected = base.clone();
    selected.feature_indices = dataset.informative_features.clone();
    let after = run_llm_on_dataset(&profile, &dataset, &selected, cfg.seed).value;

    FeatureSelection { before, after }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_helps_on_beer() {
        let cfg = ExperimentConfig {
            scale: 1.0,
            seed: 0xd472,
        };
        let result = run(&cfg);
        let before = result.before.expect("GPT-4 parses reliably");
        let after = result.after.expect("GPT-4 parses reliably");
        assert!(
            after > before,
            "feature selection should help: before {before:.1}, after {after:.1}"
        );
    }
}
