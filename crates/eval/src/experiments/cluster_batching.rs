//! §4.2 in-text — random vs cluster batching on Amazon-Google with GPT-3.5.
//!
//! The paper: "for entity matching on the Amazon-Google dataset without
//! few-shot prompting, F1 scores increase from 45.8% to 50.6% when
//! switching from random to cluster batching". Homogeneous batches let the
//! model answer consistently, which the simulator reproduces as a
//! batch-homogeneity noise reduction.

use dprep_core::{ComponentSet, PipelineConfig};
use dprep_llm::ModelProfile;
use dprep_prompt::Task;

use crate::experiments::ExperimentConfig;
use crate::harness::run_llm_on_dataset;

/// Random vs cluster scores.
#[derive(Debug, Clone)]
pub struct ClusterBatching {
    /// F1 under random batching.
    pub random: Option<f64>,
    /// F1 under cluster batching.
    pub cluster: Option<f64>,
}

/// Runs the comparison.
pub fn run(cfg: &ExperimentConfig) -> ClusterBatching {
    let profile = ModelProfile::gpt35();
    let dataset = dprep_datasets::dataset_by_name("Amazon-Google", cfg.scale, cfg.seed)
        .expect("known dataset");
    let components = ComponentSet {
        few_shot: false,
        batching: true,
        reasoning: true,
    };
    let mut base = PipelineConfig::ablation(Task::EntityMatching, components, 15);
    // Roughly one cluster per batch keeps clusters genuinely homogeneous.
    base.clusters = (dataset.len() / 15).max(2);

    let random = run_llm_on_dataset(&profile, &dataset, &base, cfg.seed).value;
    let mut clustered = base.clone();
    clustered.cluster_batching = true;
    let cluster = run_llm_on_dataset(&profile, &dataset, &clustered, cfg.seed).value;

    ClusterBatching { random, cluster }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_batching_does_not_hurt() {
        // Average the effect over a few seeds: individual draws fluctuate
        // by a few points, the mean gain is solidly positive.
        let mut gain = 0.0;
        for seed in [1u64, 2, 3] {
            let cfg = ExperimentConfig { scale: 0.3, seed };
            let result = run(&cfg);
            let random = result.random.expect("GPT-3.5 parses reliably");
            let cluster = result.cluster.expect("GPT-3.5 parses reliably");
            gain += cluster - random;
        }
        assert!(
            gain / 3.0 > 0.0,
            "cluster batching should help on average, mean gain {:.1}",
            gain / 3.0
        );
    }
}
