//! Extension ablation: sampling-temperature sensitivity.
//!
//! The paper fixes temperatures (0.75 / 0.65 / 0.2) without justifying
//! them. This sweep measures GPT-3.5's best-setting quality across
//! temperatures on one dataset per task, showing the gentle degradation
//! that makes the exact setting uncritical.

use dprep_core::PipelineConfig;
use dprep_llm::ModelProfile;

use crate::experiments::ExperimentConfig;
use crate::harness::{default_batch_size, run_llm_on_dataset};

/// Temperatures swept.
pub const TEMPERATURES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One dataset's scores across the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// One score per temperature in [`TEMPERATURES`] order.
    pub scores: Vec<Option<f64>>,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct TemperatureSweep {
    /// One row per dataset.
    pub rows: Vec<Row>,
}

/// Runs the sweep with GPT-3.5.
pub fn run(cfg: &ExperimentConfig) -> TemperatureSweep {
    let profile = ModelProfile::gpt35();
    let mut rows = Vec::new();
    for name in ["Adult", "Restaurant", "Synthea", "Beer"] {
        let dataset =
            dprep_datasets::dataset_by_name(name, cfg.scale, cfg.seed).expect("known dataset");
        let mut scores = Vec::with_capacity(TEMPERATURES.len());
        for temperature in TEMPERATURES {
            let mut config = PipelineConfig::best(dataset.task);
            config.batch_size = default_batch_size(&profile);
            config.feature_indices = dataset.informative_features.clone();
            config.temperature = Some(temperature);
            scores.push(run_llm_on_dataset(&profile, &dataset, &config, cfg.seed).value);
        }
        rows.push(Row {
            dataset: match name {
                "Adult" => "Adult (ED)",
                "Restaurant" => "Restaurant (DI)",
                "Synthea" => "Synthea (SM)",
                _ => "Beer (EM)",
            },
            scores,
        });
    }
    TemperatureSweep { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_temperature_is_not_worse_on_average() {
        let result = run(&ExperimentConfig {
            scale: 0.3,
            seed: 0xd472,
        });
        assert_eq!(result.rows.len(), 4);
        let mean_at = |idx: usize| {
            let vals: Vec<f64> = result.rows.iter().filter_map(|r| r.scores[idx]).collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let cold = mean_at(0);
        let hot = mean_at(TEMPERATURES.len() - 1);
        assert!(
            cold >= hot - 6.0,
            "temperature 0 should not trail temperature 1 badly: {cold:.1} vs {hot:.1}"
        );
    }
}
