//! Extension ablation: the ED "confirm the target attribute" safeguard.
//!
//! §3.1 motivates the instruction — without it the model may flag an error
//! in a *different* attribute of the record — but the paper never measures
//! it. This experiment does: Adult error detection with the best setting,
//! safeguard on vs off, for each chat model.

use dprep_core::PipelineConfig;
use dprep_llm::ModelProfile;

use crate::experiments::ExperimentConfig;
use crate::harness::{default_batch_size, run_llm_on_dataset};

/// One model's scores with and without the safeguard.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// F1 with the confirmation instruction.
    pub with_confirm: Option<f64>,
    /// F1 without it.
    pub without_confirm: Option<f64>,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct ConfirmAblation {
    /// One row per model.
    pub rows: Vec<Row>,
}

/// Runs the ablation on Adult/ED.
pub fn run(cfg: &ExperimentConfig) -> ConfirmAblation {
    let dataset =
        dprep_datasets::dataset_by_name("Adult", cfg.scale, cfg.seed).expect("known dataset");
    let mut rows = Vec::new();
    for profile in ModelProfile::all_presets() {
        let mut base = PipelineConfig::best(dataset.task);
        base.batch_size = default_batch_size(&profile);
        let with_confirm = run_llm_on_dataset(&profile, &dataset, &base, cfg.seed).value;
        let mut without = base.clone();
        without.confirm_target = false;
        let without_confirm = run_llm_on_dataset(&profile, &dataset, &without, cfg.seed).value;
        rows.push(Row {
            model: profile.name.clone(),
            with_confirm,
            without_confirm,
        });
    }
    ConfirmAblation { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safeguard_helps_every_parsing_model() {
        let result = run(&ExperimentConfig {
            scale: 0.15,
            seed: 0xd472,
        });
        assert_eq!(result.rows.len(), 4);
        let mut checked = 0;
        for row in &result.rows {
            if let (Some(with), Some(without)) = (row.with_confirm, row.without_confirm) {
                assert!(
                    with >= without - 3.0,
                    "{}: with {with:.1} vs without {without:.1}",
                    row.model
                );
                checked += 1;
            }
        }
        assert!(checked >= 2, "at least the GPT models should score");
    }
}
