//! Table 3 — batch-size evaluation on Adult/ED with GPT-3.5.
//!
//! The paper's efficiency study: batch sizes {1, 2, 4, 8, 15}, no few-shot
//! prompting (reasoning on), measuring F1 alongside total tokens (M),
//! dollar cost, and virtual hours. The economics emerge arithmetically:
//! the ~250-token instruction is paid once per request, so batching
//! amortizes it, while per-instance record and completion tokens are
//! irreducible.

use dprep_core::{ComponentSet, PipelineConfig};
use dprep_llm::ModelProfile;
use dprep_obs::MetricsSnapshot;
use dprep_prompt::Task;

use crate::experiments::ExperimentConfig;
use crate::harness::run_llm_on_dataset;

/// The paper's batch sizes.
pub const BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 15];

/// One batch-size row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Batch size.
    pub batch_size: usize,
    /// F1 (%), None = N/A.
    pub f1: Option<f64>,
    /// Total tokens in millions.
    pub tokens_millions: f64,
    /// Dollar cost.
    pub cost_usd: f64,
    /// Virtual hours.
    pub hours: f64,
    /// Serving metrics of the run (request counts, retries, latency).
    pub metrics: MetricsSnapshot,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One row per batch size.
    pub rows: Vec<Row>,
}

/// Runs the sweep.
pub fn run(cfg: &ExperimentConfig) -> Table3 {
    let profile = ModelProfile::gpt35();
    let dataset =
        dprep_datasets::dataset_by_name("Adult", cfg.scale, cfg.seed).expect("known dataset");
    let mut rows = Vec::new();
    for batch_size in BATCH_SIZES {
        let components = ComponentSet {
            few_shot: false,
            batching: batch_size > 1,
            reasoning: true,
        };
        let mut config = PipelineConfig::ablation(Task::ErrorDetection, components, batch_size);
        config.confirm_target = true;
        let scored = run_llm_on_dataset(&profile, &dataset, &config, cfg.seed);
        rows.push(Row {
            batch_size,
            f1: scored.value,
            tokens_millions: scored.usage.tokens_millions(),
            cost_usd: scored.usage.cost_usd,
            hours: scored.usage.hours(),
            metrics: scored.metrics,
        });
    }
    Table3 { rows }
}

impl Table3 {
    /// Rendering-ready rows.
    pub fn to_rows(&self) -> Vec<(String, Vec<String>)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    format!("{}", r.batch_size),
                    vec![
                        crate::report::cell(r.f1),
                        format!("{:.2}", r.tokens_millions),
                        format!("{:.2}", r.cost_usd),
                        format!("{:.2}", r.hours),
                    ],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_cost_time_decrease_with_batch_size() {
        let table = run(&ExperimentConfig::smoke());
        assert_eq!(table.rows.len(), 5);
        // Monotone decreasing economics.
        for pair in table.rows.windows(2) {
            assert!(
                pair[1].tokens_millions < pair[0].tokens_millions,
                "tokens should shrink with batching: {:?}",
                table
                    .rows
                    .iter()
                    .map(|r| r.tokens_millions)
                    .collect::<Vec<_>>()
            );
            assert!(pair[1].cost_usd < pair[0].cost_usd);
            assert!(pair[1].hours < pair[0].hours);
        }
        // Quality stays in a narrow band.
        let f1s: Vec<f64> = table.rows.iter().filter_map(|r| r.f1).collect();
        assert_eq!(f1s.len(), 5);
        let min = f1s.iter().copied().fold(f64::INFINITY, f64::min);
        let max = f1s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min < 30.0, "f1 range too wide: {f1s:?}");
    }
}
