//! One module per paper artifact.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — comparison with baselines on 12 datasets |
//! | [`table2`] | Table 2 — prompt-component ablation (GPT-3.5) |
//! | [`table3`] | Table 3 — batch-size sweep on Adult/ED (F1, tokens, cost, time) |
//! | [`feature_selection`] | §4.2 in-text — feature selection on Beer (GPT-4) |
//! | [`cluster_batching`] | §4.2 in-text — random vs cluster batching on Amazon-Google (GPT-3.5) |
//! | [`ablation_confirm`] | extension — the ED target-confirmation safeguard (§3.1, unmeasured in the paper) |
//! | [`ablation_temperature`] | extension — temperature sensitivity of the best setting |
//! | [`blocking_quality`] | extension — the EM blocking stage (§2.1): completeness vs reduction |
//!
//! Each `run` function takes an [`ExperimentConfig`]; `scale = 1.0`
//! reproduces the paper's instance counts, smaller scales give quick
//! approximations for tests and smoke runs.

pub mod ablation_confirm;
pub mod ablation_temperature;
pub mod blocking_quality;
pub mod cluster_batching;
pub mod feature_selection;
pub mod table1;
pub mod table2;
pub mod table3;

use dprep_datasets::Dataset;

/// Shared experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Dataset scale (1.0 = the paper's instance counts).
    pub scale: f64,
    /// Master seed for generation and simulation.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 1.0,
            seed: 0xd472,
        }
    }
}

impl ExperimentConfig {
    /// A reduced-scale configuration for tests.
    pub fn smoke() -> Self {
        ExperimentConfig {
            scale: 0.05,
            seed: 0xd472,
        }
    }
}

/// Generates the training split for a dataset: same generator, disjoint
/// seed. Small benchmarks (under 300 test instances) get a 4× larger
/// training pool, mirroring how the original benchmarks' train splits
/// dwarf their test splits.
/// Public alias of the internal train-split helper, for integration
/// tests and examples.
pub fn train_split_public(name: &str, cfg: &ExperimentConfig) -> Option<Dataset> {
    train_split(name, cfg)
}

pub(crate) fn train_split(name: &str, cfg: &ExperimentConfig) -> Option<Dataset> {
    let test = dprep_datasets::dataset_by_name(name, cfg.scale, cfg.seed)?;
    let train_scale = if test.len() < 100 {
        // The original Buy/Restaurant/Beer train splits are ~9x their
        // test splits.
        cfg.scale * 9.0
    } else if test.len() < 300 {
        cfg.scale * 4.0
    } else {
        cfg.scale
    };
    dprep_datasets::dataset_by_name(name, train_scale, cfg.seed ^ 0x7e57_7ea1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_split_is_disjoint_seeded() {
        let cfg = ExperimentConfig::smoke();
        let train = train_split("beer", &cfg).unwrap();
        let test = dprep_datasets::dataset_by_name("beer", cfg.scale, cfg.seed).unwrap();
        assert_ne!(train.instances, test.instances);
        assert!(train.len() >= test.len());
    }
}
