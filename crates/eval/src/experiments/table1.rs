//! Table 1 — comparison with baselines across the 12 datasets.
//!
//! Rows: HoloClean, HoloDetect, IMP, SMAT, Magellan, Ditto, then the four
//! simulated LLMs with the paper's best setting (all prompt components on,
//! per-model batch sizes, informative-feature selection where the dataset
//! defines one). Cells are accuracy (%) for data imputation and F1 (%)
//! elsewhere; N/A marks inapplicable baselines or models that failed to
//! return parseable answers.

use dprep_core::PipelineConfig;
use dprep_llm::ModelProfile;

use crate::experiments::{train_split, ExperimentConfig};
use crate::harness::{default_batch_size, run_baseline, run_llm_on_dataset, BaselineKind};

/// The paper's dataset column order.
pub const DATASETS: [&str; 12] = [
    "Adult",
    "Hospital",
    "Buy",
    "Restaurant",
    "Synthea",
    "Amazon-Google",
    "Beer",
    "DBLP-ACM",
    "DBLP-Google",
    "Fodors-Zagats",
    "iTunes-Amazon",
    "Walmart-Amazon",
];

/// One method row: a label plus one optional score per dataset.
#[derive(Debug, Clone)]
pub struct Row {
    /// Method name as it appears in the paper.
    pub method: String,
    /// Scores per dataset (None = N/A).
    pub cells: Vec<Option<f64>>,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Method rows in the paper's order.
    pub rows: Vec<Row>,
}

/// The best-setting pipeline configuration for one (model, dataset) pair.
pub fn best_config(profile: &ModelProfile, dataset: &dprep_datasets::Dataset) -> PipelineConfig {
    let mut config = PipelineConfig::best(dataset.task);
    config.batch_size = default_batch_size(profile);
    config.type_hint = dataset.type_hint.clone();
    config.feature_indices = dataset.informative_features.clone();
    config
}

/// Runs the whole comparison.
pub fn run(cfg: &ExperimentConfig) -> Table1 {
    let mut rows: Vec<Row> = Vec::new();

    // Classical baselines.
    for kind in BaselineKind::all() {
        let mut cells = Vec::with_capacity(DATASETS.len());
        for name in DATASETS {
            let test =
                dprep_datasets::dataset_by_name(name, cfg.scale, cfg.seed).expect("known dataset");
            let value = if kind.task() == test.task {
                let train = train_split(name, cfg).expect("known dataset");
                run_baseline(kind, &train, &test)
            } else {
                None
            };
            cells.push(value);
        }
        rows.push(Row {
            method: kind.name().to_string(),
            cells,
        });
    }

    // Simulated LLMs with the best setting.
    for profile in ModelProfile::all_presets() {
        let mut cells = Vec::with_capacity(DATASETS.len());
        for name in DATASETS {
            let dataset =
                dprep_datasets::dataset_by_name(name, cfg.scale, cfg.seed).expect("known dataset");
            let config = best_config(&profile, &dataset);
            let scored = run_llm_on_dataset(&profile, &dataset, &config, cfg.seed);
            cells.push(scored.value);
        }
        rows.push(Row {
            method: display_name(&profile),
            cells,
        });
    }

    Table1 { rows }
}

fn display_name(profile: &ModelProfile) -> String {
    match profile.name.as_str() {
        "sim-gpt-3" => "GPT-3".into(),
        "sim-gpt-3.5" => "GPT-3.5".into(),
        "sim-gpt-4" => "GPT-4".into(),
        "sim-vicuna-13b" => "Vicuna".into(),
        other => other.to_string(),
    }
}

impl Table1 {
    /// Rendering-ready rows.
    pub fn to_rows(&self) -> Vec<(String, Vec<String>)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.method.clone(),
                    r.cells.iter().map(|c| crate::report::cell(*c)).collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_all_rows_and_columns() {
        let table = run(&ExperimentConfig::smoke());
        assert_eq!(table.rows.len(), 10); // 6 baselines + 4 LLMs
        for row in &table.rows {
            assert_eq!(row.cells.len(), 12);
        }
        // Baselines are N/A outside their task columns.
        let holoclean = &table.rows[0];
        assert!(holoclean.cells[0].is_some()); // Adult (ED)
        assert!(holoclean.cells[2].is_none()); // Buy (DI)
                                               // Every dataset gets at least one non-N/A LLM score.
        for (col, name) in DATASETS.iter().enumerate() {
            assert!(
                table.rows[6..].iter().any(|r| r.cells[col].is_some()),
                "no LLM score for {name}"
            );
        }
    }
}
