//! Extension experiment: blocking ahead of pairwise matching (§2.1).
//!
//! The paper's EM benchmarks arrive pre-blocked; this experiment rebuilds
//! the blocking stage on the generated record collections and measures the
//! classic trade-off — pair completeness vs reduction ratio — for the
//! n-gram and embedding blockers.

use dprep_core::blocking::{evaluate_blocking, BlockingStats, EmbeddingBlocker, NgramBlocker};
use dprep_prompt::TaskInstance;
use dprep_tabular::Record;

use crate::experiments::ExperimentConfig;

/// One dataset × blocker row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Blocker name.
    pub blocker: &'static str,
    /// Quality stats.
    pub stats: BlockingStats,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct BlockingQuality {
    /// One row per (dataset, blocker).
    pub rows: Vec<Row>,
}

/// Splits an EM dataset's pairs back into left/right record collections
/// with gold index matches.
fn unpair(ds: &dprep_datasets::Dataset) -> (Vec<Record>, Vec<Record>, Vec<(usize, usize)>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut gold = Vec::new();
    for (inst, label) in ds.instances.iter().zip(&ds.labels) {
        let TaskInstance::EntityMatching { a, b } = inst else {
            continue;
        };
        let idx = left.len();
        left.push(a.clone());
        right.push(b.clone());
        if label.as_bool() == Some(true) {
            gold.push((idx, idx));
        }
    }
    (left, right, gold)
}

/// Runs the comparison over three EM datasets.
pub fn run(cfg: &ExperimentConfig) -> BlockingQuality {
    let mut rows = Vec::new();
    for name in ["Beer", "Fodors-Zagats", "Amazon-Google"] {
        let ds = dprep_datasets::dataset_by_name(name, cfg.scale, cfg.seed).expect("known dataset");
        let (left, right, gold) = unpair(&ds);
        let static_name: &'static str = match name {
            "Beer" => "Beer",
            "Fodors-Zagats" => "Fodors-Zagats",
            _ => "Amazon-Google",
        };

        // Two shared informative tokens: beer styles and brewery tails are
        // common enough that a single shared token barely prunes.
        let ngram = NgramBlocker {
            min_shared: 2,
            max_key_frequency: 0.15,
            ..NgramBlocker::default()
        }
        .block(&left, &right);
        rows.push(Row {
            dataset: static_name,
            blocker: "ngram",
            stats: evaluate_blocking(&ngram, &gold, left.len(), right.len()),
        });

        let embedding = EmbeddingBlocker {
            clusters: (left.len() / 8).max(2),
            seed: cfg.seed,
        }
        .block(&left, &right);
        rows.push(Row {
            dataset: static_name,
            blocker: "embedding",
            stats: evaluate_blocking(&embedding, &gold, left.len(), right.len()),
        });
    }
    BlockingQuality { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockers_keep_most_matches_and_prune_space() {
        let result = run(&ExperimentConfig {
            scale: 0.5,
            seed: 0xd472,
        });
        assert_eq!(result.rows.len(), 6);
        for row in &result.rows {
            assert!(
                row.stats.pair_completeness > 0.5,
                "{} {} completeness {:.2}",
                row.dataset,
                row.blocker,
                row.stats.pair_completeness
            );
            assert!(
                row.stats.reduction_ratio > 0.5,
                "{} {} reduction {:.2}",
                row.dataset,
                row.blocker,
                row.stats.reduction_ratio
            );
        }
    }
}
