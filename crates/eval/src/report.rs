//! Table rendering and TSV export.

use std::fs;
use std::io;
use std::path::PathBuf;

/// Renders a fixed-width text table: a header row, then one labeled row per
/// entry.
pub fn render_table(title: &str, headers: &[String], rows: &[(String, Vec<String>)]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let label_width = rows
        .iter()
        .map(|(label, _)| label.len())
        .chain(std::iter::once("Method".len()))
        .max()
        .unwrap_or(6);
    for (_, cells) in rows {
        for (i, cell) in cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<label_width$}", "Method"));
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!("  {h:>w$}"));
    }
    out.push('\n');
    let total: usize = label_width + widths.iter().map(|w| w + 2).sum::<usize>();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for (label, cells) in rows {
        out.push_str(&format!("{label:<label_width$}"));
        for (cell, w) in cells.iter().zip(&widths) {
            out.push_str(&format!("  {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// Writes a TSV file under `target/experiments/<name>.tsv`, returning its
/// path.
pub fn write_tsv(
    name: &str,
    headers: &[String],
    rows: &[(String, Vec<String>)],
) -> io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.tsv"));
    let mut out = String::new();
    out.push_str("method\t");
    out.push_str(&headers.join("\t"));
    out.push('\n');
    for (label, cells) in rows {
        out.push_str(label);
        out.push('\t');
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Renders a GitHub-flavoured markdown table (for EXPERIMENTS.md-style
/// reports).
pub fn render_markdown(headers: &[String], rows: &[(String, Vec<String>)]) -> String {
    let mut out = String::new();
    out.push_str("| Method |");
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for (label, cells) in rows {
        out.push_str(&format!("| {label} |"));
        for cell in cells {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats an optional percentage the way the paper's tables do.
pub fn cell(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.1}"),
        None => "N/A".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let table = render_table(
            "Demo",
            &["A".into(), "LongHeader".into()],
            &[
                ("method-1".into(), vec!["1.0".into(), "2.0".into()]),
                ("m2".into(), vec!["100.0".into(), "N/A".into()]),
            ],
        );
        assert!(table.contains("Demo"));
        assert!(table.contains("method-1"));
        let lines: Vec<&str> = table.lines().collect();
        // Header and row lines align to the same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn markdown_table_shape() {
        let md = render_markdown(
            &["A".into(), "B".into()],
            &[("x".into(), vec!["1".into(), "2".into()])],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| Method | A | B |");
        assert_eq!(lines[1], "|---|---|---|");
        assert_eq!(lines[2], "| x | 1 | 2 |");
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(cell(Some(97.73)), "97.7");
        assert_eq!(cell(None), "N/A");
    }

    #[test]
    fn tsv_round_trip() {
        let path = write_tsv(
            "unit-test-table",
            &["x".into()],
            &[("row".into(), vec!["1".into()])],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "method\tx\nrow\t1\n");
    }
}
