//! Scoring conventions.
//!
//! The paper reports accuracy (%) for data imputation and F1 score (%) for
//! the other tasks. Predictions the framework could not parse out of the
//! model's completion count as *wrong* (predicted-negative for the F1
//! tasks, incorrect for DI).

use dprep_core::Prediction;
use dprep_datasets::Label;
use dprep_text::normalize;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Confusion {
    /// Adds one observation.
    pub fn observe(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Precision of the positive class (0 when nothing was predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall of the positive class (0 when there are no positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 of the positive class.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// F1 (%) of yes/no predictions against yes/no labels. Failed or
/// non-yes/no answers count as "no".
pub fn f1_yes_no(predictions: &[Prediction], labels: &[Label]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "parallel arrays");
    let mut confusion = Confusion::default();
    for (pred, label) in predictions.iter().zip(labels) {
        let truth = label.as_bool().expect("yes/no task labels");
        let predicted = pred.as_yes_no().unwrap_or(false);
        confusion.observe(truth, predicted);
    }
    confusion.f1() * 100.0
}

/// Imputation accuracy (%): normalized string equality. Failed answers
/// count as wrong.
pub fn accuracy_di(predictions: &[Prediction], labels: &[Label]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "parallel arrays");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(pred, label)| {
            let truth = label.as_value().expect("DI labels");
            match pred.value() {
                Some(v) => normalize(v) == normalize(truth),
                None => false,
            }
        })
        .count();
    correct as f64 / predictions.len() as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_core::FailureKind;
    use dprep_prompt::ExtractedAnswer;

    fn answered(v: &str) -> Prediction {
        Prediction::Answered(ExtractedAnswer {
            reason: None,
            value: v.to_string(),
        })
    }

    #[test]
    fn confusion_metrics() {
        let mut c = Confusion::default();
        for _ in 0..8 {
            c.observe(true, true);
        }
        c.observe(false, true);
        c.observe(true, false);
        for _ in 0..10 {
            c.observe(false, false);
        }
        assert!((c.precision() - 8.0 / 9.0).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 9.0).abs() < 1e-12);
        assert!((c.f1() - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(c.total(), 20);
    }

    #[test]
    fn empty_confusion_is_zero() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn f1_counts_unparsed_as_negative() {
        let preds = vec![
            answered("yes"),
            Prediction::Failed(FailureKind::SkippedAnswer),
            answered("no"),
        ];
        let labels = vec![Label::YesNo(true), Label::YesNo(true), Label::YesNo(false)];
        // tp=1, fn=1 (unparsed positive), tn=1 -> p=1, r=0.5, f1=2/3.
        let f1 = f1_yes_no(&preds, &labels);
        assert!((f1 - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn di_accuracy_is_case_insensitive() {
        let preds = vec![
            answered("Marietta"),
            answered("atlanta"),
            Prediction::Failed(FailureKind::SkippedAnswer),
        ];
        let labels = vec![
            Label::Value("marietta".into()),
            Label::Value("savannah".into()),
            Label::Value("atlanta".into()),
        ];
        let acc = accuracy_di(&preds, &labels);
        assert!((acc - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        f1_yes_no(&[], &[Label::YesNo(true)]);
    }
}
