//! # dprep-eval
//!
//! Evaluation for the reproduction:
//!
//! * [`metrics`] — confusion matrices, precision/recall/F1, and DI accuracy
//!   with the paper's conventions (unparseable answers count as wrong; a
//!   run with too many unparseable answers is reported as "N/A"),
//! * [`harness`] — runs a simulated model or a classical baseline over one
//!   generated dataset and scores it,
//! * [`experiments`] — one module per paper artifact (Table 1, Table 2,
//!   Table 3, the feature-selection and cluster-batching in-text results),
//! * [`report`] — fixed-width table rendering plus TSV export under
//!   `target/experiments/`.

pub mod harness;
pub mod metrics;
pub mod report;

pub mod experiments;

pub use harness::{run_baseline, run_llm_on_dataset, BaselineKind, Scored};
pub use metrics::{accuracy_di, f1_yes_no, Confusion};
