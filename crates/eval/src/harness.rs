//! Runs models and baselines over generated datasets.

use std::sync::Arc;

use dprep_baselines::{
    DittoStyle, HoloCleanStyle, HoloDetectStyle, ImpStyle, MagellanStyle, SmatStyle,
};
use dprep_core::{ExecStats, FailureKind, PipelineConfig, Preprocessor};
use dprep_datasets::Dataset;
use dprep_llm::{ModelProfile, SimulatedLlm, UsageTotals};
use dprep_obs::MetricsSnapshot;
use dprep_prompt::{Task, TaskInstance};

use crate::metrics::{accuracy_di, f1_yes_no};

/// Fraction of failed answers beyond which a run is reported "N/A",
/// matching the paper's treatment of models "unable to return reasonable
/// answers".
pub const NA_THRESHOLD: f64 = 0.40;

/// Outcome of one scored run.
#[derive(Debug, Clone)]
pub struct Scored {
    /// Accuracy or F1 in percent; `None` means N/A.
    pub value: Option<f64>,
    /// Token/cost/time totals (zero for classical baselines).
    pub usage: UsageTotals,
    /// Fraction of instances with no parsed answer.
    pub failure_rate: f64,
    /// Failure counts per kind (format violations, skipped answers, context
    /// overflows, faults, exhausted retries).
    pub failures: [(FailureKind, usize); 7],
    /// Request-level serving counters (dedup, retries, cache hits, faults).
    pub stats: ExecStats,
    /// Serving metrics (histograms, per-kind counters; empty for classical
    /// baselines).
    pub metrics: MetricsSnapshot,
}

impl Scored {
    /// Renders the paper's table-cell convention.
    pub fn display(&self) -> String {
        match self.value {
            Some(v) => format!("{v:.1}"),
            None => "N/A".into(),
        }
    }
}

/// The paper's per-model batch-size settings (§4.1): GPT-3.5 uses 10–20,
/// GPT-4 10–15, Vicuna 1–2; the GPT-3 baseline was run unbatched.
pub fn default_batch_size(profile: &ModelProfile) -> usize {
    match profile.name.as_str() {
        "sim-gpt-3.5" => 15,
        "sim-gpt-4" => 12,
        "sim-vicuna-13b" => 2,
        _ => 1,
    }
}

/// Runs a simulated model over a dataset under `config` and scores it.
///
/// The dataset supplies the instances, the few-shot pool, the knowledge
/// corpus, and (when the config asks for feature selection) the informative
/// attribute indices.
pub fn run_llm_on_dataset(
    profile: &ModelProfile,
    dataset: &Dataset,
    config: &PipelineConfig,
    seed: u64,
) -> Scored {
    let model = SimulatedLlm::new(profile.clone(), Arc::new(dataset.kb.clone())).with_seed(seed);
    // Temperature deliberately stays as configured: `None` is resolved to
    // the model profile's default at dispatch, not silently pinned here.
    let preprocessor = Preprocessor::new(&model, config.clone());
    let result = preprocessor.run(&dataset.instances, &dataset.few_shot);
    score_run(result, dataset)
}

/// Runs a model cascade (cheapest first) over a dataset under `config` and
/// scores it — the routed counterpart of [`run_llm_on_dataset`]. Every
/// route is its own [`SimulatedLlm`] over the shared knowledge base and
/// seed, fronted by a [`RouterLayer`](dprep_llm::RouterLayer) with the
/// default escalation policy; per-route billing lands in
/// `Scored::metrics.routes`.
pub fn run_cascade_on_dataset(
    profiles: &[ModelProfile],
    dataset: &Dataset,
    config: &PipelineConfig,
    seed: u64,
) -> Scored {
    let kb = Arc::new(dataset.kb.clone());
    let routes: Vec<Box<dyn dprep_llm::ChatModel>> = profiles
        .iter()
        .map(|p| {
            Box::new(SimulatedLlm::new(p.clone(), Arc::clone(&kb)).with_seed(seed))
                as Box<dyn dprep_llm::ChatModel>
        })
        .collect();
    let router = dprep_llm::RouterLayer::new(routes, dprep_llm::EscalationPolicy::default());
    let preprocessor = Preprocessor::new(&router, config.clone());
    let result = preprocessor.run(&dataset.instances, &dataset.few_shot);
    score_run(result, dataset)
}

/// Scores a finished run against the dataset's labels.
fn score_run(result: dprep_core::RunResult, dataset: &Dataset) -> Scored {
    let failure_rate = result.failure_rate();
    let failures = result.failure_breakdown();
    debug_assert_eq!(
        result.predictions.len() - result.failed_count(),
        result
            .predictions
            .iter()
            .filter(|p| p.answer().is_some())
            .count(),
        "every instance is either answered or classified as failed"
    );
    let metric = match dataset.task {
        Task::Imputation => accuracy_di(&result.predictions, &dataset.labels),
        _ => f1_yes_no(&result.predictions, &dataset.labels),
    };
    Scored {
        value: (failure_rate <= NA_THRESHOLD).then_some(metric),
        usage: result.usage,
        failure_rate,
        failures,
        stats: result.stats,
        metrics: result.metrics,
    }
}

/// The classical baselines of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// HoloClean (unsupervised ED).
    HoloClean,
    /// HoloDetect (supervised ED).
    HoloDetect,
    /// IMP (DI).
    Imp,
    /// SMAT (SM).
    Smat,
    /// Magellan (EM).
    Magellan,
    /// Ditto (EM).
    Ditto,
}

impl BaselineKind {
    /// All baselines in the paper's row order.
    pub fn all() -> [BaselineKind; 6] {
        [
            BaselineKind::HoloClean,
            BaselineKind::HoloDetect,
            BaselineKind::Imp,
            BaselineKind::Smat,
            BaselineKind::Magellan,
            BaselineKind::Ditto,
        ]
    }

    /// Display name matching Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::HoloClean => "HoloClean",
            BaselineKind::HoloDetect => "HoloDetect",
            BaselineKind::Imp => "IMP",
            BaselineKind::Smat => "SMAT",
            BaselineKind::Magellan => "Magellan",
            BaselineKind::Ditto => "Ditto",
        }
    }

    /// The task a baseline applies to.
    pub fn task(&self) -> Task {
        match self {
            BaselineKind::HoloClean | BaselineKind::HoloDetect => Task::ErrorDetection,
            BaselineKind::Imp => Task::Imputation,
            BaselineKind::Smat => Task::SchemaMatching,
            BaselineKind::Magellan | BaselineKind::Ditto => Task::EntityMatching,
        }
    }
}

fn yes_no_train(train: &Dataset) -> Vec<(TaskInstance, bool)> {
    train
        .instances
        .iter()
        .zip(&train.labels)
        .filter_map(|(i, l)| l.as_bool().map(|b| (i.clone(), b)))
        .collect()
}

/// Trains a baseline on `train` and scores it on `test`. Returns `None`
/// (N/A) when the baseline does not apply to the dataset's task.
pub fn run_baseline(kind: BaselineKind, train: &Dataset, test: &Dataset) -> Option<f64> {
    if kind.task() != test.task {
        return None;
    }
    let predictions: Vec<bool> = match kind {
        BaselineKind::HoloClean => {
            let mut model = HoloCleanStyle::default();
            model.fit(&test.instances);
            test.instances.iter().map(|i| model.predict(i)).collect()
        }
        BaselineKind::HoloDetect => {
            let mut model = HoloDetectStyle::default();
            model.fit(&test.instances, &yes_no_train(train));
            test.instances.iter().map(|i| model.predict(i)).collect()
        }
        BaselineKind::Imp => {
            let labeled: Vec<(TaskInstance, String)> = train
                .instances
                .iter()
                .zip(&train.labels)
                .filter_map(|(i, l)| l.as_value().map(|v| (i.clone(), v.to_string())))
                .collect();
            let mut model = ImpStyle::default();
            model.fit(&labeled);
            let correct = test
                .instances
                .iter()
                .zip(&test.labels)
                .filter(|(i, l)| {
                    model
                        .predict(i)
                        .map(|p| {
                            dprep_text::normalize(&p)
                                == dprep_text::normalize(l.as_value().unwrap_or(""))
                        })
                        .unwrap_or(false)
                })
                .count();
            return Some(correct as f64 / test.len().max(1) as f64 * 100.0);
        }
        BaselineKind::Smat => {
            let mut model = SmatStyle::default();
            model.fit(&yes_no_train(train));
            test.instances.iter().map(|i| model.predict(i)).collect()
        }
        BaselineKind::Magellan => {
            let mut model = MagellanStyle::default();
            model.fit(&yes_no_train(train));
            test.instances.iter().map(|i| model.predict(i)).collect()
        }
        BaselineKind::Ditto => {
            let mut model = DittoStyle::default();
            model.fit(&yes_no_train(train));
            test.instances.iter().map(|i| model.predict(i)).collect()
        }
    };
    // F1 over boolean predictions.
    let mut confusion = crate::metrics::Confusion::default();
    for (pred, label) in predictions.iter().zip(&test.labels) {
        confusion.observe(label.as_bool().expect("yes/no labels"), *pred);
    }
    Some(confusion.f1() * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_datasets::{beer, buy, restaurant};

    #[test]
    fn llm_runs_and_scores_di() {
        let ds = restaurant::generate(0.3, 5);
        let profile = ModelProfile::gpt4();
        let mut config = PipelineConfig::best(Task::Imputation);
        config.batch_size = default_batch_size(&profile);
        let scored = run_llm_on_dataset(&profile, &ds, &config, 1);
        let value = scored.value.expect("GPT-4 parses reliably");
        assert!(value > 60.0, "accuracy = {value}");
        assert!(scored.usage.requests > 0);
        assert!(scored.usage.cost_usd > 0.0);
    }

    #[test]
    fn vicuna_is_na_on_imputation() {
        let ds = buy::generate(1.0, 6);
        let profile = ModelProfile::vicuna13b();
        let mut config = PipelineConfig::best(Task::Imputation);
        config.batch_size = default_batch_size(&profile);
        let scored = run_llm_on_dataset(&profile, &ds, &config, 2);
        assert!(
            scored.value.is_none(),
            "failure rate = {}",
            scored.failure_rate
        );
    }

    #[test]
    fn baseline_task_mismatch_is_na() {
        let ds = beer::generate(0.3, 7);
        assert_eq!(run_baseline(BaselineKind::HoloClean, &ds, &ds), None);
        assert_eq!(run_baseline(BaselineKind::Imp, &ds, &ds), None);
    }

    #[test]
    fn em_baselines_produce_scores() {
        let train = beer::generate(4.0, 8);
        let test = beer::generate(1.0, 9);
        let ditto = run_baseline(BaselineKind::Ditto, &train, &test).unwrap();
        assert!(ditto > 30.0, "ditto f1 = {ditto}");
    }
}
