//! # dprep-rng
//!
//! The workspace's only source of randomness: a small, fully deterministic
//! PRNG with no external dependencies, so `cargo build` works offline.
//!
//! Every stochastic decision in the simulator, the dataset generators, and
//! the ML baselines is drawn from an [`Rng`] seeded either directly
//! ([`Rng::seed_from_u64`]) or from a stable content hash ([`rng_for`]) —
//! identical inputs always yield identical behaviour, and changing a single
//! character of the content reshuffles the noise (like resampling a real
//! API).
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through a
//! splitmix64 expansion; both are public-domain algorithms with excellent
//! statistical quality for simulation workloads.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of `bytes`, mixed with `seed`.
pub fn stable_hash(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so similar strings diverge.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// splitmix64 step: expands a 64-bit seed into a stream of well-mixed words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single 64-bit value (splitmix64 expansion,
    /// the standard recommendation for xoshiro seeding).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)`. Panics when the range is empty, like
    /// an out-of-bounds index would.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.bounded((hi - lo) as u64) as usize
    }

    /// A uniform integer in the half-open range `[lo, hi)`. Panics when the
    /// range is empty.
    pub fn range<T: RangeInt>(&mut self, lo: T, hi: T) -> T {
        let (lo_w, hi_w) = (lo.to_i128(), hi.to_i128());
        assert!(lo_w < hi_w, "empty range {lo_w}..{hi_w}");
        T::from_i128(lo_w + self.bounded((hi_w - lo_w) as u64) as i128)
    }

    /// A uniform integer in the closed range `[lo, hi]`. Panics when
    /// `lo > hi`.
    pub fn range_incl<T: RangeInt>(&mut self, lo: T, hi: T) -> T {
        let (lo_w, hi_w) = (lo.to_i128(), hi.to_i128());
        assert!(lo_w <= hi_w, "empty range {lo_w}..={hi_w}");
        T::from_i128(lo_w + self.bounded((hi_w - lo_w + 1) as u64) as i128)
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's multiply-shift with a
    /// rejection step (unbiased).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(0, slice.len())])
        }
    }

    /// A standard-normal sample via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.range_f64(f64::EPSILON, 1.0);
        let u2: f64 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A random ASCII string of length `len` drawn from `alphabet`
    /// (test-data generation helper; panics on an empty alphabet).
    pub fn ascii_string(&mut self, alphabet: &[u8], len: usize) -> String {
        (0..len)
            .map(|_| *self.choose(alphabet).expect("nonempty alphabet") as char)
            .collect()
    }
}

/// Integer types usable with [`Rng::range`] / [`Rng::range_incl`]. All
/// in-tree ranges span far fewer than 2^64 values, which keeps the bounded
/// sampling exact.
pub trait RangeInt: Copy {
    /// Widens the value for range arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows an in-range value back (the result of `lo + bounded(span)` is
    /// always representable).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_range_int {
    ($($ty:ty),*) => {
        $(impl RangeInt for $ty {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $ty
            }
        })*
    };
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// An RNG seeded from `(seed, content)`.
pub fn rng_for(seed: u64, content: &str) -> Rng {
    Rng::seed_from_u64(stable_hash(seed, content.as_bytes()))
}

/// A standard-normal sample (free-function form kept for call-site
/// compatibility with the original `dprep-llm::rng` module).
pub fn gaussian(rng: &mut Rng) -> f64 {
    rng.gaussian()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_stable_and_sensitive() {
        assert_eq!(stable_hash(1, b"abc"), stable_hash(1, b"abc"));
        assert_ne!(stable_hash(1, b"abc"), stable_hash(1, b"abd"));
        assert_ne!(stable_hash(1, b"abc"), stable_hash(2, b"abc"));
    }

    #[test]
    fn rng_reproducible() {
        let mut a = rng_for(7, "prompt");
        let mut b = rng_for(7, "prompt");
        assert_eq!(a.f64(), b.f64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn range_usize_covers_and_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.range_usize(2, 4);
            assert!((2..4).contains(&x));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.range_usize(0, 10)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.01, "bucket fraction {f}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements an identity shuffle is vanishingly unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[42]).is_some());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = rng_for(0, "gaussian-test");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn generic_ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.range(17i64, 91);
            assert!((17..91).contains(&x));
            let y = rng.range_incl(0u8, 25);
            assert!(y <= 25);
            let z = rng.range_incl(-5i32, -5);
            assert_eq!(z, -5);
        }
    }

    #[test]
    fn bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(8);
        let hits = (0..100_000).filter(|_| rng.bool(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "f = {f}");
    }
}
