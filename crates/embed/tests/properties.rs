//! Property tests for embeddings and k-means: unit norms, determinism,
//! and clustering invariants on arbitrary input.

use proptest::prelude::*;

use dprep_embed::{kmeans, HashedNgramEmbedder, Vector};

fn any_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ]{0,40}").expect("valid regex")
}

proptest! {
    #[test]
    fn embeddings_are_unit_norm_or_zero(text in any_text()) {
        let e = HashedNgramEmbedder::default();
        let v = e.embed(&text);
        let n = v.norm();
        prop_assert!(n.abs() < 1e-5 || (n - 1.0).abs() < 1e-4, "norm {n}");
    }

    #[test]
    fn embedding_is_deterministic(text in any_text()) {
        let e = HashedNgramEmbedder::default();
        prop_assert_eq!(e.embed(&text), e.embed(&text));
    }

    #[test]
    fn kmeans_assignments_are_valid(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 3),
            0..40,
        ),
        k in 1usize..6,
        seed in 0u64..100,
    ) {
        let vectors: Vec<Vector> = points.into_iter().map(Vector).collect();
        let result = kmeans(&vectors, k, seed);
        prop_assert_eq!(result.assignments.len(), vectors.len());
        if vectors.is_empty() {
            prop_assert!(result.centroids.is_empty());
        } else {
            let k_eff = k.min(vectors.len());
            prop_assert_eq!(result.centroids.len(), k_eff);
            for &a in &result.assignments {
                prop_assert!(a < k_eff);
            }
            prop_assert!(result.inertia >= 0.0);
            // Every point's assigned centroid is (weakly) its nearest.
            for (p, &a) in vectors.iter().zip(&result.assignments) {
                let own = p.distance_sq(&result.centroids[a]);
                for c in &result.centroids {
                    prop_assert!(own <= p.distance_sq(c) + 1e-3);
                }
            }
        }
    }

    #[test]
    fn kmeans_is_deterministic(
        points in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 2),
            1..20,
        ),
        seed in 0u64..50,
    ) {
        let vectors: Vec<Vector> = points.into_iter().map(Vector).collect();
        let a = kmeans(&vectors, 3, seed);
        let b = kmeans(&vectors, 3, seed);
        prop_assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(
        a in proptest::collection::vec(-10.0f32..10.0, 4),
        b in proptest::collection::vec(-10.0f32..10.0, 4),
    ) {
        let (va, vb) = (Vector(a), Vector(b));
        let c = va.cosine(&vb);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
        prop_assert!((c - vb.cosine(&va)).abs() < 1e-5);
    }
}
