//! Property-style tests for embeddings and k-means: unit norms,
//! determinism, and clustering invariants on arbitrary input.
//!
//! Cases are generated with the in-tree [`dprep_rng`] generator from a
//! fixed seed, so every run exercises the same inputs.

use dprep_embed::{kmeans, HashedNgramEmbedder, Vector};
use dprep_rng::Rng;

const CASES: usize = 128;

/// Lower-case alphanumeric text with spaces, 0-40 chars — the same
/// alphabet the proptest regex `[a-z0-9 ]{0,40}` used to draw from.
fn any_text(rng: &mut Rng) -> String {
    let alphabet: Vec<u8> = (b'a'..=b'z').chain(b'0'..=b'9').chain([b' ']).collect();
    let len = rng.range_incl(0usize, 40);
    rng.ascii_string(&alphabet, len)
}

fn random_points(rng: &mut Rng, n: usize, dim: usize, amp: f32) -> Vec<Vector> {
    (0..n)
        .map(|_| {
            Vector(
                (0..dim)
                    .map(|_| rng.range_f64(-amp as f64, amp as f64) as f32)
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn embeddings_are_unit_norm_or_zero() {
    let mut rng = Rng::seed_from_u64(0xe4b_0001);
    let e = HashedNgramEmbedder::default();
    for _ in 0..CASES {
        let text = any_text(&mut rng);
        let v = e.embed(&text);
        let n = v.norm();
        assert!(
            n.abs() < 1e-5 || (n - 1.0).abs() < 1e-4,
            "norm {n} for {text:?}"
        );
    }
}

#[test]
fn embedding_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0xe4b_0002);
    let e = HashedNgramEmbedder::default();
    for _ in 0..CASES {
        let text = any_text(&mut rng);
        assert_eq!(e.embed(&text), e.embed(&text));
    }
}

#[test]
fn kmeans_assignments_are_valid() {
    let mut rng = Rng::seed_from_u64(0xe4b_0003);
    for _ in 0..CASES {
        let n = rng.range(0usize, 40);
        let vectors = random_points(&mut rng, n, 3, 10.0);
        let k = rng.range(1usize, 6);
        let seed = rng.range(0u64, 100);
        let result = kmeans(&vectors, k, seed);
        assert_eq!(result.assignments.len(), vectors.len());
        if vectors.is_empty() {
            assert!(result.centroids.is_empty());
        } else {
            let k_eff = k.min(vectors.len());
            assert_eq!(result.centroids.len(), k_eff);
            for &a in &result.assignments {
                assert!(a < k_eff);
            }
            assert!(result.inertia >= 0.0);
            // Every point's assigned centroid is (weakly) its nearest.
            for (p, &a) in vectors.iter().zip(&result.assignments) {
                let own = p.distance_sq(&result.centroids[a]);
                for c in &result.centroids {
                    assert!(own <= p.distance_sq(c) + 1e-3);
                }
            }
        }
    }
}

#[test]
fn kmeans_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0xe4b_0004);
    for _ in 0..CASES {
        let n = rng.range(1usize, 20);
        let vectors = random_points(&mut rng, n, 2, 5.0);
        let seed = rng.range(0u64, 50);
        let a = kmeans(&vectors, 3, seed);
        let b = kmeans(&vectors, 3, seed);
        assert_eq!(a.assignments, b.assignments);
    }
}

#[test]
fn cosine_is_bounded_and_symmetric() {
    let mut rng = Rng::seed_from_u64(0xe4b_0005);
    for _ in 0..CASES {
        let va = random_points(&mut rng, 1, 4, 10.0).remove(0);
        let vb = random_points(&mut rng, 1, 4, 10.0).remove(0);
        let c = va.cosine(&vb);
        assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
        assert!((c - vb.cosine(&va)).abs() < 1e-5);
    }
}
