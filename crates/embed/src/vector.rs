//! Dense vectors with the handful of operations the workspace needs.

/// A dense `f32` vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector(pub Vec<f32>);

impl Vector {
    /// A zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product. Panics if dimensions differ.
    pub fn dot(&self, other: &Vector) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
    pub fn cosine(&self, other: &Vector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        self.dot(other) / denom
    }

    /// Squared Euclidean distance.
    pub fn distance_sq(&self, other: &Vector) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Scales the vector to unit norm in place; zero vectors are left as-is.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for x in &mut self.0 {
                *x /= n;
            }
        }
    }

    /// Adds `other` into `self`. Panics if dimensions differ.
    pub fn add_assign(&mut self, other: &Vector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Divides every component by `k`.
    pub fn scale(&mut self, k: f32) {
        for x in &mut self.0 {
            *x *= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_dot() {
        let v = Vector(vec![3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        let w = Vector(vec![1.0, 0.0]);
        assert_eq!(v.dot(&w), 3.0);
    }

    #[test]
    fn cosine_bounds() {
        let v = Vector(vec![1.0, 0.0]);
        let w = Vector(vec![0.0, 1.0]);
        assert_eq!(v.cosine(&w), 0.0);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-6);
        let z = Vector::zeros(2);
        assert_eq!(v.cosine(&z), 0.0);
    }

    #[test]
    fn normalization() {
        let mut v = Vector(vec![3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut z = Vector::zeros(3);
        z.normalize();
        assert_eq!(z, Vector::zeros(3));
    }

    #[test]
    fn distance() {
        let v = Vector(vec![0.0, 0.0]);
        let w = Vector(vec![3.0, 4.0]);
        assert_eq!(v.distance_sq(&w), 25.0);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut acc = Vector::zeros(2);
        acc.add_assign(&Vector(vec![2.0, 4.0]));
        acc.add_assign(&Vector(vec![4.0, 0.0]));
        acc.scale(0.5);
        assert_eq!(acc, Vector(vec![3.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        Vector::zeros(2).dot(&Vector::zeros(3));
    }
}
