//! K-means clustering with k-means++ seeding.
//!
//! Used by cluster batching (§3.5 of the paper): instances are embedded,
//! clustered, and batches are drawn within clusters so the LLM sees
//! homogeneous questions it can answer consistently.

use dprep_rng::Rng;

use crate::vector::Vector;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Final centroids (`k` of them).
    pub centroids: Vec<Vector>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl KMeansResult {
    /// Point indices grouped by cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let k = self.centroids.len();
        let mut groups = vec![Vec::new(); k];
        for (i, &c) in self.assignments.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }
}

/// Runs k-means over `points` with `k` clusters, deterministic under `seed`.
///
/// `k` is clamped to the number of points; `k = 0` with non-empty input
/// panics. Empty input returns an empty result.
pub fn kmeans(points: &[Vector], k: usize, seed: u64) -> KMeansResult {
    const MAX_ITERS: usize = 50;

    if points.is_empty() {
        return KMeansResult {
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    assert!(k > 0, "k must be positive for non-empty input");
    let k = k.min(points.len());
    let mut rng = Rng::seed_from_u64(seed);

    // --- k-means++ seeding -------------------------------------------------
    let mut centroids: Vec<Vector> = Vec::with_capacity(k);
    centroids.push(points[rng.range(0, points.len())].clone());
    let mut dist_sq: Vec<f32> = points
        .iter()
        .map(|p| p.distance_sq(&centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist_sq.iter().map(|&d| d as f64).sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with existing centroids; pick
            // uniformly.
            rng.range(0, points.len())
        } else {
            let mut target = rng.f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let c = points[next].clone();
        for (i, p) in points.iter().enumerate() {
            dist_sq[i] = dist_sq[i].min(p.distance_sq(&c));
        }
        centroids.push(c);
    }

    // --- Lloyd iterations --------------------------------------------------
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..MAX_ITERS {
        iterations = iter + 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = p.distance_sq(centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Recompute centroids; empty clusters are re-seeded to the farthest
        // point from its centroid to avoid dead clusters.
        let dim = points[0].dim();
        let mut sums = vec![Vector::zeros(dim); centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            sums[assignments[i]].add_assign(p);
            counts[assignments[i]] += 1;
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if counts[c] == 0 {
                let (far_idx, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.distance_sq(&centroids[assignments[i]])))
                    .fold((0, f32::NEG_INFINITY), |acc, cur| {
                        if cur.1 > acc.1 {
                            cur
                        } else {
                            acc
                        }
                    });
                centroids[c] = points[far_idx].clone();
            } else {
                let mut mean = sum;
                mean.scale(1.0 / counts[c] as f32);
                centroids[c] = mean;
            }
        }
    }

    let inertia: f64 = points
        .iter()
        .zip(&assignments)
        .map(|(p, &c)| p.distance_sq(&centroids[c]) as f64)
        .sum();

    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vector> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Vector(vec![0.0 + i as f32 * 0.01, 0.0]));
            pts.push(Vector(vec![10.0 + i as f32 * 0.01, 10.0]));
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, 2, 7);
        // Even-indexed points are blob A, odd are blob B.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for (i, &c) in res.assignments.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { a } else { b });
        }
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = two_blobs();
        let r1 = kmeans(&pts, 2, 42);
        let r2 = kmeans(&pts, 2, 42);
        assert_eq!(r1.assignments, r2.assignments);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![Vector(vec![1.0]), Vector(vec![2.0])];
        let res = kmeans(&pts, 10, 0);
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn empty_input() {
        let res = kmeans(&[], 3, 0);
        assert!(res.assignments.is_empty());
        assert!(res.centroids.is_empty());
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![Vector(vec![0.0, 0.0]), Vector(vec![2.0, 4.0])];
        let res = kmeans(&pts, 1, 0);
        assert_eq!(res.centroids[0], Vector(vec![1.0, 2.0]));
        assert_eq!(res.assignments, vec![0, 0]);
    }

    #[test]
    fn identical_points_dont_hang() {
        let pts = vec![Vector(vec![1.0, 1.0]); 8];
        let res = kmeans(&pts, 3, 5);
        assert_eq!(res.assignments.len(), 8);
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn clusters_grouping_is_consistent() {
        let pts = two_blobs();
        let res = kmeans(&pts, 2, 1);
        let groups = res.clusters();
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), pts.len());
        for (c, group) in groups.iter().enumerate() {
            for &i in group {
                assert_eq!(res.assignments[i], c);
            }
        }
    }
}
