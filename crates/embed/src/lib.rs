//! # dprep-embed
//!
//! Embedding and clustering substrate — the workspace's stand-in for
//! Sentence-BERT, which the paper uses to drive *cluster batching*
//! (k-means over instance embeddings, then batching within clusters).
//!
//! * [`Vector`] — a dense f32 vector with cosine/dot/norm operations,
//! * [`HashedNgramEmbedder`] — hashed character-n-gram + log-TF embedding
//!   with L2 normalization (a lexical sentence embedding),
//! * [`kmeans()`] — k-means with k-means++ seeding, deterministic under a
//!   caller-provided seed.

pub mod embedder;
pub mod kmeans;
pub mod vector;

pub use embedder::HashedNgramEmbedder;
#[doc(inline)]
pub use kmeans::kmeans;
pub use kmeans::KMeansResult;
pub use vector::Vector;
