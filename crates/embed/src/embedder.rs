//! Hashed character-n-gram embeddings: the Sentence-BERT substitute.
//!
//! A real sentence encoder maps semantically similar strings to nearby
//! vectors. For the tabular text this workspace deals in (product titles,
//! addresses, bibliographic records) *lexical* similarity carries almost all
//! of the signal, so we embed a string as the L2-normalized log-TF vector of
//! its character trigrams, feature-hashed into a fixed dimension. Hashing
//! uses FNV-1a with a seed, so embeddings are deterministic.

use crate::vector::Vector;
use dprep_text::normalize;

/// Character-n-gram feature hashing embedder.
#[derive(Debug, Clone)]
pub struct HashedNgramEmbedder {
    dim: usize,
    ngram: usize,
    seed: u64,
}

impl Default for HashedNgramEmbedder {
    fn default() -> Self {
        HashedNgramEmbedder::new(256, 3, 0x5eed)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl HashedNgramEmbedder {
    /// Creates an embedder with output dimension `dim`, n-gram size `ngram`,
    /// and hash seed `seed`.
    pub fn new(dim: usize, ngram: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(ngram > 0, "n-gram size must be positive");
        HashedNgramEmbedder { dim, ngram, seed }
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds `text` into a unit-norm vector (zero vector for empty text).
    ///
    /// The text is normalized (lowercase, punctuation stripped) first, and a
    /// leading/trailing space sentinel is added so word boundaries produce
    /// distinctive n-grams.
    pub fn embed(&self, text: &str) -> Vector {
        let norm = normalize(text);
        let mut v = Vector::zeros(self.dim);
        if norm.is_empty() {
            return v;
        }
        let padded = format!(" {norm} ");
        let chars: Vec<char> = padded.chars().collect();
        if chars.len() < self.ngram {
            return v;
        }
        let mut buf = String::new();
        for window in chars.windows(self.ngram) {
            buf.clear();
            buf.extend(window.iter());
            let h = fnv1a(self.seed, buf.as_bytes());
            let idx = (h % self.dim as u64) as usize;
            // Signed hashing reduces collision bias.
            let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
            v.0[idx] += sign;
        }
        // Log-scale term frequencies, then L2 normalize.
        for x in &mut v.0 {
            *x = x.signum() * (1.0 + x.abs()).ln();
        }
        v.normalize();
        v
    }

    /// Embeds a batch of texts.
    pub fn embed_all<'a>(&self, texts: impl IntoIterator<Item = &'a str>) -> Vec<Vector> {
        texts.into_iter().map(|t| self.embed(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let e = HashedNgramEmbedder::default();
        assert_eq!(e.embed("apple iphone"), e.embed("apple iphone"));
    }

    #[test]
    fn unit_norm_for_nonempty() {
        let e = HashedNgramEmbedder::default();
        let v = e.embed("some text");
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_is_zero() {
        let e = HashedNgramEmbedder::default();
        assert_eq!(e.embed(""), Vector::zeros(256));
        assert_eq!(e.embed("!!!"), Vector::zeros(256));
    }

    #[test]
    fn similar_strings_are_closer_than_different_ones() {
        let e = HashedNgramEmbedder::default();
        let a = e.embed("apple iphone 12 pro max");
        let b = e.embed("apple iphone 12 pro");
        let c = e.embed("sony bravia 55 inch television");
        assert!(a.cosine(&b) > a.cosine(&c));
        assert!(a.cosine(&b) > 0.5);
    }

    #[test]
    fn case_and_punctuation_invariant() {
        let e = HashedNgramEmbedder::default();
        assert_eq!(e.embed("New-York!"), e.embed("new york"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashedNgramEmbedder::new(256, 3, 1).embed("hello");
        let b = HashedNgramEmbedder::new(256, 3, 2).embed("hello");
        assert_ne!(a, b);
    }

    #[test]
    fn batch_matches_single() {
        let e = HashedNgramEmbedder::default();
        let batch = e.embed_all(["a b", "c d"]);
        assert_eq!(batch[0], e.embed("a b"));
        assert_eq!(batch[1], e.embed("c d"));
    }
}
