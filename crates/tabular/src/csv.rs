//! Minimal RFC-4180-style CSV reading and writing for [`Table`]s.
//!
//! Implemented from scratch (no external CSV crate): quoted fields, embedded
//! commas/newlines, doubled-quote escaping. The first row is the header and
//! becomes the schema (all-text by default; callers can type columns with
//! [`read_csv_typed`]).

use std::sync::Arc;

use crate::error::TabularError;
use crate::schema::{AttrType, Attribute, Schema};
use crate::table::Table;
use crate::value::Value;

/// Parses a CSV document into raw string rows.
fn parse_rows(input: &str) -> Result<Vec<Vec<String>>, TabularError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut row: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(TabularError::CsvParse {
                            line,
                            reason: "quote in the middle of an unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TabularError::CsvParse {
            line,
            reason: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Reads a CSV document whose header row defines an all-text schema.
pub fn read_csv(input: &str) -> Result<Table, TabularError> {
    read_csv_with(input, |_| AttrType::Text)
}

/// Reads a CSV document, inferring each cell's type with [`Value::infer`].
/// Column types in the schema are set per `type_of(column name)`.
pub fn read_csv_typed(input: &str) -> Result<Table, TabularError> {
    read_csv_with(input, |_| AttrType::Text).map(|table| {
        // Re-infer values; keep schema text-typed unless a column is fully
        // numeric, in which case mark it numeric.
        retype(table)
    })
}

fn retype(table: Table) -> Table {
    let n = table.schema().len();
    let mut numeric = vec![true; n];
    let mut inferred_rows: Vec<Vec<Value>> = Vec::with_capacity(table.len());
    for row in table.rows() {
        let mut vals = Vec::with_capacity(n);
        for (i, v) in row.values().iter().enumerate() {
            let iv = match v {
                Value::Text(s) => Value::infer(s),
                other => other.clone(),
            };
            if !iv.is_missing() && iv.as_f64().is_none() {
                numeric[i] = false;
            }
            vals.push(iv);
        }
        inferred_rows.push(vals);
    }
    let attrs: Vec<Attribute> = table
        .schema()
        .attributes()
        .iter()
        .enumerate()
        .map(|(i, a)| Attribute {
            name: a.name.clone(),
            description: a.description.clone(),
            dtype: if numeric[i] {
                AttrType::Numeric
            } else {
                AttrType::Text
            },
        })
        .collect();
    let schema = Schema::new(attrs).expect("names unchanged").shared();
    let mut out = Table::new(Arc::clone(&schema));
    for vals in inferred_rows {
        out.push_values(vals).expect("arity unchanged");
    }
    out
}

fn read_csv_with(input: &str, type_of: impl Fn(&str) -> AttrType) -> Result<Table, TabularError> {
    let rows = parse_rows(input)?;
    let mut it = rows.into_iter();
    let header = it.next().ok_or(TabularError::CsvParse {
        line: 1,
        reason: "empty document".into(),
    })?;
    let attrs: Vec<Attribute> = header
        .iter()
        .map(|name| Attribute {
            name: name.clone(),
            description: None,
            dtype: type_of(name),
        })
        .collect();
    let schema = Schema::new(attrs)?.shared();
    let mut table = Table::new(Arc::clone(&schema));
    for (i, row) in it.enumerate() {
        if row.len() != schema.len() {
            return Err(TabularError::CsvParse {
                line: i + 2,
                reason: format!(
                    "row has {} fields but header has {}",
                    row.len(),
                    schema.len()
                ),
            });
        }
        let values = row
            .into_iter()
            .map(|s| {
                if s.is_empty() || s == "???" {
                    Value::Missing
                } else {
                    Value::Text(s)
                }
            })
            .collect();
        table.push_values(values)?;
    }
    Ok(table)
}

fn write_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes a table to CSV text (header + rows, `\n` line endings,
/// missing cells rendered as empty fields).
pub fn write_csv(table: &Table) -> String {
    let mut out = String::new();
    for (i, name) in table.schema().names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, name);
    }
    out.push('\n');
    for row in table.rows() {
        for (i, v) in row.values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if !v.is_missing() {
                write_field(&mut out, &v.to_string());
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let csv = "name,city\nann,tokyo\nbob,osaka\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().names(), vec!["name", "city"]);
        assert_eq!(write_csv(&t), csv);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "a,b\n\"x, y\",\"say \"\"hi\"\"\"\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.row(0).unwrap().get(0), Some(&Value::text("x, y")));
        assert_eq!(t.row(0).unwrap().get(1), Some(&Value::text("say \"hi\"")));
        // Round-trips through writer.
        let back = read_csv(&write_csv(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let csv = "a\n\"line1\nline2\"\n";
        let t = read_csv(csv).unwrap();
        assert_eq!(t.row(0).unwrap().get(0), Some(&Value::text("line1\nline2")));
    }

    #[test]
    fn missing_cells() {
        let csv = "a,b\n,x\n???,y\n";
        let t = read_csv(csv).unwrap();
        assert!(t.row(0).unwrap().get(0).unwrap().is_missing());
        assert!(t.row(1).unwrap().get(0).unwrap().is_missing());
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_csv("a,b\n1\n").unwrap_err();
        assert!(matches!(err, TabularError::CsvParse { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv("a\n\"open\n").is_err());
    }

    #[test]
    fn empty_document_rejected() {
        assert!(read_csv("").is_err());
    }

    #[test]
    fn typed_reader_infers_numeric_columns() {
        let t = read_csv_typed("age,name\n30,ann\n40,bob\n").unwrap();
        assert_eq!(t.schema().attribute(0).unwrap().dtype, AttrType::Numeric);
        assert_eq!(t.schema().attribute(1).unwrap().dtype, AttrType::Text);
        assert_eq!(t.row(0).unwrap().get(0), Some(&Value::Int(30)));
    }

    #[test]
    fn typed_reader_mixed_column_stays_text() {
        let t = read_csv_typed("x\n1\nabc\n").unwrap();
        assert_eq!(t.schema().attribute(0).unwrap().dtype, AttrType::Text);
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0).unwrap().get(1), Some(&Value::text("2")));
    }

    #[test]
    fn no_trailing_newline() {
        let t = read_csv("a\nlast").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0).unwrap().get(0), Some(&Value::text("last")));
    }
}
