//! # dprep-tabular
//!
//! Relational-table substrate for the `llm-data-preprocessors` workspace.
//!
//! The paper ("Large Language Models as Data Preprocessors", VLDB 2024)
//! operates on relational tables specified by schemas, where every attribute
//! is either numerical (including binary) or textual (including categorical).
//! This crate provides that data model:
//!
//! * [`Value`] — a dynamically typed cell value,
//! * [`Attribute`] / [`Schema`] — attribute metadata (name, optional
//!   description, declared type),
//! * [`Record`] — one row bound to its schema,
//! * [`Table`] — a schema plus rows, with CSV round-tripping and column
//!   statistics,
//! * [`context`] — the *contextualization grammar* of §3.3 of the paper:
//!   serializing a data instance to `[name: "value", …]` text and parsing it
//!   back. Both the prompt builder (`dprep-prompt`) and the simulated LLM
//!   (`dprep-llm`) speak this grammar, which is what lets the simulator
//!   comprehend prompts without ever touching ground truth.

pub mod context;
pub mod csv;
pub mod error;
pub mod record;
pub mod schema;
pub mod table;
pub mod value;

pub use context::{contextualize, contextualize_selected, parse_instance, ParsedInstance};
pub use error::TabularError;
pub use record::Record;
pub use schema::{AttrType, Attribute, Schema};
pub use table::Table;
pub use value::Value;
