//! Schemas and attribute metadata.

use std::fmt;
use std::sync::Arc;

use crate::error::TabularError;

/// Declared type of an attribute.
///
/// The paper's data model assumes every attribute is numerical (including
/// binary) or textual (including categorical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Integer- or float-valued, including binary attributes.
    Numeric,
    /// Free text or categorical labels.
    Text,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Numeric => write!(f, "numeric"),
            AttrType::Text => write!(f, "text"),
        }
    }
}

/// One attribute of a schema: a name, an optional human-readable description
/// (used by schema matching, where instances are `(name, description)`
/// pairs), and a declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as it appears in prompts.
    pub name: String,
    /// Optional description; schema matching relies on it.
    pub description: Option<String>,
    /// Declared type.
    pub dtype: AttrType,
}

impl Attribute {
    /// A text attribute with no description.
    pub fn text(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            description: None,
            dtype: AttrType::Text,
        }
    }

    /// A numeric attribute with no description.
    pub fn numeric(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            description: None,
            dtype: AttrType::Numeric,
        }
    }

    /// Attaches a description (builder style).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }
}

/// An ordered list of attributes with unique names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, validating that attribute names are unique and
    /// non-empty.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, TabularError> {
        for (i, a) in attributes.iter().enumerate() {
            if a.name.trim().is_empty() {
                return Err(TabularError::EmptyAttributeName { index: i });
            }
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(TabularError::DuplicateAttribute {
                    name: a.name.clone(),
                });
            }
        }
        Ok(Schema { attributes })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_names(names: &[(&str, AttrType)]) -> Result<Self, TabularError> {
        Schema::new(
            names
                .iter()
                .map(|(n, t)| Attribute {
                    name: (*n).to_string(),
                    description: None,
                    dtype: *t,
                })
                .collect(),
        )
    }

    /// Convenience constructor where every attribute is textual.
    pub fn all_text(names: &[&str]) -> Result<Self, TabularError> {
        Schema::new(names.iter().map(|n| Attribute::text(*n)).collect())
    }

    /// Wraps the schema in an [`Arc`] for cheap sharing across records.
    pub fn shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `index`.
    pub fn attribute(&self, index: usize) -> Option<&Attribute> {
        self.attributes.get(index)
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Projects the schema onto the attributes at `indices` (in the given
    /// order). Used by feature selection (§3.4 of the paper).
    pub fn project(&self, indices: &[usize]) -> Result<Schema, TabularError> {
        let mut attrs = Vec::with_capacity(indices.len());
        for &i in indices {
            let a = self
                .attributes
                .get(i)
                .ok_or(TabularError::AttributeIndexOutOfRange {
                    index: i,
                    len: self.attributes.len(),
                })?
                .clone();
            attrs.push(a);
        }
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::all_text(&["a", "b", "c"]).unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::all_text(&["a", "a"]).unwrap_err();
        assert!(matches!(err, TabularError::DuplicateAttribute { .. }));
    }

    #[test]
    fn rejects_empty_names() {
        let err = Schema::all_text(&["a", "  "]).unwrap_err();
        assert!(matches!(err, TabularError::EmptyAttributeName { index: 1 }));
    }

    #[test]
    fn index_lookup() {
        let s = abc();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn projection_selects_and_reorders() {
        let s = abc();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
    }

    #[test]
    fn projection_out_of_range_fails() {
        let s = abc();
        assert!(matches!(
            s.project(&[5]),
            Err(TabularError::AttributeIndexOutOfRange { index: 5, len: 3 })
        ));
    }

    #[test]
    fn display_shows_types() {
        let s =
            Schema::from_names(&[("age", AttrType::Numeric), ("city", AttrType::Text)]).unwrap();
        assert_eq!(s.to_string(), "(age: numeric, city: text)");
    }

    #[test]
    fn attribute_builder() {
        let a = Attribute::text("phone").with_description("contact phone number");
        assert_eq!(a.description.as_deref(), Some("contact phone number"));
        assert_eq!(a.dtype, AttrType::Text);
        let n = Attribute::numeric("age");
        assert_eq!(n.dtype, AttrType::Numeric);
    }
}
