//! Tables: a schema plus rows, with column statistics and splits.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::TabularError;
use crate::record::Record;
use crate::schema::Schema;
use crate::value::Value;

/// A relational table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Arc<Schema>,
    rows: Vec<Record>,
}

/// Summary statistics for one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericStats {
    /// Minimum over non-missing numeric cells.
    pub min: f64,
    /// Maximum over non-missing numeric cells.
    pub max: f64,
    /// Mean over non-missing numeric cells.
    pub mean: f64,
    /// Number of non-missing numeric cells.
    pub count: usize,
}

impl Table {
    /// Creates an empty table over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a table from pre-built records, validating they all share the
    /// table's schema.
    pub fn from_records(schema: Arc<Schema>, rows: Vec<Record>) -> Result<Self, TabularError> {
        for r in &rows {
            if !Arc::ptr_eq(r.schema(), &schema) && **r.schema() != *schema {
                return Err(TabularError::SchemaMismatch);
            }
        }
        Ok(Table { schema, rows })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row built from raw values.
    pub fn push_values(&mut self, values: Vec<Value>) -> Result<(), TabularError> {
        let record = Record::new(Arc::clone(&self.schema), values)?;
        self.rows.push(record);
        Ok(())
    }

    /// Appends a pre-built record (must share the schema).
    pub fn push(&mut self, record: Record) -> Result<(), TabularError> {
        if !Arc::ptr_eq(record.schema(), &self.schema) && **record.schema() != *self.schema {
            return Err(TabularError::SchemaMismatch);
        }
        self.rows.push(record);
        Ok(())
    }

    /// The row at `index`.
    pub fn row(&self, index: usize) -> Option<&Record> {
        self.rows.get(index)
    }

    /// All values of the column at `attr_index`.
    pub fn column(&self, attr_index: usize) -> Result<Vec<&Value>, TabularError> {
        if attr_index >= self.schema.len() {
            return Err(TabularError::AttributeIndexOutOfRange {
                index: attr_index,
                len: self.schema.len(),
            });
        }
        Ok(self
            .rows
            .iter()
            .map(|r| r.get(attr_index).expect("arity validated on insert"))
            .collect())
    }

    /// Distinct non-missing values of a column with their frequencies,
    /// ordered by descending frequency then value.
    pub fn value_counts(&self, attr_index: usize) -> Result<Vec<(Value, usize)>, TabularError> {
        let col = self.column(attr_index)?;
        let mut counts: BTreeMap<(u8, i64, String), (Value, usize)> = BTreeMap::new();
        for v in col {
            if v.is_missing() {
                continue;
            }
            let entry = counts.entry(v.sort_key()).or_insert_with(|| (v.clone(), 0));
            entry.1 += 1;
        }
        let mut out: Vec<(Value, usize)> = counts.into_values().collect();
        out.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.sort_key().cmp(&b.0.sort_key()))
        });
        Ok(out)
    }

    /// Numeric summary statistics for a column (over cells with a numeric
    /// view), or `None` if the column has no numeric cells.
    pub fn numeric_stats(&self, attr_index: usize) -> Result<Option<NumericStats>, TabularError> {
        let col = self.column(attr_index)?;
        let nums: Vec<f64> = col.iter().filter_map(|v| v.as_f64()).collect();
        if nums.is_empty() {
            return Ok(None);
        }
        let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = nums.iter().sum::<f64>() / nums.len() as f64;
        Ok(Some(NumericStats {
            min,
            max,
            mean,
            count: nums.len(),
        }))
    }

    /// Splits the table into `(head, tail)` at `at` rows. Used to carve a
    /// few-shot pool off the front of a generated dataset.
    pub fn split_at(&self, at: usize) -> (Table, Table) {
        let at = at.min(self.rows.len());
        let head = Table {
            schema: Arc::clone(&self.schema),
            rows: self.rows[..at].to_vec(),
        };
        let tail = Table {
            schema: Arc::clone(&self.schema),
            rows: self.rows[at..].to_vec(),
        };
        (head, tail)
    }

    /// Iterator over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.rows.iter()
    }
}

impl<'a> IntoIterator for &'a Table {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};

    fn people() -> Table {
        let schema = Schema::from_names(&[("name", AttrType::Text), ("age", AttrType::Numeric)])
            .unwrap()
            .shared();
        let mut t = Table::new(schema);
        t.push_values(vec![Value::text("ann"), Value::Int(30)])
            .unwrap();
        t.push_values(vec![Value::text("bob"), Value::Int(40)])
            .unwrap();
        t.push_values(vec![Value::text("ann"), Value::Missing])
            .unwrap();
        t
    }

    #[test]
    fn push_validates_arity() {
        let mut t = people();
        assert!(t.push_values(vec![Value::text("only one")]).is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn column_access() {
        let t = people();
        let names = t.column(0).unwrap();
        assert_eq!(names.len(), 3);
        assert!(t.column(5).is_err());
    }

    #[test]
    fn value_counts_sorted_by_frequency() {
        let t = people();
        let counts = t.value_counts(0).unwrap();
        assert_eq!(counts[0], (Value::text("ann"), 2));
        assert_eq!(counts[1], (Value::text("bob"), 1));
    }

    #[test]
    fn value_counts_skip_missing() {
        let t = people();
        let counts = t.value_counts(1).unwrap();
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn numeric_stats() {
        let t = people();
        let stats = t.numeric_stats(1).unwrap().unwrap();
        assert_eq!(stats.min, 30.0);
        assert_eq!(stats.max, 40.0);
        assert_eq!(stats.mean, 35.0);
        assert_eq!(stats.count, 2);
        assert!(t.numeric_stats(0).unwrap().is_none());
    }

    #[test]
    fn split_at_partitions_rows() {
        let t = people();
        let (head, tail) = t.split_at(1);
        assert_eq!(head.len(), 1);
        assert_eq!(tail.len(), 2);
        let (all, none) = t.split_at(99);
        assert_eq!(all.len(), 3);
        assert!(none.is_empty());
    }

    #[test]
    fn from_records_rejects_foreign_schema() {
        let t = people();
        let other = Schema::all_text(&["x"]).unwrap().shared();
        let foreign = Record::new(other, vec![Value::text("v")]).unwrap();
        let err = Table::from_records(Arc::clone(t.schema()), vec![foreign]).unwrap_err();
        assert_eq!(err, TabularError::SchemaMismatch);
    }

    #[test]
    fn iteration() {
        let t = people();
        assert_eq!(t.iter().count(), 3);
        assert_eq!((&t).into_iter().count(), 3);
    }
}
