//! The contextualization grammar of §3.3 of the paper.
//!
//! LLMs intake raw text, so each data instance is rendered as
//!
//! ```text
//! [name: "value", name: "value", attr: ???]
//! ```
//!
//! with `???` (unquoted) marking a missing cell. Inside quoted values, `"`
//! and `\` are escaped with a backslash so the format round-trips.
//!
//! This module is deliberately symmetric: [`contextualize`] serializes a
//! [`Record`], and [`parse_instance`] parses the text back into
//! `(name, value)` pairs. The prompt builder uses the former; the simulated
//! LLM uses the latter to *comprehend* prompts — which is how the simulation
//! stays honest (it only ever sees the same characters a real API would).

use crate::error::TabularError;
use crate::record::Record;
use crate::value::Value;

/// A parsed contextualized instance: attribute names with their raw string
/// values (`None` for missing cells).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedInstance {
    /// `(attribute name, value)` pairs in serialization order.
    pub fields: Vec<(String, Option<String>)>,
}

impl ParsedInstance {
    /// Looks up a field by attribute name.
    pub fn get(&self, name: &str) -> Option<&Option<String>> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Names of all fields, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// All non-missing values concatenated — handy for embedding and
    /// similarity computations over whole instances.
    pub fn flat_text(&self) -> String {
        let mut out = String::new();
        for (_, v) in &self.fields {
            if let Some(v) = v {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(v);
            }
        }
        out
    }
}

fn escape_into(out: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            _ => out.push(c),
        }
    }
}

/// Serializes a record to the `[name: "value", …]` contextualization format.
pub fn contextualize(record: &Record) -> String {
    contextualize_pairs(record.named_values().map(|(n, v)| (n, v.clone())))
}

/// Serializes only the attributes at `indices` — feature selection (§3.4).
pub fn contextualize_selected(record: &Record, indices: &[usize]) -> String {
    let schema = record.schema();
    contextualize_pairs(indices.iter().filter_map(|&i| {
        let name = schema.attribute(i)?.name.as_str();
        let value = record.get(i)?.clone();
        Some((name, value))
    }))
}

/// Serializes arbitrary `(name, value)` pairs in the contextualization
/// format. This is the single source of truth for the grammar.
pub fn contextualize_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, Value)>) -> String {
    let mut out = String::from("[");
    for (i, (name, value)) in pairs.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(name);
        out.push_str(": ");
        if value.is_missing() {
            out.push_str("???");
        } else {
            out.push('"');
            escape_into(&mut out, &value.to_string());
            out.push('"');
        }
    }
    out.push(']');
    out
}

/// Parses a contextualized instance back into `(name, value)` pairs.
///
/// Accepts exactly the output of [`contextualize`]; leading/trailing
/// whitespace around the brackets is tolerated.
pub fn parse_instance(text: &str) -> Result<ParsedInstance, TabularError> {
    let err = |reason: &str| TabularError::ContextParse {
        reason: reason.to_string(),
    };
    let body = text.trim();
    let body = body
        .strip_prefix('[')
        .ok_or_else(|| err("missing opening '['"))?;
    let body = body
        .strip_suffix(']')
        .ok_or_else(|| err("missing closing ']'"))?;

    let mut fields = Vec::new();
    let mut chars = body.chars().peekable();

    loop {
        // Skip separators / whitespace between fields.
        while matches!(chars.peek(), Some(' ') | Some(',')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        // Attribute name: everything up to the first ':'.
        let mut name = String::new();
        loop {
            match chars.next() {
                Some(':') => break,
                Some(c) => name.push(c),
                None => return Err(err("attribute name not followed by ':'")),
            }
        }
        let name = name.trim().to_string();
        if name.is_empty() {
            return Err(err("empty attribute name"));
        }
        while matches!(chars.peek(), Some(' ')) {
            chars.next();
        }
        // Value: either a quoted string or the ??? placeholder.
        match chars.peek() {
            Some('"') => {
                chars.next();
                let mut value = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some(c) => value.push(c),
                            None => return Err(err("dangling escape at end of value")),
                        },
                        Some('"') => break,
                        Some(c) => value.push(c),
                        None => return Err(err("unterminated quoted value")),
                    }
                }
                fields.push((name, Some(value)));
            }
            Some('?') => {
                for _ in 0..3 {
                    if chars.next() != Some('?') {
                        return Err(err("malformed missing-value placeholder"));
                    }
                }
                fields.push((name, None));
            }
            Some(c) => {
                return Err(err(&format!(
                    "unexpected character {c:?} at value position"
                )))
            }
            None => return Err(err("missing value after ':'")),
        }
    }

    if fields.is_empty() {
        return Err(err("instance has no fields"));
    }
    Ok(ParsedInstance { fields })
}

/// Finds every contextualized instance (`[...]` group) embedded in a larger
/// text, parsing each. Used by the simulated LLM to extract data instances
/// from a full prompt. Unparseable groups are skipped.
pub fn extract_instances(text: &str) -> Vec<ParsedInstance> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' {
            // Scan to the matching ']' respecting quotes and escapes.
            let mut j = i + 1;
            let mut in_quote = false;
            let mut escaped = false;
            let mut end = None;
            while j < bytes.len() {
                let c = bytes[j];
                if escaped {
                    escaped = false;
                } else if in_quote {
                    match c {
                        b'\\' => escaped = true,
                        b'"' => in_quote = false,
                        _ => {}
                    }
                } else {
                    match c {
                        b'"' => in_quote = true,
                        b']' => {
                            end = Some(j);
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(end) = end {
                if let Ok(inst) = parse_instance(&text[i..=end]) {
                    out.push(inst);
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn restaurant() -> Record {
        let schema = Schema::all_text(&["name", "addr", "phone", "type", "city"])
            .unwrap()
            .shared();
        Record::new(
            schema,
            vec![
                Value::text("carey's corner"),
                Value::text("1215 powers ferry rd."),
                Value::text("770-933-0909"),
                Value::text("hamburgers"),
                Value::Missing,
            ],
        )
        .unwrap()
    }

    #[test]
    fn serialization_matches_paper_format() {
        let text = contextualize(&restaurant());
        assert_eq!(
            text,
            "[name: \"carey's corner\", addr: \"1215 powers ferry rd.\", \
             phone: \"770-933-0909\", type: \"hamburgers\", city: ???]"
        );
    }

    #[test]
    fn round_trip() {
        let r = restaurant();
        let parsed = parse_instance(&contextualize(&r)).unwrap();
        assert_eq!(parsed.fields.len(), 5);
        assert_eq!(parsed.get("phone"), Some(&Some("770-933-0909".to_string())));
        assert_eq!(parsed.get("city"), Some(&None));
    }

    #[test]
    fn escaping_round_trips() {
        let schema = Schema::all_text(&["quote"]).unwrap().shared();
        let r = Record::new(schema, vec![Value::text(r#"he said "hi\" to me"#)]).unwrap();
        let text = contextualize(&r);
        let parsed = parse_instance(&text).unwrap();
        assert_eq!(
            parsed.get("quote"),
            Some(&Some(r#"he said "hi\" to me"#.to_string()))
        );
    }

    #[test]
    fn selected_attributes_only() {
        let r = restaurant();
        let text = contextualize_selected(&r, &[2, 1]);
        assert_eq!(
            text,
            "[phone: \"770-933-0909\", addr: \"1215 powers ferry rd.\"]"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_instance("no brackets").is_err());
        assert!(parse_instance("[]").is_err());
        assert!(parse_instance("[a: unquoted]").is_err());
        assert!(parse_instance("[a: \"open").is_err());
        assert!(parse_instance("[a: ?]").is_err());
        assert!(parse_instance("[: \"v\"]").is_err());
    }

    #[test]
    fn extract_finds_multiple_instances() {
        let text = format!(
            "Question 1: Record is {}. What is the city?\nQuestion 2: Record is {}.",
            contextualize(&restaurant()),
            contextualize(&restaurant())
        );
        let found = extract_instances(&text);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].get("type"), Some(&Some("hamburgers".to_string())));
    }

    #[test]
    fn extract_skips_unparseable_brackets() {
        let text = "see [1] and [name: \"ok\"] and [broken";
        let found = extract_instances(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].get("name"), Some(&Some("ok".to_string())));
    }

    #[test]
    fn flat_text_skips_missing() {
        let parsed = parse_instance("[a: \"x\", b: ???, c: \"y z\"]").unwrap();
        assert_eq!(parsed.flat_text(), "x y z");
        assert_eq!(parsed.names(), vec!["a", "b", "c"]);
    }
}
