//! Dynamically typed cell values.

use std::fmt;

/// A single cell value in a relational table.
///
/// The paper's data model assumes all attributes are either numerical
/// (including binary) or textual (including categorical); `Missing` models
/// the `???` placeholder used for data-imputation targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A missing cell. Rendered as `???` in contextualized prompts (§3.3).
    Missing,
    /// A binary value.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// Free text or a categorical label.
    Text(String),
}

impl Value {
    /// Builds a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// True when the cell is [`Value::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Numeric view of the value, if it has one.
    ///
    /// `Bool` maps to 0/1 so that binary attributes count as numerical, as in
    /// the paper's data model.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Text view of the value, if it is textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value the way it appears inside a contextualized prompt:
    /// missing cells as `???`, everything else via `Display`.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Parses a raw string into the most specific value type.
    ///
    /// Empty strings and the `???` placeholder become [`Value::Missing`];
    /// integers, floats, and booleans are detected; everything else is text.
    pub fn infer(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed == "???" {
            return Value::Missing;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        match trimmed {
            "true" | "TRUE" | "True" => return Value::Bool(true),
            "false" | "FALSE" | "False" => return Value::Bool(false),
            _ => {}
        }
        Value::Text(trimmed.to_string())
    }

    /// A total-order key usable for sorting and deduplication (floats ordered
    /// by IEEE total ordering).
    pub fn sort_key(&self) -> (u8, i64, String) {
        match self {
            Value::Missing => (0, 0, String::new()),
            Value::Bool(b) => (1, *b as i64, String::new()),
            Value::Int(i) => (2, *i, String::new()),
            Value::Float(f) => (3, f.to_bits() as i64, String::new()),
            Value::Text(s) => (4, 0, s.clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Missing => write!(f, "???"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_renders_as_question_marks() {
        assert_eq!(Value::Missing.to_string(), "???");
        assert!(Value::Missing.is_missing());
    }

    #[test]
    fn infer_detects_types() {
        assert_eq!(Value::infer("42"), Value::Int(42));
        assert_eq!(Value::infer("-7"), Value::Int(-7));
        assert_eq!(Value::infer("3.25"), Value::Float(3.25));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("False"), Value::Bool(false));
        assert_eq!(Value::infer("hello"), Value::text("hello"));
        assert_eq!(Value::infer(""), Value::Missing);
        assert_eq!(Value::infer("???"), Value::Missing);
        assert_eq!(Value::infer("  padded  "), Value::text("padded"));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::text("x").as_f64(), None);
        assert_eq!(Value::Missing.as_f64(), None);
    }

    #[test]
    fn text_view() {
        assert_eq!(Value::text("abc").as_text(), Some("abc"));
        assert_eq!(Value::Int(1).as_text(), None);
    }

    #[test]
    fn float_display_keeps_one_decimal_for_integral() {
        assert_eq!(Value::Float(4.0).to_string(), "4.0");
        assert_eq!(Value::Float(4.5).to_string(), "4.5");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::text("s"));
    }

    #[test]
    fn sort_key_orders_distinct_variants() {
        let mut vals = vec![
            Value::text("b"),
            Value::Int(2),
            Value::Missing,
            Value::text("a"),
            Value::Int(1),
        ];
        vals.sort_by_key(|v| v.sort_key());
        assert_eq!(
            vals,
            vec![
                Value::Missing,
                Value::Int(1),
                Value::Int(2),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }
}
