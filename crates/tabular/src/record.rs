//! Records: one row bound to a shared schema.

use std::fmt;
use std::sync::Arc;

use crate::error::TabularError;
use crate::schema::Schema;
use crate::value::Value;

/// One row of a table.
///
/// A record holds its values plus an [`Arc`] to the schema they conform to,
/// so records can travel independently of their table (the paper's problem
/// definitions hand the LLM one record — or one pair — at a time).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    schema: Arc<Schema>,
    values: Vec<Value>,
}

impl Record {
    /// Builds a record, validating arity against the schema.
    pub fn new(schema: Arc<Schema>, values: Vec<Value>) -> Result<Self, TabularError> {
        if values.len() != schema.len() {
            return Err(TabularError::ArityMismatch {
                got: values.len(),
                expected: schema.len(),
            });
        }
        Ok(Record { schema, values })
    }

    /// The schema this record conforms to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All values in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at attribute `index`.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// The value of the attribute named `name`.
    pub fn get_by_name(&self, name: &str) -> Option<&Value> {
        self.schema.index_of(name).and_then(|i| self.values.get(i))
    }

    /// Replaces the value at `index`, returning the previous value.
    pub fn set(&mut self, index: usize, value: Value) -> Result<Value, TabularError> {
        if index >= self.values.len() {
            return Err(TabularError::AttributeIndexOutOfRange {
                index,
                len: self.values.len(),
            });
        }
        Ok(std::mem::replace(&mut self.values[index], value))
    }

    /// A copy of the record with the cell at `index` masked as
    /// [`Value::Missing`] — how data-imputation instances are produced.
    pub fn with_missing(&self, index: usize) -> Result<Record, TabularError> {
        let mut clone = self.clone();
        clone.set(index, Value::Missing)?;
        Ok(clone)
    }

    /// Projects the record onto the attributes at `indices` (feature
    /// selection, §3.4). The resulting record owns a fresh projected schema.
    pub fn project(&self, indices: &[usize]) -> Result<Record, TabularError> {
        let schema = self.schema.project(indices)?.shared();
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.values[i].clone());
        }
        Record::new(schema, values)
    }

    /// Indices of all missing cells.
    pub fn missing_indices(&self) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.is_missing().then_some(i))
            .collect()
    }

    /// Iterator over `(attribute name, value)` pairs.
    pub fn named_values(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.schema
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .zip(self.values.iter())
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::context::contextualize(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        let schema = Schema::all_text(&["name", "city"]).unwrap().shared();
        Record::new(
            schema,
            vec![Value::text("carey's corner"), Value::text("marietta")],
        )
        .unwrap()
    }

    #[test]
    fn arity_is_validated() {
        let schema = Schema::all_text(&["a"]).unwrap().shared();
        let err = Record::new(schema, vec![]).unwrap_err();
        assert!(matches!(
            err,
            TabularError::ArityMismatch {
                got: 0,
                expected: 1
            }
        ));
    }

    #[test]
    fn get_by_name_and_index_agree() {
        let r = sample();
        assert_eq!(r.get(1), r.get_by_name("city"));
        assert_eq!(r.get_by_name("nope"), None);
    }

    #[test]
    fn with_missing_masks_one_cell() {
        let r = sample().with_missing(1).unwrap();
        assert!(r.get(1).unwrap().is_missing());
        assert!(!r.get(0).unwrap().is_missing());
        assert_eq!(r.missing_indices(), vec![1]);
    }

    #[test]
    fn set_returns_previous() {
        let mut r = sample();
        let prev = r.set(0, Value::text("new")).unwrap();
        assert_eq!(prev, Value::text("carey's corner"));
        assert_eq!(r.get(0), Some(&Value::text("new")));
        assert!(r.set(9, Value::Missing).is_err());
    }

    #[test]
    fn projection_keeps_selected_attributes() {
        let r = sample();
        let p = r.project(&[1]).unwrap();
        assert_eq!(p.schema().names(), vec!["city"]);
        assert_eq!(p.values(), &[Value::text("marietta")]);
    }

    #[test]
    fn named_values_pairs_up() {
        let r = sample();
        let pairs: Vec<_> = r.named_values().collect();
        assert_eq!(pairs[0].0, "name");
        assert_eq!(pairs[1].1, &Value::text("marietta"));
    }
}
