//! Error type for the tabular substrate.

use std::fmt;

/// Errors produced while constructing or manipulating tables.
#[derive(Debug, Clone, PartialEq)]
pub enum TabularError {
    /// A schema contained two attributes with the same name.
    DuplicateAttribute {
        /// The offending attribute name.
        name: String,
    },
    /// A schema attribute had an empty name.
    EmptyAttributeName {
        /// Index of the offending attribute.
        index: usize,
    },
    /// A record's arity did not match its schema.
    ArityMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number of attributes in the schema.
        expected: usize,
    },
    /// An attribute index was out of range.
    AttributeIndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The schema length.
        len: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute {
        /// The requested name.
        name: String,
    },
    /// A CSV document failed to parse.
    CsvParse {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A contextualized instance string failed to parse.
    ContextParse {
        /// Human-readable reason.
        reason: String,
    },
    /// Two records from different schemas were combined.
    SchemaMismatch,
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name: {name:?}")
            }
            TabularError::EmptyAttributeName { index } => {
                write!(f, "attribute at index {index} has an empty name")
            }
            TabularError::ArityMismatch { got, expected } => {
                write!(
                    f,
                    "record has {got} values but schema has {expected} attributes"
                )
            }
            TabularError::AttributeIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "attribute index {index} out of range for schema of length {len}"
                )
            }
            TabularError::UnknownAttribute { name } => {
                write!(f, "unknown attribute: {name:?}")
            }
            TabularError::CsvParse { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            TabularError::ContextParse { reason } => {
                write!(f, "contextualized instance parse error: {reason}")
            }
            TabularError::SchemaMismatch => write!(f, "records belong to different schemas"),
        }
    }
}

impl std::error::Error for TabularError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TabularError::ArityMismatch {
            got: 2,
            expected: 3,
        };
        assert!(e.to_string().contains("2 values"));
        assert!(e.to_string().contains("3 attributes"));
        let e = TabularError::CsvParse {
            line: 7,
            reason: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
