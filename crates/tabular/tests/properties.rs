//! Property tests for the tabular substrate: contextualization and CSV are
//! lossless round trips for arbitrary content.

use std::sync::Arc;

use proptest::prelude::*;

use dprep_tabular::context::{contextualize, parse_instance};
use dprep_tabular::csv::{read_csv, write_csv};
use dprep_tabular::{Record, Schema, Value};

/// Attribute names: nonempty, no grammar metacharacters (`:,"[]` and
/// newline are reserved by the contextualization grammar).
fn attr_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_ -]{0,14}[a-z0-9]".prop_map(|s| s)
}

/// Cell text: anything printable, including quotes and backslashes (the
/// grammar escapes them).
fn cell_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,30}").expect("valid regex")
}

fn record_strategy() -> impl Strategy<Value = (Vec<String>, Vec<Option<String>>)> {
    proptest::collection::vec((attr_name(), proptest::option::of(cell_text())), 1..6).prop_map(
        |pairs| {
            // Deduplicate names while preserving order.
            let mut names = Vec::new();
            let mut values = Vec::new();
            for (n, v) in pairs {
                if !names.contains(&n) {
                    names.push(n);
                    values.push(v);
                }
            }
            (names, values)
        },
    )
}

proptest! {
    #[test]
    fn contextualization_round_trips((names, values) in record_strategy()) {
        let schema = Schema::all_text(&names.iter().map(String::as_str).collect::<Vec<_>>())
            .expect("unique names")
            .shared();
        let record = Record::new(
            Arc::clone(&schema),
            values
                .iter()
                .map(|v| match v {
                    // The grammar renders both missing and the literal "???"
                    // as ???, so normalize the expectation.
                    Some(s) if s != "???" => Value::text(s.clone()),
                    _ => Value::Missing,
                })
                .collect(),
        )
        .expect("arity");
        let text = contextualize(&record);
        let parsed = parse_instance(&text).expect("own output parses");
        prop_assert_eq!(parsed.fields.len(), names.len());
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(&parsed.fields[i].0, name);
            match record.get(i).unwrap() {
                Value::Missing => prop_assert_eq!(&parsed.fields[i].1, &None),
                Value::Text(s) => prop_assert_eq!(parsed.fields[i].1.as_deref(), Some(s.as_str())),
                _ => unreachable!("all-text schema"),
            }
        }
    }

    #[test]
    fn csv_round_trips((names, values) in record_strategy()) {
        let schema = Schema::all_text(&names.iter().map(String::as_str).collect::<Vec<_>>())
            .expect("unique names")
            .shared();
        let mut table = dprep_tabular::Table::new(Arc::clone(&schema));
        table
            .push_values(
                values
                    .iter()
                    .map(|v| match v {
                        // Empty strings and "???" read back as missing.
                        Some(s) if !s.is_empty() && s != "???" => Value::text(s.clone()),
                        _ => Value::Missing,
                    })
                    .collect(),
            )
            .expect("arity");
        let csv = write_csv(&table);
        let back = read_csv(&csv).expect("own output parses");
        prop_assert_eq!(back.schema().names(), table.schema().names());
        prop_assert_eq!(back.row(0).unwrap().values(), table.row(0).unwrap().values());
    }

    #[test]
    fn parse_instance_never_panics(text in proptest::string::string_regex(".{0,120}").unwrap()) {
        // Arbitrary garbage may fail to parse, but must never panic.
        let _ = parse_instance(&text);
        let _ = dprep_tabular::context::extract_instances(&text);
    }
}
