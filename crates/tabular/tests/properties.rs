//! Property-style tests for the tabular substrate: contextualization and
//! CSV are lossless round trips for arbitrary content.
//!
//! Cases are generated with the in-tree [`dprep_rng`] generator from a
//! fixed seed, so every run exercises the same inputs.

use std::sync::Arc;

use dprep_rng::Rng;
use dprep_tabular::context::{contextualize, parse_instance};
use dprep_tabular::csv::{read_csv, write_csv};
use dprep_tabular::{Record, Schema, Value};

const CASES: usize = 256;

/// Attribute names: nonempty, no grammar metacharacters (`:,"[]` and
/// newline are reserved by the contextualization grammar). Mirrors the
/// old proptest regex `[a-z][a-z0-9_ -]{0,14}[a-z0-9]`.
fn attr_name(rng: &mut Rng) -> String {
    let first: Vec<u8> = (b'a'..=b'z').collect();
    let mid: Vec<u8> = (b'a'..=b'z')
        .chain(b'0'..=b'9')
        .chain([b'_', b' ', b'-'])
        .collect();
    let last: Vec<u8> = (b'a'..=b'z').chain(b'0'..=b'9').collect();
    let mut s = rng.ascii_string(&first, 1);
    let len = rng.range_incl(0usize, 14);
    s.push_str(&rng.ascii_string(&mid, len));
    s.push_str(&rng.ascii_string(&last, 1));
    s
}

/// Cell text: anything printable, including quotes and backslashes (the
/// grammar escapes them).
fn cell_text(rng: &mut Rng) -> String {
    let alphabet: Vec<u8> = (b' '..=b'~').collect();
    let len = rng.range_incl(0usize, 30);
    rng.ascii_string(&alphabet, len)
}

/// 1-5 (name, optional cell) pairs with unique names, order preserved.
fn random_record(rng: &mut Rng) -> (Vec<String>, Vec<Option<String>>) {
    let mut names = Vec::new();
    let mut values = Vec::new();
    for _ in 0..rng.range_incl(1usize, 5) {
        let n = attr_name(rng);
        let v = if rng.bool(0.5) {
            Some(cell_text(rng))
        } else {
            None
        };
        if !names.contains(&n) {
            names.push(n);
            values.push(v);
        }
    }
    (names, values)
}

#[test]
fn contextualization_round_trips() {
    let mut rng = Rng::seed_from_u64(0x7ab_0001);
    for _ in 0..CASES {
        let (names, values) = random_record(&mut rng);
        let schema = Schema::all_text(&names.iter().map(String::as_str).collect::<Vec<_>>())
            .expect("unique names")
            .shared();
        let record = Record::new(
            Arc::clone(&schema),
            values
                .iter()
                .map(|v| match v {
                    // The grammar renders both missing and the literal "???"
                    // as ???, so normalize the expectation.
                    Some(s) if s != "???" => Value::text(s.clone()),
                    _ => Value::Missing,
                })
                .collect(),
        )
        .expect("arity");
        let text = contextualize(&record);
        let parsed = parse_instance(&text).expect("own output parses");
        assert_eq!(parsed.fields.len(), names.len());
        for (i, name) in names.iter().enumerate() {
            assert_eq!(&parsed.fields[i].0, name);
            match record.get(i).unwrap() {
                Value::Missing => assert_eq!(parsed.fields[i].1, None),
                Value::Text(s) => assert_eq!(parsed.fields[i].1.as_deref(), Some(s.as_str())),
                _ => unreachable!("all-text schema"),
            }
        }
    }
}

#[test]
fn csv_round_trips() {
    let mut rng = Rng::seed_from_u64(0x7ab_0002);
    for _ in 0..CASES {
        let (names, values) = random_record(&mut rng);
        let schema = Schema::all_text(&names.iter().map(String::as_str).collect::<Vec<_>>())
            .expect("unique names")
            .shared();
        let mut table = dprep_tabular::Table::new(Arc::clone(&schema));
        table
            .push_values(
                values
                    .iter()
                    .map(|v| match v {
                        // Empty strings and "???" read back as missing.
                        Some(s) if !s.is_empty() && s != "???" => Value::text(s.clone()),
                        _ => Value::Missing,
                    })
                    .collect(),
            )
            .expect("arity");
        let csv = write_csv(&table);
        let back = read_csv(&csv).expect("own output parses");
        assert_eq!(back.schema().names(), table.schema().names());
        assert_eq!(
            back.row(0).unwrap().values(),
            table.row(0).unwrap().values()
        );
    }
}

#[test]
fn parse_instance_never_panics() {
    let mut rng = Rng::seed_from_u64(0x7ab_0003);
    // Arbitrary printable garbage may fail to parse, but must never panic.
    let alphabet: Vec<u8> = (b' '..=b'~').chain([b'\n', b'\t']).collect();
    for _ in 0..CASES {
        let len = rng.range_incl(0usize, 120);
        let text = rng.ascii_string(&alphabet, len);
        let _ = parse_instance(&text);
        let _ = dprep_tabular::context::extract_instances(&text);
    }
}
