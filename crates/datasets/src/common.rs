//! Shared generator machinery: text perturbation and entity-matching pair
//! construction.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_prompt::{FewShotExample, TaskInstance};
use dprep_tabular::{Record, Schema, Value};

use crate::Label;

/// Picks a random element of a pool.
pub fn pick<'a>(rng: &mut Rng, pool: &[&'a str]) -> &'a str {
    pool[rng.range(0, pool.len())]
}

/// Introduces one character-level typo (substitution, deletion, or
/// duplication) into `s`. Strings shorter than 3 characters are returned
/// unchanged.
pub fn typo(rng: &mut Rng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return s.to_string();
    }
    // Target an alphabetic position so typos look like misspellings.
    let positions: Vec<usize> = (0..chars.len())
        .filter(|&i| chars[i].is_alphabetic())
        .collect();
    if positions.is_empty() {
        return s.to_string();
    }
    let at = positions[rng.range(0, positions.len())];
    let mut out = chars.clone();
    match rng.range(0, 3u8) {
        0 => {
            // Substitute with a nearby letter.
            let replacement = (b'a' + rng.range(0, 26u8)) as char;
            out[at] = replacement;
        }
        1 => {
            out.remove(at);
        }
        _ => {
            out.insert(at, chars[at]);
        }
    }
    out.into_iter().collect()
}

/// Drops one random word from a multi-word string.
pub fn drop_word(rng: &mut Rng, s: &str) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    if words.len() < 2 {
        return s.to_string();
    }
    let at = rng.range(0, words.len());
    words
        .iter()
        .enumerate()
        .filter_map(|(i, w)| (i != at).then_some(*w))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Swaps two adjacent words.
pub fn swap_words(rng: &mut Rng, s: &str) -> String {
    let mut words: Vec<&str> = s.split_whitespace().collect();
    if words.len() < 2 {
        return s.to_string();
    }
    let at = rng.range(0, words.len() - 1);
    words.swap(at, at + 1);
    words.join(" ")
}

/// Replaces phrase occurrences per an alias map (`canonical -> variant`).
pub fn apply_aliases(s: &str, aliases: &[(&str, &str)]) -> String {
    let mut out = s.to_string();
    for (canonical, variant) in aliases {
        if out.contains(canonical) {
            out = out.replace(canonical, variant);
        }
    }
    out
}

/// Text/numeric perturbation strengths used when rendering an entity as a
/// noisy record.
#[derive(Debug, Clone, Copy)]
pub struct Noise {
    /// Probability of substituting known alias variants.
    pub alias: f64,
    /// Probability of dropping a word per textual value.
    pub word_drop: f64,
    /// Probability of a character typo per textual value.
    pub typo: f64,
    /// Probability of swapping adjacent words.
    pub reorder: f64,
    /// Relative jitter applied to numeric values (e.g. 0.02 = ±2%).
    pub numeric_jitter: f64,
    /// Probability of blanking a value entirely (missing data).
    pub blank: f64,
}

impl Noise {
    /// Light noise: near-identical variants (clean benchmarks).
    pub fn light() -> Self {
        Noise {
            alias: 0.2,
            word_drop: 0.05,
            typo: 0.03,
            reorder: 0.05,
            numeric_jitter: 0.0,
            blank: 0.01,
        }
    }

    /// Medium noise.
    pub fn medium() -> Self {
        Noise {
            alias: 0.4,
            word_drop: 0.2,
            typo: 0.08,
            reorder: 0.15,
            numeric_jitter: 0.02,
            blank: 0.05,
        }
    }

    /// Heavy noise: the hard benchmarks (Amazon-Google, Walmart-Amazon).
    pub fn heavy() -> Self {
        Noise {
            alias: 0.55,
            word_drop: 0.35,
            typo: 0.12,
            reorder: 0.25,
            numeric_jitter: 0.06,
            blank: 0.12,
        }
    }
}

/// Renders one canonical value as a noisy variant.
pub fn perturb_value(
    rng: &mut Rng,
    value: &Value,
    noise: &Noise,
    aliases: &[(&str, &str)],
) -> Value {
    if rng.f64() < noise.blank {
        return Value::Missing;
    }
    match value {
        Value::Text(s) => {
            let mut out = s.clone();
            if rng.f64() < noise.alias {
                out = apply_aliases(&out, aliases);
            }
            if rng.f64() < noise.word_drop {
                out = drop_word(rng, &out);
            }
            if rng.f64() < noise.reorder {
                out = swap_words(rng, &out);
            }
            if rng.f64() < noise.typo {
                out = typo(rng, &out);
            }
            Value::Text(out)
        }
        Value::Int(i) => {
            if noise.numeric_jitter > 0.0 && rng.f64() < 0.5 {
                let jitter = 1.0 + (rng.f64() * 2.0 - 1.0) * noise.numeric_jitter;
                Value::Int(((*i as f64) * jitter).round() as i64)
            } else {
                value.clone()
            }
        }
        Value::Float(f) => {
            if noise.numeric_jitter > 0.0 && rng.f64() < 0.5 {
                let jitter = 1.0 + (rng.f64() * 2.0 - 1.0) * noise.numeric_jitter;
                Value::Float((f * jitter * 100.0).round() / 100.0)
            } else {
                value.clone()
            }
        }
        other => other.clone(),
    }
}

fn perturb_record(
    rng: &mut Rng,
    schema: &Arc<Schema>,
    values: &[Value],
    noise: &Noise,
    aliases: &[(&str, &str)],
) -> Record {
    let perturbed: Vec<Value> = values
        .iter()
        .map(|v| perturb_value(rng, v, noise, aliases))
        .collect();
    Record::new(Arc::clone(schema), perturbed).expect("generator arity is fixed")
}

/// Configuration for entity-matching pair construction.
#[derive(Debug, Clone, Copy)]
pub struct EmPairConfig {
    /// Total pairs to generate.
    pub n_pairs: usize,
    /// Fraction of matching pairs.
    pub pos_rate: f64,
    /// Among negatives, the fraction drawn from the same entity family
    /// (similar but different — the hard cases).
    pub hard_neg_rate: f64,
    /// Noise for rendering record variants.
    pub noise: Noise,
}

/// Builds entity-matching pairs from families of canonical entities.
///
/// A *family* groups entities that resemble each other (same product line,
/// same paper venue-year, …): positives take one entity and render two
/// noisy variants; hard negatives pair two distinct entities of one family;
/// easy negatives pair entities across families.
pub fn make_em_pairs(
    schema: &Arc<Schema>,
    families: &[Vec<Vec<Value>>],
    config: &EmPairConfig,
    aliases: &[(&str, &str)],
    rng: &mut Rng,
) -> (Vec<TaskInstance>, Vec<Label>) {
    assert!(!families.is_empty(), "need at least one entity family");
    let multi_member: Vec<usize> = families
        .iter()
        .enumerate()
        .filter_map(|(i, f)| (f.len() >= 2).then_some(i))
        .collect();

    let mut instances = Vec::with_capacity(config.n_pairs);
    let mut labels = Vec::with_capacity(config.n_pairs);
    // Light noise for the "other side" of negatives keeps them realistic.
    let light = Noise {
        typo: config.noise.typo * 0.5,
        word_drop: config.noise.word_drop * 0.5,
        ..config.noise
    };

    for _ in 0..config.n_pairs {
        let is_pos = rng.f64() < config.pos_rate;
        if is_pos {
            let family = &families[rng.range(0, families.len())];
            let entity = &family[rng.range(0, family.len())];
            let a = perturb_record(rng, schema, entity, &config.noise, aliases);
            let b = perturb_record(rng, schema, entity, &config.noise, aliases);
            instances.push(TaskInstance::EntityMatching { a, b });
            labels.push(Label::YesNo(true));
        } else {
            let hard = !multi_member.is_empty() && rng.f64() < config.hard_neg_rate;
            let (ea, eb) = if hard {
                let family = &families[multi_member[rng.range(0, multi_member.len())]];
                let i = rng.range(0, family.len());
                let mut j = rng.range(0, family.len());
                while j == i {
                    j = rng.range(0, family.len());
                }
                (&family[i], &family[j])
            } else {
                let fi = rng.range(0, families.len());
                let mut fj = rng.range(0, families.len());
                while families.len() > 1 && fj == fi {
                    fj = rng.range(0, families.len());
                }
                let fa = &families[fi];
                let fb = &families[fj];
                let i = rng.range(0, fa.len());
                let mut j = rng.range(0, fb.len());
                // With a single family the two sides coincide; a "negative"
                // must still be two distinct entities.
                if fi == fj {
                    assert!(
                        fb.len() >= 2,
                        "cannot draw a negative pair from one single-member family"
                    );
                    while j == i {
                        j = rng.range(0, fb.len());
                    }
                }
                (&fa[i], &fb[j])
            };
            let a = perturb_record(rng, schema, ea, &light, aliases);
            let b = perturb_record(rng, schema, eb, &light, aliases);
            instances.push(TaskInstance::EntityMatching { a, b });
            labels.push(Label::YesNo(false));
        }
    }
    (instances, labels)
}

/// Builds an EM few-shot pool: `n_pos` positives and `n_neg` negatives with
/// generic but plausible reasoning strings.
pub fn make_em_few_shot(
    schema: &Arc<Schema>,
    families: &[Vec<Vec<Value>>],
    config: &EmPairConfig,
    aliases: &[(&str, &str)],
    rng: &mut Rng,
    n_pos: usize,
    n_neg: usize,
) -> Vec<FewShotExample> {
    let mut shots = Vec::with_capacity(n_pos + n_neg);
    let pair_cfg = EmPairConfig {
        n_pairs: 1,
        ..*config
    };
    let mut need_pos = n_pos;
    let mut need_neg = n_neg;
    // Alternate so the pool interleaves labels.
    while need_pos + need_neg > 0 {
        let want_pos = need_pos >= need_neg && need_pos > 0;
        let forced = EmPairConfig {
            pos_rate: if want_pos { 1.0 } else { 0.0 },
            ..pair_cfg
        };
        let (mut insts, mut labels) = make_em_pairs(schema, families, &forced, aliases, rng);
        let inst = insts.pop().expect("n_pairs = 1");
        let label = labels.pop().expect("n_pairs = 1");
        let is_match = label.as_bool().expect("EM labels are boolean");
        let reason = if is_match {
            "The two records describe the same item; the differences are only \
             formatting, abbreviations, or small omissions."
        } else {
            "The records disagree on identifying fields, so they describe \
             different items."
        };
        shots.push(FewShotExample::new(
            inst,
            reason,
            if is_match { "yes" } else { "no" },
        ));
        if want_pos {
            need_pos -= 1;
        } else {
            need_neg -= 1;
        }
    }
    shots
}

/// Derives a child RNG for a named sub-stream, so adding one generator never
/// shifts another's randomness.
pub fn sub_rng(seed: u64, label: &str) -> Rng {
    let mut h: u64 = seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    Rng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_prompt::Task;

    fn rng() -> Rng {
        Rng::seed_from_u64(1)
    }

    #[test]
    fn typo_changes_longer_strings() {
        let mut r = rng();
        let mut changed = 0;
        for _ in 0..50 {
            if typo(&mut r, "hospital") != "hospital" {
                changed += 1;
            }
        }
        assert!(changed > 40);
        assert_eq!(typo(&mut r, "ab"), "ab");
    }

    #[test]
    fn drop_and_swap_preserve_single_words() {
        let mut r = rng();
        assert_eq!(drop_word(&mut r, "single"), "single");
        assert_eq!(swap_words(&mut r, "single"), "single");
        let dropped = drop_word(&mut r, "one two three");
        assert_eq!(dropped.split_whitespace().count(), 2);
    }

    #[test]
    fn aliases_substitute_phrases() {
        let out = apply_aliases("crisp india pale ale brew", &[("india pale ale", "ipa")]);
        assert_eq!(out, "crisp ipa brew");
    }

    #[test]
    fn em_pairs_have_requested_shape() {
        let schema = Schema::all_text(&["title", "brand"]).unwrap().shared();
        let families = vec![
            vec![
                vec![
                    Value::text("sony wireless headphones model a"),
                    Value::text("sony"),
                ],
                vec![
                    Value::text("sony wireless headphones model b"),
                    Value::text("sony"),
                ],
            ],
            vec![vec![
                Value::text("garmin gps navigator classic"),
                Value::text("garmin"),
            ]],
        ];
        let config = EmPairConfig {
            n_pairs: 200,
            pos_rate: 0.3,
            hard_neg_rate: 0.5,
            noise: Noise::medium(),
        };
        let mut r = rng();
        let (instances, labels) = make_em_pairs(&schema, &families, &config, &[], &mut r);
        assert_eq!(instances.len(), 200);
        let pos = labels.iter().filter(|l| l.as_bool() == Some(true)).count();
        assert!((40..=80).contains(&pos), "pos = {pos}");
        assert!(instances.iter().all(|i| i.task() == Task::EntityMatching));
    }

    #[test]
    fn few_shot_pool_balances_labels() {
        let schema = Schema::all_text(&["title"]).unwrap().shared();
        let families = vec![
            vec![vec![Value::text("alpha product one")]],
            vec![vec![Value::text("beta gadget two")]],
        ];
        let config = EmPairConfig {
            n_pairs: 1,
            pos_rate: 0.5,
            hard_neg_rate: 0.0,
            noise: Noise::light(),
        };
        let mut r = rng();
        let shots = make_em_few_shot(&schema, &families, &config, &[], &mut r, 5, 5);
        assert_eq!(shots.len(), 10);
        let yes = shots.iter().filter(|s| s.answer == "yes").count();
        assert_eq!(yes, 5);
    }

    #[test]
    fn sub_rng_streams_are_independent() {
        let mut a1 = sub_rng(9, "alpha");
        let mut a2 = sub_rng(9, "alpha");
        let mut b = sub_rng(9, "beta");
        let x1 = a1.next_u64();
        let x2 = a2.next_u64();
        let y = b.next_u64();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }
}
