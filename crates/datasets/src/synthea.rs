//! The **Synthea** schema-matching dataset (synthetic health records).
//!
//! 120 attribute pairs between two electronic-health-record schemas, ~25%
//! positive. Positives come in three hardness tiers:
//!
//! * *easy* — names already similar (`birthdate` vs `birth_date`),
//! * *bridgeable* — cryptic vs descriptive names whose equivalence is a
//!   memorized synonym fact (`pt_id` vs `patient identifier`),
//! * *hard* — no synonym fact and weak lexical overlap; only description
//!   reasoning can catch them, and often doesn't.
//!
//! Negatives share vocabulary across descriptions (`date`, `code`,
//! `patient`), which is why this benchmark is the paper's hardest: SMAT
//! scores 38.5 F1, GPT-4 only 66.7.

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::{AttrSpec, FewShotExample, Task, TaskInstance};

use crate::common::sub_rng;
use crate::{scaled, Dataset, Label};

/// (schema-A name, schema-B name, schema-A description, schema-B
/// description, hardness tier 0=easy / 1=bridgeable / 2=hard)
///
/// The B descriptions paraphrase rather than extend the A descriptions, so
/// plain token overlap is an imperfect signal — as it is on the real
/// Synthea correspondence benchmark.
const CONCEPTS: &[(&str, &str, &str, &str, u8)] = &[
    (
        "birthdate",
        "birth_date",
        "date the patient was born",
        "dob captured at registration",
        0,
    ),
    (
        "deathdate",
        "death_date",
        "date the patient died",
        "deceased date if applicable",
        0,
    ),
    (
        "patient_address",
        "addr",
        "street address of the patient",
        "home address line",
        0,
    ),
    (
        "marital_status",
        "marital",
        "marital status of the patient",
        "married single or widowed flag",
        0,
    ),
    (
        "first_name",
        "given_name",
        "given name of the patient",
        "first part of the legal name",
        0,
    ),
    (
        "last_name",
        "family_name",
        "family name of the patient",
        "surname on record",
        0,
    ),
    (
        "pt_id",
        "person_ref",
        "unique identifier of the patient",
        "primary key of the person table",
        1,
    ),
    (
        "enc_id",
        "visit_occurrence",
        "identifier of the clinical encounter",
        "visit this row belongs to",
        1,
    ),
    (
        "px_code",
        "proc_concept",
        "code of the performed procedure",
        "intervention coding value",
        1,
    ),
    (
        "dx_code",
        "cond_concept",
        "code of the primary diagnosis",
        "condition classification entry",
        1,
    ),
    (
        "rx_ndc",
        "drug_concept",
        "national drug code of the prescription",
        "dispensed drug identifier",
        1,
    ),
    (
        "org_npi",
        "care_site",
        "identifier of the care organization",
        "facility registry number",
        1,
    ),
    (
        "svc_dt",
        "performed",
        "timestamp when the service took place",
        "when it happened",
        2,
    ),
    (
        "amt_due",
        "base_cost",
        "monetary amount charged for the encounter",
        "price before adjustments",
        2,
    ),
    (
        "cov_pct",
        "payer_coverage",
        "portion covered by the insurance payer",
        "insurer share",
        2,
    ),
    (
        "loinc_cd",
        "observation type",
        "kind of clinical observation recorded",
        "what was measured",
        2,
    ),
    (
        "ethn",
        "ethnicity",
        "ethnicity of the patient",
        "demographic background field",
        2,
    ),
    (
        "ssn_last4",
        "tail_number",
        "last digits of the social security number",
        "suffix of the national id",
        2,
    ),
];

/// Unrelated filler attributes used to build negatives.
const FILLERS: &[(&str, &str)] = &[
    ("allergy_onset", "date the allergy was first recorded"),
    ("imm_dose", "dose number of the immunization"),
    ("careplan_stop", "date the care plan ended"),
    ("device_udi", "unique device identifier in use"),
    ("supply_qty", "quantity of supplies dispensed"),
    ("img_modality", "modality code of the imaging study"),
    ("claim_status", "status of the insurance claim"),
    ("appt_slot", "scheduled time slot of the appointment"),
    ("lab_value", "numeric result of the laboratory test"),
    ("note_text", "free text of the clinical note"),
];

fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for (a, b, _, _, tier) in CONCEPTS {
        if *tier == 1 {
            kb.add(Fact::AttrSynonym {
                a: a.replace('_', " "),
                b: b.replace('_', " "),
            });
        }
    }
    // A few extra common health-schema synonyms (knowledge a strong model
    // has whether or not this dataset tests them).
    kb.add(Fact::AttrSynonym {
        a: "dob".into(),
        b: "birth date".into(),
    });
    kb.add(Fact::AttrSynonym {
        a: "ssn".into(),
        b: "social security number".into(),
    });
    kb
}

type Concept = (&'static str, &'static str, &'static str, &'static str, u8);

fn desc_a(concept: &Concept) -> String {
    concept.2.to_string()
}

/// Schema B paraphrases the concept, with a generic tail shared across
/// concepts to create cross-concept overlap.
fn desc_b(rng: &mut Rng, concept: &Concept) -> String {
    let tails = [
        "as recorded in the source system",
        "of the subject record",
        "per the export specification",
        "",
    ];
    let tail = tails[rng.range(0, tails.len())];
    if tail.is_empty() {
        concept.3.to_string()
    } else {
        format!("{} {}", concept.3, tail)
    }
}

/// Generates the Synthea dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "synthea");
    let n = scaled(120, scale, 8);
    let n_pos = (n as f64 * 0.25).round() as usize;

    let mut instances = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);

    for i in 0..n_pos {
        let concept = &CONCEPTS[i % CONCEPTS.len()];
        let a = AttrSpec::new(concept.0.replace('_', " "), desc_a(concept));
        let b = AttrSpec::new(concept.1.replace('_', " "), desc_b(&mut rng, concept));
        instances.push(TaskInstance::SchemaMatching { a, b });
        labels.push(Label::YesNo(true));
    }
    for _ in n_pos..n {
        // Negative: one concept attribute against a filler or a different
        // concept — descriptions share generic words.
        let left = &CONCEPTS[rng.range(0, CONCEPTS.len())];
        let a = AttrSpec::new(left.0.replace('_', " "), desc_a(left));
        let b = if rng.f64() < 0.5 {
            let f = FILLERS[rng.range(0, FILLERS.len())];
            // Fillers get the same export-spec tails as real schema-B
            // descriptions, so tail phrases carry no label signal.
            let tails = [
                "as recorded in the source system",
                "of the subject record",
                "per the export specification",
                "",
            ];
            let tail = tails[rng.range(0, tails.len())];
            let desc = if tail.is_empty() {
                f.1.to_string()
            } else {
                format!("{} {}", f.1, tail)
            };
            AttrSpec::new(f.0.replace('_', " "), desc)
        } else {
            let mut other = &CONCEPTS[rng.range(0, CONCEPTS.len())];
            while other.0 == left.0 {
                other = &CONCEPTS[rng.range(0, CONCEPTS.len())];
            }
            AttrSpec::new(other.1.replace('_', " "), desc_b(&mut rng, other))
        };
        instances.push(TaskInstance::SchemaMatching { a, b });
        labels.push(Label::YesNo(false));
    }

    // Shuffle so positives are not front-loaded (batching would otherwise
    // create label-pure batches).
    let mut order: Vec<usize> = (0..instances.len()).collect();
    rng.shuffle(&mut order);
    let instances: Vec<_> = order.iter().map(|&i| instances[i].clone()).collect();
    let labels: Vec<_> = order.iter().map(|&i| labels[i].clone()).collect();

    // Few-shot: 3 examples (the paper's count for SM): 2 positive tiers + 1
    // negative, drawn from concepts/fillers not used verbatim above is not
    // feasible at full scale, so reuse the catalog with fresh phrasing.
    let pos_easy = &CONCEPTS[0];
    let pos_bridge = &CONCEPTS[7];
    let neg = (&CONCEPTS[2], FILLERS[3]);
    let few_shot = vec![
        FewShotExample::new(
            TaskInstance::SchemaMatching {
                a: AttrSpec::new(pos_easy.0.replace('_', " "), desc_a(pos_easy)),
                b: AttrSpec::new(pos_easy.1.replace('_', " "), desc_b(&mut rng, pos_easy)),
            },
            "Both names denote the date of birth; the descriptions agree.",
            "yes",
        ),
        FewShotExample::new(
            TaskInstance::SchemaMatching {
                a: AttrSpec::new(pos_bridge.0.replace('_', " "), desc_a(pos_bridge)),
                b: AttrSpec::new(pos_bridge.1.replace('_', " "), desc_b(&mut rng, pos_bridge)),
            },
            "\"enc id\" abbreviates the encounter identifier that the other \
             attribute spells out; the descriptions describe the same concept.",
            "yes",
        ),
        FewShotExample::new(
            TaskInstance::SchemaMatching {
                a: AttrSpec::new(neg.0 .0.replace('_', " "), desc_a(neg.0)),
                b: AttrSpec::new(neg.1 .0.replace('_', " "), neg.1 .1),
            },
            "An address and a device identifier are unrelated concepts even \
             though both descriptions mention the patient record.",
            "no",
        ),
    ];

    Dataset {
        name: "Synthea",
        task: Task::SchemaMatching,
        instances,
        labels,
        few_shot,
        kb: knowledge_base(),
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_120_with_quarter_positives() {
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 120);
        let pos = ds
            .labels
            .iter()
            .filter(|l| l.as_bool() == Some(true))
            .count();
        assert_eq!(pos, 30);
        ds.validate().unwrap();
    }

    #[test]
    fn three_few_shot_examples() {
        let ds = generate(0.2, 1);
        assert_eq!(ds.few_shot.len(), 3);
        let yes = ds.few_shot.iter().filter(|s| s.answer == "yes").count();
        assert_eq!(yes, 2);
    }

    #[test]
    fn bridgeable_pairs_have_synonym_facts() {
        let ds = generate(1.0, 2);
        let mem = dprep_llm::knowledge::Memorizer {
            model_name: "oracle".into(),
            coverage: 1.0,
            seed: 0,
        };
        assert!(ds.kb.are_synonyms(&mem, "pt id", "person ref"));
        assert!(ds.kb.are_synonyms(&mem, "dx code", "cond concept"));
        assert!(!ds.kb.are_synonyms(&mem, "birthdate", "death date"));
    }

    #[test]
    fn positives_not_front_loaded() {
        let ds = generate(1.0, 3);
        let first_half_pos = ds.labels[..60]
            .iter()
            .filter(|l| l.as_bool() == Some(true))
            .count();
        assert!(
            (5..=25).contains(&first_half_pos),
            "shuffle failed: {first_half_pos}"
        );
    }
}
