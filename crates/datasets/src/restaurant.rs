//! The **Restaurant** data-imputation dataset.
//!
//! 86 test instances: `[name, addr, phone, type, city: ???]` — the paper's
//! running example. The hidden city is implied by two memorized evidence
//! routes: the phone's area code (always present) and the street name
//! (present in every address; streets are deterministically assigned to
//! cities). A model that forgot the area-code fact can still recover the
//! city from the street cue, so accuracy degrades gracefully with
//! knowledge coverage, mirroring the GPT-3 88.4 / GPT-3.5 94.2 / GPT-4
//! 97.7 ladder.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::{FewShotExample, Task, TaskInstance};
use dprep_tabular::{AttrType, Record, Schema, Value};

use crate::common::{pick, sub_rng};
use crate::vocab::{
    AREA_CODES, CITIES, CUISINES, RESTAURANT_LEADS, RESTAURANT_TAILS, STREETS, STREET_SUFFIXES,
};
use crate::{scaled, Dataset, Label};

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("name", AttrType::Text),
        ("addr", AttrType::Text),
        ("phone", AttrType::Text),
        ("type", AttrType::Text),
        ("city", AttrType::Text),
    ])
    .expect("static schema")
    .shared()
}

/// Streets are partitioned across cities: street `i` belongs to city
/// `i % CITIES.len()`.
fn street_city(street_idx: usize) -> &'static str {
    CITIES[street_idx % CITIES.len()]
}

struct Restaurant {
    name: String,
    addr: String,
    phone: String,
    cuisine: &'static str,
    city: &'static str,
}

fn make_restaurant(rng: &mut Rng) -> Restaurant {
    let city_idx = rng.range(0, CITIES.len());
    // Choose a street belonging to the chosen city.
    let mut street_idx = rng.range(0, STREETS.len());
    while street_city(street_idx) != CITIES[city_idx] {
        street_idx = (street_idx + 1) % STREETS.len();
    }
    Restaurant {
        name: format!(
            "{} {}",
            pick(rng, RESTAURANT_LEADS),
            pick(rng, RESTAURANT_TAILS)
        ),
        addr: format!(
            "{} {} {}",
            rng.range(100, 9999),
            STREETS[street_idx],
            pick(rng, STREET_SUFFIXES)
        ),
        phone: format!(
            "{}-{}-{:04}",
            AREA_CODES[city_idx],
            rng.range(200, 999),
            rng.range(0, 10_000)
        ),
        cuisine: pick(rng, CUISINES),
        city: CITIES[city_idx],
    }
}

fn to_instance(schema: &Arc<Schema>, r: &Restaurant) -> (TaskInstance, Label) {
    let record = Record::new(
        Arc::clone(schema),
        vec![
            Value::text(r.name.clone()),
            Value::text(r.addr.clone()),
            Value::text(r.phone.clone()),
            Value::text(r.cuisine),
            Value::Missing,
        ],
    )
    .expect("fixed arity");
    (
        TaskInstance::Imputation {
            record,
            attribute: "city".into(),
        },
        Label::Value(r.city.to_string()),
    )
}

fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for (i, city) in CITIES.iter().enumerate() {
        kb.add(Fact::AreaCode {
            prefix: AREA_CODES[i].to_string(),
            city: (*city).to_string(),
        });
        kb.add(Fact::LexiconMember {
            domain: "city".into(),
            value: (*city).to_string(),
        });
    }
    for (i, street) in STREETS.iter().enumerate() {
        kb.add(Fact::Cue {
            attribute: "city".into(),
            token: (*street).to_string(),
            value: street_city(i).to_string(),
        });
    }
    kb
}

/// Generates the Restaurant dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "restaurant");
    let schema = schema();
    let n = scaled(86, scale, 4);
    let mut instances = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let r = make_restaurant(&mut rng);
        let (inst, label) = to_instance(&schema, &r);
        instances.push(inst);
        labels.push(label);
    }
    let mut few_shot = Vec::with_capacity(10);
    for _ in 0..10 {
        let r = make_restaurant(&mut rng);
        let (inst, label) = to_instance(&schema, &r);
        let prefix = &r.phone[..3];
        let reason = format!(
            "The phone number \"{prefix}\" suggests the area around {city}. The addr \
             attribute suggests a place in {city}.",
            city = r.city
        );
        few_shot.push(FewShotExample::new(
            inst,
            reason,
            label.as_value().expect("DI label"),
        ));
    }
    // The informative features for imputing a location: addr and phone
    // (§3.4's example: the name and cuisine type are irrelevant).
    Dataset {
        name: "Restaurant",
        task: Task::Imputation,
        instances,
        labels,
        few_shot,
        kb: knowledge_base(),
        type_hint: None,
        informative_features: Some(vec![1, 2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_86() {
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 86);
        ds.validate().unwrap();
    }

    #[test]
    fn phone_prefix_determines_city() {
        let ds = generate(1.0, 1);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::Imputation { record, .. } = inst else {
                panic!("wrong task")
            };
            let phone = record.get_by_name("phone").unwrap().to_string();
            let prefix = &phone[..3];
            let mem = dprep_llm::knowledge::Memorizer {
                model_name: "oracle".into(),
                coverage: 1.0,
                seed: 0,
            };
            assert_eq!(
                ds.kb.city_for_area_code(&mem, prefix),
                Some(label.as_value().unwrap())
            );
        }
    }

    #[test]
    fn street_cue_agrees_with_label() {
        let ds = generate(1.0, 2);
        let mem = dprep_llm::knowledge::Memorizer {
            model_name: "oracle".into(),
            coverage: 1.0,
            seed: 0,
        };
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::Imputation { record, .. } = inst else {
                panic!("wrong task")
            };
            let addr = record.get_by_name("addr").unwrap().to_string();
            let words: Vec<&str> = addr.split_whitespace().collect();
            let cue = words
                .windows(2)
                .chain(words.windows(3))
                .find_map(|w| ds.kb.cue_value(&mem, "city", &w.join(" ")))
                .or_else(|| words.iter().find_map(|w| ds.kb.cue_value(&mem, "city", w)));
            assert_eq!(cue, Some(label.as_value().unwrap()), "addr = {addr}");
        }
    }

    #[test]
    fn informative_features_are_addr_and_phone() {
        let ds = generate(0.1, 0);
        assert_eq!(ds.informative_features, Some(vec![1, 2]));
    }
}
