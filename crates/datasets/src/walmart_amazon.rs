//! The **Walmart-Amazon** entity-matching dataset (consumer electronics).
//!
//! 2049 pairs, ~9% positive. Records: title, category, brand, modelno,
//! price. The model number is the discriminating token — hard negatives
//! are same-brand, same-category products whose model numbers differ by a
//! digit, which both stores render inconsistently (embedded in the title or
//! in its own field). Paper scores: Magellan 71.9, Ditto 86.8, GPT-4 90.3.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::Task;
use dprep_tabular::{AttrType, Schema, Value};

use crate::common::{make_em_few_shot, make_em_pairs, pick, sub_rng, EmPairConfig, Noise};
use crate::vocab::{BRANDS, PRODUCT_NOUNS, PRODUCT_QUALIFIERS};
use crate::{scaled, Dataset};

const ALIASES: &[(&str, &str)] = &[
    ("wireless", "wi-fi"),
    ("headphones", "headset"),
    ("professional", "pro"),
];

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("title", AttrType::Text),
        ("category", AttrType::Text),
        ("brand", AttrType::Text),
        ("modelno", AttrType::Text),
        ("price", AttrType::Numeric),
    ])
    .expect("static schema")
    .shared()
}

fn model_number(rng: &mut Rng) -> String {
    format!(
        "{}{}{}",
        (b'a' + rng.range(0, 26u8)) as char,
        (b'a' + rng.range(0, 26u8)) as char,
        rng.range(100, 9999)
    )
}

/// Generates the Walmart-Amazon dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "walmart-amazon");
    let schema = schema();

    // Families: a brand's product line with several model numbers.
    let mut families = Vec::new();
    for _ in 0..120usize {
        let brand = pick(&mut rng, BRANDS);
        let noun = pick(&mut rng, PRODUCT_NOUNS);
        let qualifier = pick(&mut rng, PRODUCT_QUALIFIERS);
        let members = rng.range_incl(2, 3);
        let mut family = Vec::with_capacity(members);
        for _ in 0..members {
            let model = model_number(&mut rng);
            family.push(vec![
                Value::text(format!("{brand} {qualifier} {noun} {model}")),
                Value::text(noun),
                Value::text(brand),
                Value::text(model),
                Value::Int(rng.range(15, 900)),
            ]);
        }
        families.push(family);
    }

    let config = EmPairConfig {
        n_pairs: scaled(2049, scale, 8),
        pos_rate: 0.09,
        hard_neg_rate: 0.35,
        noise: Noise {
            alias: 0.45,
            word_drop: 0.22,
            typo: 0.06,
            reorder: 0.15,
            numeric_jitter: 0.05,
            blank: 0.07,
        },
    };
    let (instances, labels) = make_em_pairs(&schema, &families, &config, ALIASES, &mut rng);
    let few_shot = make_em_few_shot(&schema, &families, &config, ALIASES, &mut rng, 5, 5);

    let mut kb = KnowledgeBase::new();
    for (canonical, variant) in ALIASES {
        kb.add(Fact::Alias {
            canonical: (*canonical).to_string(),
            variant: (*variant).to_string(),
        });
    }

    Dataset {
        name: "Walmart-Amazon",
        task: Task::EntityMatching,
        instances,
        labels,
        few_shot,
        kb,
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_prompt::TaskInstance;

    #[test]
    fn scaled_counts() {
        let ds = generate(0.05, 0);
        assert_eq!(ds.len(), (2049f64 * 0.05).round() as usize);
        ds.validate().unwrap();
    }

    #[test]
    fn model_numbers_discriminate_hard_negatives() {
        let ds = generate(0.2, 1);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::EntityMatching { a, b } = inst else {
                panic!("wrong task")
            };
            let (ma, mb) = (
                a.get_by_name("modelno").unwrap(),
                b.get_by_name("modelno").unwrap(),
            );
            if label.as_bool() == Some(false) && !ma.is_missing() && !mb.is_missing() {
                // Typos may perturb model numbers, but untouched hard
                // negatives must differ.
                let sa = ma.to_string();
                let sb = mb.to_string();
                if sa == sb {
                    // Same rendered model number on a negative can only come
                    // from a typo collision — astronomically unlikely.
                    panic!("negative pair shares model number {sa}");
                }
            }
        }
    }
}
