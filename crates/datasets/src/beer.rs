//! The **Beer** entity-matching dataset.
//!
//! 91 pairs, ~16% positive. Records: beer name, brewery, style, ABV, plus a
//! free-text `notes` attribute of uncorrelated tasting words — the noisy
//! feature whose *removal* drives the paper's feature-selection experiment
//! (Beer, GPT-4, zero-shot: 74.1 → 90.3 F1). Style abbreviations
//! (`ipa` ↔ `india pale ale`) are alias facts a knowledgeable model
//! bridges; hard negatives are different beers from the same brewery.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::Task;
use dprep_tabular::{AttrType, Schema, Value};

use crate::common::{make_em_few_shot, make_em_pairs, pick, sub_rng, EmPairConfig, Noise};
use crate::vocab::{
    BEER_ADJECTIVES, BEER_NOUNS, BEER_STYLES, BEER_STYLE_ABBREVS, BREWERY_TAILS, LAST_NAMES,
};
use crate::{scaled, Dataset};

const TASTING_WORDS: &[&str] = &[
    "citrus", "piney", "resinous", "malty", "toasty", "crisp", "juicy", "dank", "roasty",
    "caramel", "floral", "earthy", "tropical", "bready", "spicy", "smooth",
];

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("beer_name", AttrType::Text),
        ("brew_factory_name", AttrType::Text),
        ("style", AttrType::Text),
        ("abv", AttrType::Text),
        ("notes", AttrType::Text),
    ])
    .expect("static schema")
    .shared()
}

fn tasting_notes(rng: &mut Rng) -> String {
    // Three distinct random words with no shared scaffolding: review
    // sites describe the same beer completely differently, so this
    // attribute carries no matching signal at all.
    let mut words = Vec::with_capacity(3);
    while words.len() < 3 {
        let w = pick(rng, TASTING_WORDS);
        if !words.contains(&w) {
            words.push(w);
        }
    }
    words.join(" ")
}

fn style_aliases() -> Vec<(&'static str, &'static str)> {
    BEER_STYLES
        .iter()
        .zip(BEER_STYLE_ABBREVS)
        .map(|(s, a)| (*s, *a))
        .collect()
}

/// Generates the Beer dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "beer");
    let schema = schema();
    let aliases = style_aliases();

    // Families: one brewery brews 2–3 distinct beers (hard negatives).
    let mut families = Vec::new();
    for _ in 0..40usize {
        let brewery = format!(
            "{} {}",
            pick(&mut rng, LAST_NAMES),
            pick(&mut rng, BREWERY_TAILS)
        );
        let members = rng.range_incl(2, 3);
        let mut family = Vec::new();
        let first_style = rng.range(0, BEER_STYLES.len());
        for m in 0..members {
            // Beers of one brewery differ in style, keeping same-brewery
            // negatives distinguishable by more than the name.
            let style_idx = (first_style + m) % BEER_STYLES.len();
            family.push(vec![
                Value::text(format!(
                    "{} {} {}",
                    pick(&mut rng, BEER_ADJECTIVES),
                    pick(&mut rng, BEER_NOUNS),
                    BEER_STYLE_ABBREVS[style_idx]
                )),
                Value::text(brewery.clone()),
                Value::text(BEER_STYLES[style_idx]),
                Value::text(format!("{:.1}%", rng.range(40, 110) as f64 / 10.0)),
                // Uncorrelated notes: regenerated per variant below would be
                // ideal, but the pair machinery perturbs a fixed value — a
                // fresh draw per *entity* plus heavy blanking when rendered
                // keeps notes uninformative for matching.
                Value::text(tasting_notes(&mut rng)),
            ]);
        }
        families.push(family);
    }

    let config = EmPairConfig {
        n_pairs: scaled(91, scale, 8),
        pos_rate: 0.16,
        hard_neg_rate: 0.30,
        noise: Noise {
            alias: 0.5,
            word_drop: 0.12,
            typo: 0.05,
            reorder: 0.1,
            numeric_jitter: 0.0,
            // Notes (and occasionally other fields) go missing often; more
            // importantly the notes *text* is re-rolled below for one side
            // of every pair so it never correlates.
            blank: 0.06,
        },
    };
    let (mut instances, labels) = make_em_pairs(&schema, &families, &config, &aliases, &mut rng);

    // Re-roll the notes on side B of every pair: tasting notes differ
    // between catalogs even for the same beer, so they are pure noise.
    for inst in &mut instances {
        if let dprep_prompt::TaskInstance::EntityMatching { b, .. } = inst {
            let idx = b.schema().index_of("notes").expect("notes attr");
            if !b.get(idx).expect("in range").is_missing() {
                b.set(idx, Value::text(tasting_notes(&mut rng)))
                    .expect("in range");
            }
        }
    }

    let few_shot = make_em_few_shot(&schema, &families, &config, &aliases, &mut rng, 5, 5);

    let mut kb = KnowledgeBase::new();
    for (canonical, variant) in &aliases {
        kb.add(Fact::Alias {
            canonical: (*canonical).to_string(),
            variant: (*variant).to_string(),
        });
    }

    Dataset {
        name: "Beer",
        task: Task::EntityMatching,
        instances,
        labels,
        few_shot,
        kb,
        type_hint: None,
        // name, brewery, style, abv — everything but the noisy notes.
        informative_features: Some(vec![0, 1, 2, 3]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_prompt::TaskInstance;

    #[test]
    fn full_scale_is_91() {
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 91);
        ds.validate().unwrap();
    }

    #[test]
    fn notes_are_uncorrelated_for_matches() {
        let ds = generate(1.0, 1);
        let mut same = 0;
        let mut total = 0;
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            if label.as_bool() != Some(true) {
                continue;
            }
            let TaskInstance::EntityMatching { a, b } = inst else {
                panic!("wrong task")
            };
            let na = a.get_by_name("notes").unwrap();
            let nb = b.get_by_name("notes").unwrap();
            if !na.is_missing() && !nb.is_missing() {
                total += 1;
                if na == nb {
                    same += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            (same as f64) / (total as f64) < 0.3,
            "notes should rarely agree even on matches ({same}/{total})"
        );
    }

    #[test]
    fn informative_features_exclude_notes() {
        let ds = generate(0.2, 2);
        let feats = ds.informative_features.as_ref().unwrap();
        let notes_idx = 4usize;
        assert!(!feats.contains(&notes_idx));
    }

    #[test]
    fn kb_bridges_style_abbreviations() {
        let ds = generate(0.2, 3);
        let mem = dprep_llm::knowledge::Memorizer {
            model_name: "oracle".into(),
            coverage: 1.0,
            seed: 0,
        };
        assert_eq!(ds.kb.canonicalize(&mem, "ipa"), Some("india pale ale"));
    }
}
