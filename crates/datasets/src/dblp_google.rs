//! The **DBLP-Google** (DBLP-GoogleScholar) entity-matching dataset.
//!
//! 5742 pairs, ~19% positive. The same bibliographic world as DBLP-ACM,
//! but scraped rather than curated: heavier word drops, frequent venue
//! abbreviation, missing years/venues, and more same-topic hard negatives.
//! The paper's models score noticeably lower here (GPT-3.5 76.1, GPT-4
//! 91.9) than on DBLP-ACM.

use dprep_prompt::Task;

use crate::common::{make_em_few_shot, make_em_pairs, sub_rng, EmPairConfig, Noise};
use crate::dblp_acm::{paper_families, paper_schema, venue_aliases, venue_kb};
use crate::{scaled, Dataset};

/// Generates the DBLP-Google dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "dblp-google");
    let schema = paper_schema();
    let aliases = venue_aliases();
    // A bigger, messier paper pool than DBLP-ACM.
    let n_families = 150 + rng.range(0, 10);
    let families = paper_families(&mut rng, n_families);

    let config = EmPairConfig {
        n_pairs: scaled(5742, scale, 8),
        pos_rate: 0.19,
        hard_neg_rate: 0.45,
        noise: Noise {
            alias: 0.7,
            word_drop: 0.3,
            typo: 0.08,
            reorder: 0.2,
            numeric_jitter: 0.0,
            blank: 0.18,
        },
    };
    let (instances, labels) = make_em_pairs(&schema, &families, &config, &aliases, &mut rng);
    let few_shot = make_em_few_shot(&schema, &families, &config, &aliases, &mut rng, 5, 5);

    Dataset {
        name: "DBLP-Google",
        task: Task::EntityMatching,
        instances,
        labels,
        few_shot,
        kb: venue_kb(),
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_prompt::TaskInstance;

    #[test]
    fn scaled_counts() {
        let ds = generate(0.02, 0);
        assert_eq!(ds.len(), (5742f64 * 0.02).round() as usize);
        ds.validate().unwrap();
    }

    #[test]
    fn messier_than_dblp_acm() {
        // More missing cells than the curated counterpart at equal scale.
        let scholar = generate(0.05, 1);
        let acm = crate::dblp_acm::generate(0.12, 1);
        let missing_rate = |ds: &Dataset| {
            let mut missing = 0usize;
            let mut cells = 0usize;
            for inst in &ds.instances {
                if let TaskInstance::EntityMatching { a, b } = inst {
                    for r in [a, b] {
                        for v in r.values() {
                            cells += 1;
                            if v.is_missing() {
                                missing += 1;
                            }
                        }
                    }
                }
            }
            missing as f64 / cells as f64
        };
        assert!(missing_rate(&scholar) > missing_rate(&acm));
    }
}
