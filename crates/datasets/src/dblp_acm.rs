//! The **DBLP-ACM** entity-matching dataset (bibliographic records).
//!
//! 2473 pairs, ~18% positive. Clean, structured citations: title, authors,
//! venue, year. Venue abbreviations (`sigmod` ↔ the full conference name)
//! are the main formatting divergence. The benchmark is nearly saturated —
//! Ditto reports 99.0 F1 — so noise is light and hard negatives (same
//! research topic, different paper) are the residual difficulty.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::Task;
use dprep_tabular::{AttrType, Schema, Value};

use crate::common::{make_em_few_shot, make_em_pairs, pick, sub_rng, EmPairConfig, Noise};
use crate::vocab::{
    FIRST_NAMES, LAST_NAMES, PAPER_QUALIFIERS, PAPER_TOPICS, VENUES, VENUE_ABBREVS,
};
use crate::{scaled, Dataset};

pub(crate) fn paper_schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("title", AttrType::Text),
        ("authors", AttrType::Text),
        ("venue", AttrType::Text),
        ("year", AttrType::Numeric),
    ])
    .expect("static schema")
    .shared()
}

pub(crate) fn venue_aliases() -> Vec<(&'static str, &'static str)> {
    VENUES
        .iter()
        .zip(VENUE_ABBREVS)
        .map(|(v, a)| (*v, *a))
        .collect()
}

fn author_list(rng: &mut Rng) -> String {
    let n = rng.range_incl(2, 3);
    let mut authors = Vec::with_capacity(n);
    for _ in 0..n {
        authors.push(format!(
            "{} {}",
            pick(rng, FIRST_NAMES),
            pick(rng, LAST_NAMES)
        ));
    }
    authors.join(", ")
}

/// Families of papers: each family shares a topic (and often a venue), so
/// same-family pairs are the hard negatives of citation matching.
pub(crate) fn paper_families(rng: &mut Rng, n_families: usize) -> Vec<Vec<Vec<Value>>> {
    let mut families = Vec::with_capacity(n_families);
    for _ in 0..n_families {
        let topic = pick(rng, PAPER_TOPICS);
        let members = rng.range_incl(2, 3);
        let mut family = Vec::with_capacity(members);
        for _ in 0..members {
            let venue_idx = rng.range(0, VENUES.len());
            family.push(vec![
                Value::text(format!(
                    "{} {} for {}",
                    pick(rng, PAPER_QUALIFIERS),
                    topic,
                    pick(rng, PAPER_TOPICS)
                )),
                Value::text(author_list(rng)),
                Value::text(VENUES[venue_idx]),
                Value::Int(rng.range_incl(1995, 2010)),
            ]);
        }
        families.push(family);
    }
    families
}

pub(crate) fn venue_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for (canonical, variant) in venue_aliases() {
        kb.add(Fact::Alias {
            canonical: canonical.to_string(),
            variant: variant.to_string(),
        });
    }
    kb
}

/// Generates the DBLP-ACM dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "dblp-acm");
    let schema = paper_schema();
    let aliases = venue_aliases();
    let families = paper_families(&mut rng, 120);

    let config = EmPairConfig {
        n_pairs: scaled(2473, scale, 8),
        pos_rate: 0.18,
        hard_neg_rate: 0.15,
        noise: Noise {
            alias: 0.45,
            word_drop: 0.05,
            typo: 0.03,
            reorder: 0.05,
            numeric_jitter: 0.0,
            blank: 0.02,
        },
    };
    let (instances, labels) = make_em_pairs(&schema, &families, &config, &aliases, &mut rng);
    let few_shot = make_em_few_shot(&schema, &families, &config, &aliases, &mut rng, 5, 5);

    Dataset {
        name: "DBLP-ACM",
        task: Task::EntityMatching,
        instances,
        labels,
        few_shot,
        kb: venue_kb(),
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_counts() {
        let ds = generate(0.05, 0);
        assert_eq!(ds.len(), (2473f64 * 0.05).round() as usize);
        ds.validate().unwrap();
    }

    #[test]
    fn venue_abbreviations_in_kb() {
        let ds = generate(0.02, 1);
        let mem = dprep_llm::knowledge::Memorizer {
            model_name: "oracle".into(),
            coverage: 1.0,
            seed: 0,
        };
        assert!(ds.kb.canonicalize(&mem, "sigmod").is_some());
    }

    #[test]
    fn positive_rate_close_to_target() {
        let ds = generate(0.4, 2);
        let pos = ds
            .labels
            .iter()
            .filter(|l| l.as_bool() == Some(true))
            .count();
        let rate = pos as f64 / ds.len() as f64;
        assert!((0.12..=0.26).contains(&rate), "rate = {rate}");
    }
}
