//! The **iTunes-Amazon** entity-matching dataset (music tracks).
//!
//! 109 pairs, ~25% positive. Records: song, artist, album, genre, price,
//! time. Formatting variants dominate: `feat.` ↔ `featuring`,
//! `[explicit]` suffixes, small price differences between stores. Hard
//! negatives are other tracks on the same album. The paper's GPT-4 reaches
//! 100 F1; GPT-3.5 96.4.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::Task;
use dprep_tabular::{AttrType, Schema, Value};

use crate::common::{make_em_few_shot, make_em_pairs, pick, sub_rng, EmPairConfig, Noise};
use crate::vocab::{FIRST_NAMES, GENRES, LAST_NAMES, SONG_LEADS, SONG_TAILS};
use crate::{scaled, Dataset};

const ALIASES: &[(&str, &str)] = &[
    ("featuring", "feat."),
    ("remastered", "remaster"),
    ("acoustic version", "acoustic"),
];

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("song_name", AttrType::Text),
        ("artist_name", AttrType::Text),
        ("album_name", AttrType::Text),
        ("genre", AttrType::Text),
        ("price", AttrType::Text),
        ("time", AttrType::Text),
    ])
    .expect("static schema")
    .shared()
}

fn song_title(rng: &mut Rng) -> String {
    let base = format!("{} {}", pick(rng, SONG_LEADS), pick(rng, SONG_TAILS));
    if rng.f64() < 0.3 {
        format!(
            "{base} featuring {} {}",
            pick(rng, FIRST_NAMES),
            pick(rng, LAST_NAMES)
        )
    } else {
        base
    }
}

/// Generates the iTunes-Amazon dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "itunes-amazon");
    let schema = schema();

    // Families: an album holds 2–3 tracks by the same artist.
    let mut families = Vec::new();
    for _ in 0..45usize {
        let artist = format!(
            "{} {}",
            pick(&mut rng, FIRST_NAMES),
            pick(&mut rng, LAST_NAMES)
        );
        let album = format!(
            "{} {}",
            pick(&mut rng, SONG_LEADS),
            pick(&mut rng, SONG_TAILS)
        );
        let genre = pick(&mut rng, GENRES);
        let members = rng.range_incl(2, 3);
        let mut family = Vec::with_capacity(members);
        for _ in 0..members {
            family.push(vec![
                Value::text(song_title(&mut rng)),
                Value::text(artist.clone()),
                Value::text(album.clone()),
                Value::text(genre),
                Value::text(format!(
                    "${}.{:02}",
                    rng.range(0, 2),
                    rng.range_incl(29, 129) % 100
                )),
                Value::text(format!("{}:{:02}", rng.range_incl(2, 5), rng.range(0, 60))),
            ]);
        }
        families.push(family);
    }

    let config = EmPairConfig {
        n_pairs: scaled(109, scale, 8),
        pos_rate: 0.25,
        hard_neg_rate: 0.5,
        noise: Noise {
            alias: 0.5,
            word_drop: 0.08,
            typo: 0.04,
            reorder: 0.06,
            numeric_jitter: 0.0,
            blank: 0.04,
        },
    };
    let (instances, labels) = make_em_pairs(&schema, &families, &config, ALIASES, &mut rng);
    let few_shot = make_em_few_shot(&schema, &families, &config, ALIASES, &mut rng, 5, 5);

    let mut kb = KnowledgeBase::new();
    for (canonical, variant) in ALIASES {
        kb.add(Fact::Alias {
            canonical: (*canonical).to_string(),
            variant: (*variant).to_string(),
        });
    }

    Dataset {
        name: "iTunes-Amazon",
        task: Task::EntityMatching,
        instances,
        labels,
        few_shot,
        kb,
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_109() {
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 109);
        ds.validate().unwrap();
    }

    #[test]
    fn quarter_positive() {
        let ds = generate(1.0, 1);
        let pos = ds
            .labels
            .iter()
            .filter(|l| l.as_bool() == Some(true))
            .count();
        let rate = pos as f64 / ds.len() as f64;
        assert!((0.15..=0.38).contains(&rate), "rate = {rate}");
    }
}
