//! # dprep-datasets
//!
//! Seeded synthetic generators for the 12 benchmark datasets of the paper's
//! evaluation (§4.1, originally from the `fm_data_tasks` collection):
//!
//! | dataset | task | test instances (scale = 1) |
//! |---|---|---|
//! | Adult | error detection | 11 000 cells (1000 rows × 11 attrs) |
//! | Hospital | error detection | 17 102 cells (1006 rows × 17 attrs) |
//! | Buy | data imputation | 65 |
//! | Restaurant | data imputation | 86 |
//! | Synthea | schema matching | 120 pairs |
//! | Amazon-Google | entity matching | 2293 pairs |
//! | Beer | entity matching | 91 pairs |
//! | DBLP-ACM | entity matching | 2473 pairs |
//! | DBLP-Google | entity matching | 5742 pairs |
//! | Fodors-Zagats | entity matching | 189 pairs |
//! | iTunes-Amazon | entity matching | 109 pairs |
//! | Walmart-Amazon | entity matching | 2049 pairs |
//!
//! Every generator emits, deterministically under a seed:
//!
//! * test instances with ground-truth [`Label`]s,
//! * a disjoint few-shot pool with human-plausible reasoning strings
//!   (3 examples for schema matching, 10 for the other tasks — the paper's
//!   counts),
//! * a [`KnowledgeBase`] of the world facts its instances depend on — the
//!   simulated LLM's "pretraining corpus" for this domain.
//!
//! The `scale` parameter shrinks instance counts proportionally (≥ a small
//! floor) so unit tests stay fast; benchmarks use `scale = 1.0`.

pub mod adult;
pub mod amazon_google;
pub mod beer;
pub mod buy;
pub mod common;
pub mod dblp_acm;
pub mod dblp_google;
pub mod fodors_zagats;
pub mod hospital;
pub mod itunes_amazon;
pub mod restaurant;
pub mod stats;
pub mod synthea;
pub mod vocab;

use dprep_llm::KnowledgeBase;
use dprep_prompt::{FewShotExample, Task, TaskInstance};

/// Ground truth for one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    /// ED ("is there an error"), SM/EM ("do they match").
    YesNo(bool),
    /// DI: the hidden value.
    Value(String),
}

impl Label {
    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Label::YesNo(b) => Some(*b),
            Label::Value(_) => None,
        }
    }

    /// Value view.
    pub fn as_value(&self) -> Option<&str> {
        match self {
            Label::Value(v) => Some(v),
            Label::YesNo(_) => None,
        }
    }
}

/// A generated benchmark dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name as it appears in the paper's tables.
    pub name: &'static str,
    /// The preprocessing task it evaluates.
    pub task: Task,
    /// Test instances.
    pub instances: Vec<TaskInstance>,
    /// Ground truth, parallel to `instances`.
    pub labels: Vec<Label>,
    /// Few-shot pool (disjoint from the test instances).
    pub few_shot: Vec<FewShotExample>,
    /// World facts underlying this dataset.
    pub kb: KnowledgeBase,
    /// DI data-type hint, when the paper's framework would use one.
    pub type_hint: Option<(String, String)>,
    /// Attribute indices a practitioner would select as informative
    /// (drives the feature-selection experiment), when applicable.
    pub informative_features: Option<Vec<usize>>,
}

impl Dataset {
    /// Number of test instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the dataset has no test instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Sanity-checks internal invariants (parallel arrays, label kinds).
    pub fn validate(&self) -> Result<(), String> {
        if self.instances.len() != self.labels.len() {
            return Err(format!(
                "{}: {} instances but {} labels",
                self.name,
                self.instances.len(),
                self.labels.len()
            ));
        }
        for (i, (inst, label)) in self.instances.iter().zip(&self.labels).enumerate() {
            if inst.task() != self.task {
                return Err(format!("{}: instance {i} has the wrong task", self.name));
            }
            let ok = match self.task {
                Task::Imputation => matches!(label, Label::Value(_)),
                _ => matches!(label, Label::YesNo(_)),
            };
            if !ok {
                return Err(format!(
                    "{}: instance {i} has the wrong label kind",
                    self.name
                ));
            }
        }
        for (i, ex) in self.few_shot.iter().enumerate() {
            if ex.instance.task() != self.task {
                return Err(format!("{}: few-shot {i} has the wrong task", self.name));
            }
        }
        Ok(())
    }
}

/// Scales a paper-size count by `scale`, with a floor so tiny scales still
/// produce usable datasets.
pub(crate) fn scaled(paper_count: usize, scale: f64, floor: usize) -> usize {
    ((paper_count as f64 * scale).round() as usize).max(floor)
}

/// All 12 datasets in the paper's column order.
pub fn all_datasets(scale: f64, seed: u64) -> Vec<Dataset> {
    vec![
        adult::generate(scale, seed),
        hospital::generate(scale, seed),
        buy::generate(scale, seed),
        restaurant::generate(scale, seed),
        synthea::generate(scale, seed),
        amazon_google::generate(scale, seed),
        beer::generate(scale, seed),
        dblp_acm::generate(scale, seed),
        dblp_google::generate(scale, seed),
        fodors_zagats::generate(scale, seed),
        itunes_amazon::generate(scale, seed),
        walmart_amazon::generate(scale, seed),
    ]
}

pub mod walmart_amazon;

/// A dataset by its table name (case-insensitive), or `None`.
pub fn dataset_by_name(name: &str, scale: f64, seed: u64) -> Option<Dataset> {
    let lower = name.to_lowercase();
    let gen: fn(f64, u64) -> Dataset = match lower.as_str() {
        "adult" => adult::generate,
        "hospital" => hospital::generate,
        "buy" => buy::generate,
        "restaurant" => restaurant::generate,
        "synthea" => synthea::generate,
        "amazon-google" | "amazon_google" => amazon_google::generate,
        "beer" => beer::generate,
        "dblp-acm" | "dblp_acm" => dblp_acm::generate,
        "dblp-google" | "dblp_google" => dblp_google::generate,
        "fodors-zagats" | "fodors_zagats" => fodors_zagats::generate,
        "itunes-amazon" | "itunes_amazon" => itunes_amazon::generate,
        "walmart-amazon" | "walmart_amazon" => walmart_amazon::generate,
        _ => return None,
    };
    Some(gen(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_validate_at_small_scale() {
        for ds in all_datasets(0.02, 7) {
            ds.validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(!ds.is_empty(), "{} is empty", ds.name);
            assert!(!ds.kb.is_empty(), "{} has no knowledge base", ds.name);
            assert!(!ds.few_shot.is_empty(), "{} has no few-shot pool", ds.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = all_datasets(0.02, 42);
        let b = all_datasets(0.02, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.instances, y.instances, "{} not deterministic", x.name);
            assert_eq!(x.labels, y.labels);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = all_datasets(0.02, 1);
        let b = all_datasets(0.02, 2);
        assert!(
            a.iter().zip(&b).any(|(x, y)| x.instances != y.instances),
            "seeds should change generated data"
        );
    }

    #[test]
    fn paper_scale_instance_counts() {
        // Generate at full scale only for the small datasets to keep the
        // test fast; the large ones are checked at reduced scale via ratio.
        let buy = buy::generate(1.0, 0);
        assert_eq!(buy.len(), 65);
        let restaurant = restaurant::generate(1.0, 0);
        assert_eq!(restaurant.len(), 86);
        let beer = beer::generate(1.0, 0);
        assert_eq!(beer.len(), 91);
        let itunes = itunes_amazon::generate(1.0, 0);
        assert_eq!(itunes.len(), 109);
        let synthea = synthea::generate(1.0, 0);
        assert_eq!(synthea.len(), 120);
        let fodors = fodors_zagats::generate(1.0, 0);
        assert_eq!(fodors.len(), 189);
    }

    #[test]
    fn sm_uses_three_shots_others_ten() {
        for ds in all_datasets(0.05, 3) {
            let expected = if ds.task == Task::SchemaMatching {
                3
            } else {
                10
            };
            assert_eq!(ds.few_shot.len(), expected, "{}", ds.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(dataset_by_name("Beer", 0.1, 0).is_some());
        assert!(dataset_by_name("walmart-amazon", 0.05, 0).is_some());
        assert!(dataset_by_name("nope", 1.0, 0).is_none());
    }
}
