//! The **Buy** data-imputation dataset (electronics products).
//!
//! 65 test instances: `[name, description, price, manufacturer: ???]`.
//! For ~75% of products the manufacturer brand appears verbatim in the
//! product name (the reason even GPT-3 scores 98.5% in the paper —
//! extraction suffices); the rest name only a product line whose maker is a
//! memorized brand fact (`thinkpad` → lenovo), separating strong from weak
//! models.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::{FewShotExample, Task, TaskInstance};
use dprep_tabular::{AttrType, Record, Schema, Value};

use crate::common::{pick, sub_rng};
use crate::vocab::{BRANDS, PRODUCT_NOUNS, PRODUCT_QUALIFIERS};
use crate::{scaled, Dataset, Label};

/// Product-line names, each belonging to a brand (index-aligned with
/// [`BRANDS`] cyclically).
const PRODUCT_LINES: &[&str] = &[
    "bravia",
    "galaxy",
    "thinkpad",
    "powershot",
    "coolpix",
    "lumix",
    "mx master",
    "nighthawk",
    "forerunner",
    "satellite",
    "hue",
    "flip",
    "zenbook",
    "predator",
    "ecotank",
    "scan n cut",
    "extreme pro",
    "barracuda",
    "vengeance",
    "deathadder",
];

fn line_brand(line_idx: usize) -> &'static str {
    BRANDS[line_idx % BRANDS.len()]
}

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("name", AttrType::Text),
        ("description", AttrType::Text),
        ("price", AttrType::Numeric),
        ("manufacturer", AttrType::Text),
    ])
    .expect("static schema")
    .shared()
}

struct Product {
    name: String,
    description: String,
    price: i64,
    manufacturer: &'static str,
}

fn make_product(rng: &mut Rng) -> Product {
    let noun = pick(rng, PRODUCT_NOUNS);
    let qualifier = pick(rng, PRODUCT_QUALIFIERS);
    let model = format!(
        "{}{}",
        (b'a' + rng.range(0, 26u8)) as char,
        rng.range(100, 999)
    );
    if rng.f64() < 0.75 {
        // Brand named explicitly in the title.
        let brand = pick(rng, BRANDS);
        Product {
            name: format!("{brand} {qualifier} {noun} {model}"),
            description: format!("{qualifier} {noun} with warranty"),
            price: rng.range(20, 1500),
            manufacturer: brand,
        }
    } else {
        // Only the product line appears; the maker is world knowledge.
        let line_idx = rng.range(0, PRODUCT_LINES.len());
        let line = PRODUCT_LINES[line_idx];
        Product {
            name: format!("{line} {qualifier} {noun} {model}"),
            description: format!("{noun} from the {line} series"),
            price: rng.range(20, 1500),
            manufacturer: line_brand(line_idx),
        }
    }
}

fn to_instance(schema: &Arc<Schema>, p: &Product) -> (TaskInstance, Label) {
    let record = Record::new(
        Arc::clone(schema),
        vec![
            Value::text(p.name.clone()),
            Value::text(p.description.clone()),
            Value::Int(p.price),
            Value::Missing,
        ],
    )
    .expect("fixed arity");
    (
        TaskInstance::Imputation {
            record,
            attribute: "manufacturer".into(),
        },
        Label::Value(p.manufacturer.to_string()),
    )
}

fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for brand in BRANDS {
        // The brand token itself implies the manufacturer.
        kb.add(Fact::Brand {
            token: (*brand).to_string(),
            manufacturer: (*brand).to_string(),
        });
        kb.add(Fact::LexiconMember {
            domain: "manufacturer".into(),
            value: (*brand).to_string(),
        });
    }
    for (i, line) in PRODUCT_LINES.iter().enumerate() {
        kb.add(Fact::Brand {
            token: (*line).to_string(),
            manufacturer: line_brand(i).to_string(),
        });
    }
    kb
}

/// Generates the Buy dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "buy");
    let schema = schema();
    let n = scaled(65, scale, 4);
    let mut instances = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let p = make_product(&mut rng);
        let (inst, label) = to_instance(&schema, &p);
        instances.push(inst);
        labels.push(label);
    }
    let mut few_shot = Vec::with_capacity(10);
    for _ in 0..10 {
        let p = make_product(&mut rng);
        let (inst, label) = to_instance(&schema, &p);
        let reason = format!(
            "The product name \"{}\" identifies the maker: it is a {} product.",
            p.name, p.manufacturer
        );
        few_shot.push(FewShotExample::new(
            inst,
            reason,
            label.as_value().expect("DI label"),
        ));
    }
    Dataset {
        name: "Buy",
        task: Task::Imputation,
        instances,
        labels,
        few_shot,
        kb: knowledge_base(),
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_65() {
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 65);
        ds.validate().unwrap();
    }

    #[test]
    fn manufacturer_cell_is_missing() {
        let ds = generate(1.0, 1);
        for inst in &ds.instances {
            let TaskInstance::Imputation { record, attribute } = inst else {
                panic!("wrong task")
            };
            assert_eq!(attribute, "manufacturer");
            assert!(record.get_by_name("manufacturer").unwrap().is_missing());
        }
    }

    #[test]
    fn label_is_recoverable_from_kb() {
        // Full-coverage memorization must be able to answer every instance
        // from the name tokens — the dataset is solvable by construction.
        let ds = generate(1.0, 2);
        let mem = dprep_llm::knowledge::Memorizer {
            model_name: "oracle".into(),
            coverage: 1.0,
            seed: 0,
        };
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::Imputation { record, .. } = inst else {
                panic!("wrong task")
            };
            let name = record.get_by_name("name").unwrap().to_string();
            let found = name
                .split_whitespace()
                .chain(
                    name.split_whitespace()
                        .zip(name.split_whitespace().skip(1))
                        .map(|(a, _b)| a),
                )
                .find_map(|tok| ds.kb.manufacturer_for_token(&mem, tok))
                // Two-word product lines ("mx master", "scan n cut") need a
                // phrase lookup.
                .or_else(|| {
                    let words: Vec<&str> = name.split_whitespace().collect();
                    words
                        .windows(2)
                        .find_map(|w| ds.kb.manufacturer_for_token(&mem, &w.join(" ")))
                })
                .or_else(|| {
                    let words: Vec<&str> = name.split_whitespace().collect();
                    words
                        .windows(3)
                        .find_map(|w| ds.kb.manufacturer_for_token(&mem, &w.join(" ")))
                });
            assert_eq!(
                found,
                Some(label.as_value().unwrap()),
                "name {name:?} cannot recover manufacturer"
            );
        }
    }

    #[test]
    fn few_shot_has_reasons() {
        let ds = generate(0.1, 3);
        assert_eq!(ds.few_shot.len(), 10);
        assert!(ds.few_shot.iter().all(|s| !s.reason.is_empty()));
    }
}
