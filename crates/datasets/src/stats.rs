//! Dataset summary statistics — the profile a practitioner checks before
//! spending tokens on a benchmark.

use dprep_prompt::TaskInstance;
use dprep_text::count_tokens;

use crate::{Dataset, Label};

/// Summary of one generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: &'static str,
    /// Test instances.
    pub instances: usize,
    /// Positive-label fraction (ED error rate / SM-EM match rate); `None`
    /// for imputation.
    pub positive_rate: Option<f64>,
    /// Distinct imputation target values; `None` for yes/no tasks.
    pub distinct_targets: Option<usize>,
    /// Fraction of missing cells across instance records.
    pub missing_cell_rate: f64,
    /// Mean tokens per rendered question.
    pub mean_question_tokens: f64,
    /// Few-shot pool size.
    pub few_shot: usize,
    /// World facts in the knowledge base.
    pub facts: usize,
}

/// Computes summary statistics for a dataset.
pub fn summarize(ds: &Dataset) -> DatasetStats {
    let mut positives = 0usize;
    let mut yes_no = 0usize;
    let mut targets = std::collections::BTreeSet::new();
    for label in &ds.labels {
        match label {
            Label::YesNo(b) => {
                yes_no += 1;
                if *b {
                    positives += 1;
                }
            }
            Label::Value(v) => {
                targets.insert(v.clone());
            }
        }
    }

    let mut cells = 0usize;
    let mut missing = 0usize;
    let mut question_tokens = 0usize;
    for inst in &ds.instances {
        question_tokens += count_tokens(&inst.question_text(None));
        let records: Vec<&dprep_tabular::Record> = match inst {
            TaskInstance::ErrorDetection { record, .. }
            | TaskInstance::Imputation { record, .. } => vec![record],
            TaskInstance::EntityMatching { a, b } => vec![a, b],
            TaskInstance::SchemaMatching { .. } => vec![],
        };
        for r in records {
            for v in r.values() {
                cells += 1;
                if v.is_missing() {
                    missing += 1;
                }
            }
        }
    }

    DatasetStats {
        name: ds.name,
        instances: ds.len(),
        positive_rate: (yes_no > 0).then(|| positives as f64 / yes_no as f64),
        distinct_targets: (!targets.is_empty()).then_some(targets.len()),
        missing_cell_rate: if cells == 0 {
            0.0
        } else {
            missing as f64 / cells as f64
        },
        mean_question_tokens: question_tokens as f64 / ds.len().max(1) as f64,
        few_shot: ds.few_shot.len(),
        facts: ds.kb.len(),
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} instances, {} few-shot, {} facts, {:.0} tokens/question",
            self.name, self.instances, self.few_shot, self.facts, self.mean_question_tokens
        )?;
        if let Some(rate) = self.positive_rate {
            write!(f, ", {:.1}% positive", rate * 100.0)?;
        }
        if let Some(distinct) = self.distinct_targets {
            write!(f, ", {distinct} distinct targets")?;
        }
        if self.missing_cell_rate > 0.0 {
            write!(f, ", {:.1}% cells missing", self.missing_cell_rate * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_an_ed_dataset() {
        let ds = crate::adult::generate(0.1, 1);
        let stats = summarize(&ds);
        assert_eq!(stats.name, "Adult");
        let rate = stats.positive_rate.unwrap();
        assert!((0.02..=0.09).contains(&rate), "error rate {rate}");
        assert_eq!(stats.distinct_targets, None);
        assert!(stats.mean_question_tokens > 30.0);
    }

    #[test]
    fn summarizes_a_di_dataset() {
        let ds = crate::restaurant::generate(1.0, 1);
        let stats = summarize(&ds);
        assert_eq!(stats.positive_rate, None);
        assert!(stats.distinct_targets.unwrap() > 3);
        // The imputation target cell is missing in every record.
        assert!(stats.missing_cell_rate > 0.15);
    }

    #[test]
    fn summarizes_an_em_dataset() {
        let ds = crate::amazon_google::generate(0.2, 1);
        let stats = summarize(&ds);
        let rate = stats.positive_rate.unwrap();
        assert!((0.04..=0.2).contains(&rate), "match rate {rate}");
        assert!(stats.missing_cell_rate > 0.02, "blanking shows up");
    }

    #[test]
    fn display_is_informative() {
        let ds = crate::beer::generate(0.3, 2);
        let text = summarize(&ds).to_string();
        assert!(text.contains("Beer"));
        assert!(text.contains("positive"));
    }
}
