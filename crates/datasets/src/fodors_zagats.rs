//! The **Fodors-Zagats** entity-matching dataset (restaurants).
//!
//! 189 pairs, ~11% positive. The classic "easy" benchmark: records are
//! near-exact duplicates with distinctive names, addresses, and phone
//! numbers, and negatives come from unrelated restaurants — every method in
//! the paper's Table 1 reaches 100 F1 here, and so should a correctly
//! calibrated matcher.

use std::sync::Arc;

use dprep_llm::KnowledgeBase;
use dprep_prompt::Task;
use dprep_tabular::{AttrType, Schema, Value};

use crate::common::{make_em_few_shot, make_em_pairs, pick, sub_rng, EmPairConfig, Noise};
use crate::vocab::{
    AREA_CODES, CITIES, CUISINES, RESTAURANT_LEADS, RESTAURANT_TAILS, STREETS, STREET_SUFFIXES,
};
use crate::{scaled, Dataset};

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("name", AttrType::Text),
        ("addr", AttrType::Text),
        ("city", AttrType::Text),
        ("phone", AttrType::Text),
        ("type", AttrType::Text),
    ])
    .expect("static schema")
    .shared()
}

/// Generates the Fodors-Zagats dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "fodors-zagats");
    let schema = schema();

    // Singleton families: no hard negatives exist in this benchmark.
    let mut families = Vec::new();
    for i in 0..160usize {
        let city_idx = rng.range(0, CITIES.len());
        let name = format!(
            "{} {} {}",
            pick(&mut rng, RESTAURANT_LEADS),
            pick(&mut rng, RESTAURANT_TAILS),
            i, // a distinguishing token keeps name collisions impossible
        );
        families.push(vec![vec![
            Value::text(name),
            Value::text(format!(
                "{} {} {}",
                rng.range(100, 9999),
                pick(&mut rng, STREETS),
                pick(&mut rng, STREET_SUFFIXES)
            )),
            Value::text(CITIES[city_idx]),
            Value::text(format!(
                "{}-{}-{:04}",
                AREA_CODES[city_idx],
                rng.range(200, 999),
                rng.range(0, 10_000)
            )),
            Value::text(pick(&mut rng, CUISINES)),
        ]]);
    }

    let config = EmPairConfig {
        n_pairs: scaled(189, scale, 8),
        pos_rate: 0.11,
        hard_neg_rate: 0.0,
        noise: Noise::light(),
    };
    let (instances, labels) = make_em_pairs(&schema, &families, &config, &[], &mut rng);
    let few_shot = make_em_few_shot(&schema, &families, &config, &[], &mut rng, 5, 5);

    Dataset {
        name: "Fodors-Zagats",
        task: Task::EntityMatching,
        instances,
        labels,
        few_shot,
        kb: restaurant_kb(),
        type_hint: None,
        informative_features: None,
    }
}

fn restaurant_kb() -> KnowledgeBase {
    use dprep_llm::Fact;
    let mut kb = KnowledgeBase::new();
    // Cuisine aliases a knowledgeable matcher can bridge.
    for (canonical, variant) in [
        ("barbecue", "bbq"),
        ("delicatessen", "deli"),
        ("steakhouse", "steak house"),
    ] {
        kb.add(Fact::Alias {
            canonical: canonical.into(),
            variant: variant.into(),
        });
    }
    kb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_189() {
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 189);
        ds.validate().unwrap();
    }

    #[test]
    fn positive_rate_near_eleven_percent() {
        let ds = generate(1.0, 1);
        let pos = ds
            .labels
            .iter()
            .filter(|l| l.as_bool() == Some(true))
            .count();
        let rate = pos as f64 / ds.len() as f64;
        assert!((0.04..=0.20).contains(&rate), "rate = {rate}");
    }
}
