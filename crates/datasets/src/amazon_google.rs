//! The **Amazon-Google** entity-matching dataset (software products).
//!
//! 2293 pairs, ~10% positive. The paper's hardest EM benchmark (Magellan
//! 49.1, GPT-4 74.2): listings truncate titles aggressively, the
//! manufacturer is often missing on one side, and the catalog is full of
//! near-identical product lines differing only in version year or edition
//! — which is exactly how the generator builds its hard negatives.

use std::sync::Arc;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::Task;
use dprep_tabular::{AttrType, Schema, Value};

use crate::common::{make_em_few_shot, make_em_pairs, pick, sub_rng, EmPairConfig, Noise};
use crate::vocab::{SOFTWARE_NOUNS, SOFTWARE_PUBLISHERS};
use crate::{scaled, Dataset};

const EDITIONS: &[&str] = &["standard", "deluxe", "professional", "home", "premier"];

const ALIASES: &[(&str, &str)] = &[
    ("professional", "pro"),
    ("standard", "std"),
    ("microsoft", "ms"),
    ("deluxe", "dlx"),
];

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("title", AttrType::Text),
        ("manufacturer", AttrType::Text),
        ("price", AttrType::Numeric),
    ])
    .expect("static schema")
    .shared()
}

/// Generates the Amazon-Google dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "amazon-google");
    let schema = schema();

    // Families: a product line across versions/editions (hard negatives).
    let mut families = Vec::new();
    for _ in 0..110usize {
        let publisher = pick(&mut rng, SOFTWARE_PUBLISHERS);
        let noun = pick(&mut rng, SOFTWARE_NOUNS);
        let members = rng.range_incl(2, 4);
        let mut family = Vec::with_capacity(members);
        let base_year = rng.range_incl(2002, 2007);
        for m in 0..members {
            let edition = pick(&mut rng, EDITIONS);
            family.push(vec![
                Value::text(format!(
                    "{publisher} {noun} {edition} {}",
                    base_year + m as i64
                )),
                Value::text(publisher),
                Value::Int(rng.range(20, 400)),
            ]);
        }
        families.push(family);
    }

    let config = EmPairConfig {
        n_pairs: scaled(2293, scale, 8),
        pos_rate: 0.10,
        hard_neg_rate: 0.55,
        noise: Noise {
            alias: 0.55,
            word_drop: 0.3,
            typo: 0.08,
            reorder: 0.2,
            numeric_jitter: 0.08,
            blank: 0.15,
        },
    };
    let (instances, labels) = make_em_pairs(&schema, &families, &config, ALIASES, &mut rng);
    let few_shot = make_em_few_shot(&schema, &families, &config, ALIASES, &mut rng, 5, 5);

    let mut kb = KnowledgeBase::new();
    for (canonical, variant) in ALIASES {
        kb.add(Fact::Alias {
            canonical: (*canonical).to_string(),
            variant: (*variant).to_string(),
        });
    }

    Dataset {
        name: "Amazon-Google",
        task: Task::EntityMatching,
        instances,
        labels,
        few_shot,
        kb,
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprep_prompt::TaskInstance;

    #[test]
    fn scaled_counts() {
        let ds = generate(0.05, 0);
        assert_eq!(ds.len(), (2293f64 * 0.05).round() as usize);
        ds.validate().unwrap();
    }

    #[test]
    fn hard_negatives_share_product_line() {
        // A meaningful share of negatives must look confusingly similar:
        // same publisher and noun tokens on both sides.
        let ds = generate(0.2, 1);
        let mut hard = 0usize;
        let mut negs = 0usize;
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            if label.as_bool() != Some(false) {
                continue;
            }
            negs += 1;
            let TaskInstance::EntityMatching { a, b } = inst else {
                panic!("wrong task")
            };
            let ta = a.get_by_name("title").unwrap().to_string();
            let tb = b.get_by_name("title").unwrap().to_string();
            let words_a: std::collections::HashSet<&str> = ta.split_whitespace().collect();
            let shared = tb
                .split_whitespace()
                .filter(|w| words_a.contains(w))
                .count();
            if shared >= 2 {
                hard += 1;
            }
        }
        assert!(negs > 0);
        assert!(
            hard as f64 / negs as f64 > 0.3,
            "hard negatives too rare: {hard}/{negs}"
        );
    }
}
