//! The **Hospital** error-detection dataset.
//!
//! The classic HoloClean benchmark: 1006 rows × 17 attributes ≈ 17 100
//! cell instances whose injected errors are *character-level typos* into
//! otherwise clean categorical/text values. Detecting them requires knowing
//! the legal value lexicons — which is why zero-shot scores collapse
//! (18.4 F1 in the paper) while reasoning + lexicon knowledge recovers
//! ~90.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::{FewShotExample, Task, TaskInstance};
use dprep_tabular::{AttrType, Record, Schema, Value};

use crate::common::{pick, sub_rng, typo};
use crate::vocab::{
    CITIES, CONDITIONS, COUNTIES, HOSPITAL_LEADS, HOSPITAL_TAILS, MEASURE_NAMES, STATES, STREETS,
    STREET_SUFFIXES,
};
use crate::{scaled, Dataset, Label};

const HOSPITAL_TYPES: &[&str] = &["acute care hospitals", "critical access hospitals"];
const OWNERS: &[&str] = &[
    "government - state",
    "government - local",
    "proprietary",
    "voluntary non-profit - private",
    "voluntary non-profit - church",
];
const EMERGENCY: &[&str] = &["yes", "no"];

fn measure_code(i: usize) -> String {
    let prefixes = ["ami", "hf", "pn", "scip", "cac"];
    format!("{}-{}", prefixes[i % prefixes.len()], i % 10 + 1)
}

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("providernumber", AttrType::Numeric),
        ("hospitalname", AttrType::Text),
        ("address", AttrType::Text),
        ("city", AttrType::Text),
        ("state", AttrType::Text),
        ("zipcode", AttrType::Numeric),
        ("countyname", AttrType::Text),
        ("phonenumber", AttrType::Text),
        ("hospitaltype", AttrType::Text),
        ("hospitalowner", AttrType::Text),
        ("emergencyservice", AttrType::Text),
        ("condition", AttrType::Text),
        ("measurecode", AttrType::Text),
        ("measurename", AttrType::Text),
        ("sample", AttrType::Text),
        ("stateavg", AttrType::Text),
        ("score", AttrType::Text),
    ])
    .expect("static schema")
    .shared()
}

fn clean_row(rng: &mut Rng) -> Vec<Value> {
    let m = rng.range(0, MEASURE_NAMES.len());
    let state = pick(rng, STATES);
    let code = measure_code(m);
    vec![
        Value::Int(rng.range(10_000, 99_999)),
        Value::text(format!(
            "{} {}",
            pick(rng, HOSPITAL_LEADS),
            pick(rng, HOSPITAL_TAILS)
        )),
        Value::text(format!(
            "{} {} {}",
            rng.range(100, 9999),
            pick(rng, STREETS),
            pick(rng, STREET_SUFFIXES)
        )),
        Value::text(pick(rng, CITIES)),
        Value::text(state),
        Value::Int(rng.range(30_000, 39_999)),
        Value::text(pick(rng, COUNTIES)),
        Value::text(format!(
            "{}-{}-{:04}",
            pick(rng, crate::vocab::AREA_CODES),
            rng.range(200, 999),
            rng.range(0, 10_000)
        )),
        Value::text(pick(rng, HOSPITAL_TYPES)),
        Value::text(pick(rng, OWNERS)),
        Value::text(pick(rng, EMERGENCY)),
        Value::text(CONDITIONS[m % CONDITIONS.len()]),
        Value::text(code),
        Value::text(MEASURE_NAMES[m]),
        Value::text(format!("{} patients", rng.range(10, 500))),
        Value::text(format!("{}_{}", state, measure_code(m))),
        Value::text(format!("{}%", rng.range(50, 100))),
    ]
}

/// Hospital errors are typos into text cells (the benchmark's convention).
fn corrupt(rng: &mut Rng, value: &Value) -> Value {
    match value {
        Value::Text(s) => {
            let mut out = typo(rng, s);
            // Guarantee the value changed even for very short strings.
            if out == *s {
                out.push('x');
            }
            Value::Text(out)
        }
        Value::Int(i) => Value::Int(i + 100_000),
        other => other.clone(),
    }
}

fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    let mut add_lexicon = |domain: &str, values: Vec<String>| {
        for value in values {
            kb.add(Fact::LexiconMember {
                domain: domain.into(),
                value,
            });
        }
    };
    let names: Vec<String> = HOSPITAL_LEADS
        .iter()
        .flat_map(|l| HOSPITAL_TAILS.iter().map(move |t| format!("{l} {t}")))
        .collect();
    add_lexicon("hospitalname", names);
    add_lexicon("city", CITIES.iter().map(|s| s.to_string()).collect());
    add_lexicon("state", STATES.iter().map(|s| s.to_string()).collect());
    add_lexicon(
        "countyname",
        COUNTIES.iter().map(|s| s.to_string()).collect(),
    );
    add_lexicon(
        "hospitaltype",
        HOSPITAL_TYPES.iter().map(|s| s.to_string()).collect(),
    );
    add_lexicon(
        "hospitalowner",
        OWNERS.iter().map(|s| s.to_string()).collect(),
    );
    add_lexicon(
        "emergencyservice",
        EMERGENCY.iter().map(|s| s.to_string()).collect(),
    );
    add_lexicon(
        "condition",
        CONDITIONS.iter().map(|s| s.to_string()).collect(),
    );
    add_lexicon(
        "measurename",
        MEASURE_NAMES.iter().map(|s| s.to_string()).collect(),
    );
    add_lexicon(
        "measurecode",
        (0..MEASURE_NAMES.len()).map(measure_code).collect(),
    );
    add_lexicon(
        "stateavg",
        STATES
            .iter()
            .flat_map(|s| (0..MEASURE_NAMES.len()).map(move |i| format!("{s}_{}", measure_code(i))))
            .collect(),
    );
    kb.add(Fact::NumericRange {
        attribute: "providernumber".into(),
        min: 10_000.0,
        max: 99_999.0,
    });
    kb.add(Fact::NumericRange {
        attribute: "zipcode".into(),
        min: 1000.0,
        max: 99_999.0,
    });
    kb
}

fn few_shot(rng: &mut Rng, schema: &Arc<Schema>) -> Vec<FewShotExample> {
    let mut shots = Vec::with_capacity(10);
    let attrs = [3usize, 4, 8, 11, 13, 3, 4, 8, 11, 13];
    for (i, &attr) in attrs.iter().enumerate() {
        let is_error = i >= 5;
        let mut values = clean_row(rng);
        if is_error {
            values[attr] = corrupt(rng, &values[attr]);
        }
        let record = Record::new(Arc::clone(schema), values).expect("fixed arity");
        let attr_name = schema.attribute(attr).expect("in range").name.clone();
        let value = record.get(attr).expect("in range").to_string();
        let reason = if is_error {
            format!(
                "The target attribute is \"{attr_name}\". The value \"{value}\" contains a \
                 spelling error; it is not one of the legal values of {attr_name}."
            )
        } else {
            format!(
                "The target attribute is \"{attr_name}\". The value \"{value}\" is a \
                 correctly spelled, legal value of {attr_name}."
            )
        };
        shots.push(FewShotExample::new(
            TaskInstance::ErrorDetection {
                record,
                attribute: attr_name,
            },
            reason,
            if is_error { "yes" } else { "no" },
        ));
    }
    shots
}

/// Generates the Hospital dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "hospital");
    let schema = schema();
    let n_rows = scaled(1006, scale, 4);
    let error_rate = 0.05;
    let mut instances = Vec::with_capacity(n_rows * schema.len());
    let mut labels = Vec::with_capacity(n_rows * schema.len());
    for _ in 0..n_rows {
        let mut values = clean_row(&mut rng);
        let mut is_error = vec![false; schema.len()];
        for (attr, flag) in is_error.iter_mut().enumerate() {
            if rng.f64() < error_rate {
                values[attr] = corrupt(&mut rng, &values[attr]);
                *flag = true;
            }
        }
        let record = Record::new(Arc::clone(&schema), values).expect("fixed arity");
        for (attr, flag) in is_error.iter().enumerate() {
            instances.push(TaskInstance::ErrorDetection {
                record: record.clone(),
                attribute: schema.attribute(attr).expect("in range").name.clone(),
            });
            labels.push(Label::YesNo(*flag));
        }
    }
    let few_shot = few_shot(&mut rng, &schema);
    Dataset {
        name: "Hospital",
        task: Task::ErrorDetection,
        instances,
        labels,
        few_shot,
        kb: knowledge_base(),
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_validates() {
        let ds = generate(0.02, 0);
        ds.validate().unwrap();
        assert_eq!(ds.instances.len() % 17, 0, "17 cells per row");
    }

    #[test]
    fn full_scale_instance_count_matches_paper_max() {
        // 1006 rows × 17 attributes = 17 102 ≈ the paper's 17 101 maximum.
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 17_102);
    }

    #[test]
    fn typo_errors_not_in_lexicon() {
        let ds = generate(0.05, 1);
        let mem = dprep_llm::knowledge::Memorizer {
            model_name: "oracle".into(),
            coverage: 1.0,
            seed: 0,
        };
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::ErrorDetection { record, attribute } = inst else {
                panic!("wrong task")
            };
            if label.as_bool() == Some(true) && attribute == "city" {
                let v = record.get_by_name(attribute).unwrap().to_string();
                let in_lexicon = ds.kb.known_lexicon(&mem, "city").any(|m| m == v);
                assert!(!in_lexicon, "corrupted city {v:?} is still a legal value");
            }
        }
    }

    #[test]
    fn measure_codes_align_with_names() {
        let ds = generate(0.05, 2);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::ErrorDetection { record, attribute } = inst else {
                continue;
            };
            if attribute == "condition" && label.as_bool() == Some(false) {
                let condition = record.get_by_name("condition").unwrap().to_string();
                assert!(CONDITIONS.contains(&condition.as_str()));
            }
        }
    }
}
