//! The **Adult** error-detection dataset (census records).
//!
//! 1000 rows × 11 attributes = 11 000 cell-level instances at full scale.
//! Errors are injected at a ~5% cell rate with a realistic severity mix:
//!
//! * blatant numeric corruption (age 250, 600 hours/week, negative
//!   capital-gain) — detectable even zero-shot,
//! * categorical typos (`privte` for `private`) — detectable only by
//!   checking a memorized lexicon, i.e. with reasoning,
//! * garbage placeholders (`#####`, `xxxxx`),
//! * subtle swaps to a *different valid* category — essentially
//!   undetectable from one record, bounding achievable recall just below
//!   100%, as the paper's best ED scores (92.0) suggest.

use std::sync::Arc;

use dprep_rng::Rng;

use dprep_llm::{Fact, KnowledgeBase};
use dprep_prompt::{FewShotExample, Task, TaskInstance};
use dprep_tabular::{AttrType, Record, Schema, Value};

use crate::common::{pick, sub_rng, typo};
use crate::vocab::{EDUCATIONS, MARITAL_STATUSES, OCCUPATIONS, RACES, WORKCLASSES};
use crate::{scaled, Dataset, Label};

const GARBAGE: &[&str] = &["xxxxx", "#####", "!!", "n0ne", "@@@"];

fn schema() -> Arc<Schema> {
    Schema::from_names(&[
        ("age", AttrType::Numeric),
        ("workclass", AttrType::Text),
        ("education", AttrType::Text),
        ("maritalstatus", AttrType::Text),
        ("occupation", AttrType::Text),
        ("race", AttrType::Text),
        ("sex", AttrType::Text),
        ("capitalgain", AttrType::Numeric),
        ("capitalloss", AttrType::Numeric),
        ("hoursperweek", AttrType::Numeric),
        ("income", AttrType::Text),
    ])
    .expect("static schema")
    .shared()
}

fn clean_row(rng: &mut Rng) -> Vec<Value> {
    let age = rng.range_incl(17, 90i64);
    let gain = if rng.f64() < 0.8 {
        0
    } else {
        rng.range_incl(100, 99_999i64)
    };
    let loss = if rng.f64() < 0.9 {
        0
    } else {
        rng.range_incl(100, 4356i64)
    };
    let hours = rng.range_incl(1, 99i64);
    vec![
        Value::Int(age),
        Value::text(pick(rng, WORKCLASSES)),
        Value::text(pick(rng, EDUCATIONS)),
        Value::text(pick(rng, MARITAL_STATUSES)),
        Value::text(pick(rng, OCCUPATIONS)),
        Value::text(pick(rng, RACES)),
        Value::text(if rng.bool(0.5) { "male" } else { "female" }),
        Value::Int(gain),
        Value::Int(loss),
        Value::Int(hours),
        Value::text(if rng.f64() < 0.25 { ">50k" } else { "<=50k" }),
    ]
}

/// Category pool for a text attribute, by schema index.
fn category_pool(attr_index: usize) -> Option<&'static [&'static str]> {
    match attr_index {
        1 => Some(WORKCLASSES),
        2 => Some(EDUCATIONS),
        3 => Some(MARITAL_STATUSES),
        4 => Some(OCCUPATIONS),
        5 => Some(RACES),
        _ => None,
    }
}

/// Corrupts the cell at `attr` with an *illustrative* error — the kind a
/// user would label in a few-shot example (blatant numeric, typo, or
/// garbage; never a subtle valid-category swap).
fn corrupt_obvious(rng: &mut Rng, attr: usize, current: &Value) -> Value {
    match current {
        Value::Int(_) => corrupt(rng, attr, current),
        Value::Text(s) => {
            if rng.f64() < 0.7 {
                Value::text(typo(rng, s))
            } else {
                Value::text(GARBAGE[rng.range(0, GARBAGE.len())])
            }
        }
        other => other.clone(),
    }
}

/// Corrupts the cell at `attr`, returning the corrupted value.
fn corrupt(rng: &mut Rng, attr: usize, current: &Value) -> Value {
    match current {
        Value::Int(_) => match attr {
            0 => Value::Int(rng.range_incl(120, 400)), // age
            9 => Value::Int(rng.range_incl(120, 999)), // hoursperweek
            _ => Value::Int(-rng.range_incl(100, 9999)),
        },
        Value::Text(s) => {
            let roll = rng.f64();
            if roll < 0.6 {
                Value::text(typo(rng, s))
            } else if roll < 0.8 {
                Value::text(GARBAGE[rng.range(0, GARBAGE.len())])
            } else if let Some(pool) = category_pool(attr) {
                // Subtle: a different *valid* category.
                let mut v = pick(rng, pool);
                while v == s.as_str() {
                    v = pick(rng, pool);
                }
                Value::text(v)
            } else {
                Value::text(typo(rng, s))
            }
        }
        other => other.clone(),
    }
}

fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.add(Fact::NumericRange {
        attribute: "age".into(),
        min: 16.0,
        max: 100.0,
    });
    kb.add(Fact::NumericRange {
        attribute: "hoursperweek".into(),
        min: 1.0,
        max: 99.0,
    });
    kb.add(Fact::NumericRange {
        attribute: "capitalgain".into(),
        min: 0.0,
        max: 100_000.0,
    });
    kb.add(Fact::NumericRange {
        attribute: "capitalloss".into(),
        min: 0.0,
        max: 5000.0,
    });
    for (domain, pool) in [
        ("workclass", WORKCLASSES),
        ("education", EDUCATIONS),
        ("maritalstatus", MARITAL_STATUSES),
        ("occupation", OCCUPATIONS),
        ("race", RACES),
    ] {
        for value in pool {
            kb.add(Fact::LexiconMember {
                domain: domain.into(),
                value: (*value).to_string(),
            });
        }
    }
    for value in ["male", "female"] {
        kb.add(Fact::LexiconMember {
            domain: "sex".into(),
            value: value.into(),
        });
    }
    for value in [">50k", "<=50k"] {
        kb.add(Fact::LexiconMember {
            domain: "income".into(),
            value: value.into(),
        });
    }
    kb
}

/// One cell instance: build the (possibly corrupted) record and label.
fn make_cell_instances(
    rng: &mut Rng,
    schema: &Arc<Schema>,
    n_rows: usize,
    error_rate: f64,
) -> (Vec<TaskInstance>, Vec<Label>) {
    let mut instances = Vec::with_capacity(n_rows * schema.len());
    let mut labels = Vec::with_capacity(n_rows * schema.len());
    for _ in 0..n_rows {
        let mut values = clean_row(rng);
        let mut is_error = vec![false; schema.len()];
        for (attr, flag) in is_error.iter_mut().enumerate() {
            if rng.f64() < error_rate {
                values[attr] = corrupt(rng, attr, &values[attr]);
                *flag = true;
            }
        }
        let record = Record::new(Arc::clone(schema), values).expect("fixed arity");
        for (attr, flag) in is_error.iter().enumerate() {
            instances.push(TaskInstance::ErrorDetection {
                record: record.clone(),
                attribute: schema.attribute(attr).expect("in range").name.clone(),
            });
            labels.push(Label::YesNo(*flag));
        }
    }
    (instances, labels)
}

fn few_shot(rng: &mut Rng, schema: &Arc<Schema>) -> Vec<FewShotExample> {
    let mut shots = Vec::with_capacity(10);
    // Five clean, five erroneous, across different attributes.
    let attrs = [0usize, 1, 2, 9, 4, 0, 9, 1, 2, 4];
    for (i, &attr) in attrs.iter().enumerate() {
        let is_error = i >= 5;
        let mut values = clean_row(rng);
        if is_error {
            values[attr] = corrupt_obvious(rng, attr, &values[attr]);
        }
        let record = Record::new(Arc::clone(schema), values).expect("fixed arity");
        let attr_name = schema.attribute(attr).expect("in range").name.clone();
        let value = record.get(attr).expect("in range").to_string();
        let reason = if is_error {
            format!(
                "The target attribute is \"{attr_name}\". The value \"{value}\" is not a \
                 plausible {attr_name}: it is out of range, misspelled, or malformed."
            )
        } else {
            format!(
                "The target attribute is \"{attr_name}\". The value \"{value}\" is an \
                 ordinary, plausible {attr_name} consistent with the record."
            )
        };
        shots.push(FewShotExample::new(
            TaskInstance::ErrorDetection {
                record,
                attribute: attr_name,
            },
            reason,
            if is_error { "yes" } else { "no" },
        ));
    }
    shots
}

/// Generates the Adult dataset.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = sub_rng(seed, "adult");
    let schema = schema();
    let n_rows = scaled(1000, scale, 4);
    let (instances, labels) = make_cell_instances(&mut rng, &schema, n_rows, 0.05);
    let few_shot = few_shot(&mut rng, &schema);
    Dataset {
        name: "Adult",
        task: Task::ErrorDetection,
        instances,
        labels,
        few_shot,
        kb: knowledge_base(),
        type_hint: None,
        informative_features: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_has_11000_instances() {
        let ds = generate(1.0, 0);
        assert_eq!(ds.len(), 11_000);
        ds.validate().unwrap();
    }

    #[test]
    fn error_rate_is_about_five_percent() {
        let ds = generate(0.3, 1);
        let errors = ds
            .labels
            .iter()
            .filter(|l| l.as_bool() == Some(true))
            .count();
        let rate = errors as f64 / ds.len() as f64;
        assert!((0.03..=0.07).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn corrupted_cells_differ_from_clean() {
        let ds = generate(0.1, 2);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::ErrorDetection { record, attribute } = inst else {
                panic!("wrong task")
            };
            if label.as_bool() == Some(true) {
                // Erroneous numeric cells must violate the KB range.
                let v = record.get_by_name(attribute).unwrap();
                if let Some(n) = v.as_f64() {
                    let plausible = match attribute.as_str() {
                        "age" => (16.0..=100.0).contains(&n),
                        "hoursperweek" => (1.0..=99.0).contains(&n),
                        "capitalgain" | "capitalloss" => n >= 0.0,
                        _ => true,
                    };
                    assert!(!plausible, "error cell {attribute}={n} looks clean");
                }
            }
        }
    }

    #[test]
    fn few_shot_is_balanced() {
        let ds = generate(0.02, 3);
        let yes = ds.few_shot.iter().filter(|s| s.answer == "yes").count();
        assert_eq!(yes, 5);
        assert_eq!(ds.few_shot.len(), 10);
    }

    #[test]
    fn kb_contains_ranges_and_lexicons() {
        let ds = generate(0.02, 0);
        assert!(ds.kb.has_lexicon("workclass"));
        assert!(ds.kb.has_lexicon("income"));
        assert!(ds.kb.len() > 40);
    }
}
