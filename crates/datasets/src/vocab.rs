//! Word pools the generators compose entities from.
//!
//! Small curated arrays combined combinatorially yield thousands of
//! distinct, plausible-looking values (product titles, person names,
//! addresses) without shipping any real dataset.

/// US-style city names (also the `city` lexicon for error detection and the
/// hallucination pool for imputation).
pub const CITIES: &[&str] = &[
    "atlanta",
    "marietta",
    "savannah",
    "decatur",
    "roswell",
    "athens",
    "macon",
    "augusta",
    "columbus",
    "albany",
    "valdosta",
    "smyrna",
    "duluth",
    "kennesaw",
    "alpharetta",
    "norcross",
    "newnan",
    "carrollton",
    "dalton",
    "gainesville",
];

/// Phone area-code prefixes aligned with [`CITIES`] (index i ↔ city i % len).
pub const AREA_CODES: &[&str] = &[
    "770", "404", "912", "678", "470", "706", "478", "762", "229", "659", "205", "251", "256",
    "334", "938", "463", "930", "364", "502", "606",
];

/// Street base names for addresses.
pub const STREETS: &[&str] = &[
    "powers ferry",
    "peachtree",
    "ponce de leon",
    "piedmont",
    "roswell",
    "spring",
    "magnolia",
    "oak hill",
    "river bend",
    "lake shore",
    "cedar grove",
    "walnut",
    "dogwood",
    "mulberry",
    "canton",
    "holly springs",
    "johnson ferry",
    "chastain",
    "collier",
    "howell mill",
];

/// Street suffixes.
pub const STREET_SUFFIXES: &[&str] = &["rd.", "st.", "ave.", "blvd.", "ln.", "dr.", "pkwy."];

/// Restaurant cuisine types.
pub const CUISINES: &[&str] = &[
    "hamburgers",
    "italian",
    "bbq",
    "seafood",
    "steakhouse",
    "mexican",
    "thai",
    "diner",
    "pizza",
    "sushi",
    "vegetarian",
    "cajun",
    "french",
    "korean",
    "indian",
];

/// Restaurant name leads.
pub const RESTAURANT_LEADS: &[&str] = &[
    "carey's",
    "blue moon",
    "dixie",
    "golden",
    "mama's",
    "riverside",
    "old mill",
    "magnolia",
    "twin oaks",
    "sunset",
    "harbor",
    "copper kettle",
    "red barn",
    "silver spoon",
    "wild fig",
];

/// Restaurant name tails.
pub const RESTAURANT_TAILS: &[&str] = &[
    "corner",
    "cafe",
    "grill",
    "kitchen",
    "house",
    "tavern",
    "bistro",
    "smokehouse",
    "diner",
    "eatery",
];

/// Person first names (authors, patients).
pub const FIRST_NAMES: &[&str] = &[
    "james", "mary", "wei", "haruto", "fatima", "lucas", "sofia", "chen", "amara", "diego", "yuki",
    "noah", "priya", "elena", "omar", "grace", "ivan", "leila", "marco", "nina",
];

/// Person last names.
pub const LAST_NAMES: &[&str] = &[
    "smith", "johnson", "zhang", "tanaka", "garcia", "mueller", "rossi", "kim", "okafor", "silva",
    "novak", "patel", "haddad", "kowalski", "nguyen", "brown", "ivanov", "santos", "fischer",
    "dubois",
];

/// Consumer-electronics brands (Buy imputation, Walmart-Amazon EM).
pub const BRANDS: &[&str] = &[
    "sony",
    "samsung",
    "lenovo",
    "canon",
    "nikon",
    "panasonic",
    "logitech",
    "netgear",
    "garmin",
    "toshiba",
    "philips",
    "jbl",
    "asus",
    "acer",
    "epson",
    "brother",
    "sandisk",
    "seagate",
    "corsair",
    "razer",
];

/// Product category nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "laptop",
    "camera",
    "router",
    "headphones",
    "monitor",
    "keyboard",
    "printer",
    "speaker",
    "tablet",
    "projector",
    "webcam",
    "microphone",
    "drive",
    "charger",
    "mouse",
];

/// Product qualifier words.
pub const PRODUCT_QUALIFIERS: &[&str] = &[
    "wireless",
    "portable",
    "compact",
    "professional",
    "gaming",
    "ultra",
    "premium",
    "digital",
    "smart",
    "classic",
];

/// Software product nouns (Amazon-Google).
pub const SOFTWARE_NOUNS: &[&str] = &[
    "antivirus",
    "office suite",
    "photo editor",
    "tax software",
    "encyclopedia",
    "typing tutor",
    "video editor",
    "language course",
    "accounting software",
    "backup utility",
    "web designer",
    "music studio",
    "pdf converter",
    "diagram tool",
    "genealogy software",
];

/// Software publishers.
pub const SOFTWARE_PUBLISHERS: &[&str] = &[
    "microsoft",
    "adobe",
    "intuit",
    "symantec",
    "corel",
    "mcafee",
    "roxio",
    "broderbund",
    "encore",
    "nova development",
    "individual software",
    "topics entertainment",
    "valusoft",
    "avanquest",
    "riverdeep",
];

/// Beer name adjectives.
pub const BEER_ADJECTIVES: &[&str] = &[
    "golden", "hoppy", "midnight", "amber", "rustic", "wild", "smoky", "velvet", "copper",
    "frosty", "crimson", "lazy", "roaring", "quiet", "electric",
];

/// Beer name nouns.
pub const BEER_NOUNS: &[&str] = &[
    "trail", "river", "fox", "anvil", "lantern", "orchard", "summit", "harbor", "meadow", "canyon",
    "bison", "raven", "pine", "ember", "wave",
];

/// Beer styles, full names.
pub const BEER_STYLES: &[&str] = &[
    "india pale ale",
    "american pale ale",
    "imperial stout",
    "hefeweizen",
    "pilsner",
    "porter",
    "saison",
    "extra special bitter",
    "brown ale",
    "double india pale ale",
];

/// Beer style abbreviations aligned with [`BEER_STYLES`].
pub const BEER_STYLE_ABBREVS: &[&str] = &[
    "ipa",
    "apa",
    "imp stout",
    "hefe",
    "pils",
    "porter",
    "saison",
    "esb",
    "brown",
    "dipa",
];

/// Brewery name tails.
pub const BREWERY_TAILS: &[&str] = &[
    "brewing company",
    "brewery",
    "beer works",
    "brewing co.",
    "craft brewers",
    "ale house",
];

/// Paper-title topic words (DBLP).
pub const PAPER_TOPICS: &[&str] = &[
    "query optimization",
    "data integration",
    "entity resolution",
    "schema matching",
    "stream processing",
    "index structures",
    "transaction management",
    "data cleaning",
    "approximate joins",
    "view maintenance",
    "spatial indexing",
    "graph queries",
    "workload forecasting",
    "cardinality estimation",
    "columnar storage",
];

/// Paper-title qualifier phrases (DBLP).
pub const PAPER_QUALIFIERS: &[&str] = &[
    "efficient",
    "scalable",
    "adaptive",
    "distributed",
    "incremental",
    "learned",
    "robust",
    "parallel",
    "interactive",
    "declarative",
];

/// Venue full names.
pub const VENUES: &[&str] = &[
    "acm sigmod international conference on management of data",
    "international conference on very large data bases",
    "ieee international conference on data engineering",
    "acm transactions on database systems",
    "international conference on extending database technology",
];

/// Venue abbreviations aligned with [`VENUES`].
pub const VENUE_ABBREVS: &[&str] = &["sigmod", "vldb", "icde", "tods", "edbt"];

/// Song-title leads (iTunes-Amazon).
pub const SONG_LEADS: &[&str] = &[
    "midnight", "summer", "broken", "electric", "golden", "lonely", "neon", "paper", "silver",
    "wild",
];

/// Song-title tails.
pub const SONG_TAILS: &[&str] = &[
    "road", "hearts", "city", "dreams", "fire", "rain", "letters", "sky", "echoes", "river",
];

/// Music genres.
pub const GENRES: &[&str] = &[
    "pop",
    "rock",
    "country",
    "hip-hop",
    "electronic",
    "jazz",
    "folk",
    "r&b",
];

/// Workclass categories (Adult).
pub const WORKCLASSES: &[&str] = &[
    "private",
    "self-emp-not-inc",
    "self-emp-inc",
    "federal-gov",
    "local-gov",
    "state-gov",
    "without-pay",
];

/// Education categories (Adult).
pub const EDUCATIONS: &[&str] = &[
    "bachelors",
    "hs-grad",
    "11th",
    "masters",
    "9th",
    "some-college",
    "assoc-acdm",
    "assoc-voc",
    "7th-8th",
    "doctorate",
    "prof-school",
];

/// Marital-status categories (Adult).
pub const MARITAL_STATUSES: &[&str] = &[
    "married-civ-spouse",
    "divorced",
    "never-married",
    "separated",
    "widowed",
    "married-spouse-absent",
];

/// Occupation categories (Adult).
pub const OCCUPATIONS: &[&str] = &[
    "tech-support",
    "craft-repair",
    "other-service",
    "sales",
    "exec-managerial",
    "prof-specialty",
    "handlers-cleaners",
    "machine-op-inspct",
    "adm-clerical",
    "farming-fishing",
    "transport-moving",
    "protective-serv",
];

/// Race categories (Adult).
pub const RACES: &[&str] = &[
    "white",
    "black",
    "asian-pac-islander",
    "amer-indian-eskimo",
    "other",
];

/// Hospital measure names.
pub const MEASURE_NAMES: &[&str] = &[
    "heart attack patients given aspirin at arrival",
    "heart failure patients given discharge instructions",
    "pneumonia patients assessed and given influenza vaccination",
    "surgery patients given antibiotics within one hour",
    "children who received reliever medication while hospitalized",
    "patients given assessment of oxygenation",
    "heart attack patients given beta blocker at discharge",
    "patients having surgery who got treatment to prevent blood clots",
];

/// Hospital condition names aligned loosely with measures.
pub const CONDITIONS: &[&str] = &[
    "heart attack",
    "heart failure",
    "pneumonia",
    "surgical infection prevention",
    "children's asthma care",
];

/// Hospital name leads.
pub const HOSPITAL_LEADS: &[&str] = &[
    "st. mary's",
    "memorial",
    "university",
    "county general",
    "sacred heart",
    "riverside",
    "good samaritan",
    "providence",
    "baptist",
    "mercy",
];

/// Hospital name tails.
pub const HOSPITAL_TAILS: &[&str] = &[
    "medical center",
    "hospital",
    "regional hospital",
    "health center",
    "clinic",
];

/// US state abbreviations used by the hospital dataset.
pub const STATES: &[&str] = &["al", "ga", "fl", "tn", "sc", "nc", "ms", "ky", "va", "la"];

/// County names.
pub const COUNTIES: &[&str] = &[
    "fulton", "cobb", "dekalb", "gwinnett", "clayton", "cherokee", "forsyth", "henry", "hall",
    "bibb",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_arrays_have_matching_lengths() {
        assert_eq!(BEER_STYLES.len(), BEER_STYLE_ABBREVS.len());
        assert_eq!(VENUES.len(), VENUE_ABBREVS.len());
        assert!(AREA_CODES.len() >= CITIES.len());
    }

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [CITIES, STREETS, BRANDS, BEER_STYLES, VENUES, WORKCLASSES] {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_lowercase(), "{w} should be lowercase");
            }
        }
    }

    #[test]
    fn no_duplicates_in_lexicon_pools() {
        for pool in [CITIES, WORKCLASSES, EDUCATIONS, OCCUPATIONS, STATES] {
            let mut v: Vec<&str> = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len());
        }
    }
}
