use dprep_datasets::common::typo;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn typo_can_return_input_unchanged() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut unchanged = 0;
    let n = 100_000;
    for _ in 0..n {
        if typo(&mut rng, "private") == "private" { unchanged += 1; }
    }
    println!("typo unchanged rate: {} / {n}", unchanged);
}
