use dprep_datasets::{adult, synthea};
use dprep_prompt::TaskInstance;

#[test]
fn adult_error_label_with_unchanged_value() {
    let mut found = 0;
    for seed in 0..30u64 {
        let ds = adult::generate(0.5, seed);
        for (inst, label) in ds.instances.iter().zip(&ds.labels) {
            let TaskInstance::ErrorDetection { record, attribute } = inst else { continue };
            if label.as_bool() != Some(true) { continue; }
            let v = record.get_by_name(attribute).unwrap().to_string();
            let mem = dprep_llm::knowledge::Memorizer { model_name: "oracle".into(), coverage: 1.0, seed: 0 };
            if ds.kb.has_lexicon(attribute) && ds.kb.known_lexicon(&mem, attribute).any(|m| m == v) {
                found += 1;
                if found <= 5 { println!("seed {seed}: attr {attribute} value {v:?} labeled error but is a legal lexicon value"); }
            }
        }
    }
    println!("total error-labeled cells with legal values: {found}");
}

#[test]
fn synthea_few_shot_overlaps_test() {
    let mut overlaps = 0;
    for seed in 0..20u64 {
        let ds = synthea::generate(1.0, seed);
        for shot in &ds.few_shot {
            if ds.instances.iter().any(|i| *i == shot.instance) {
                overlaps += 1;
            }
        }
    }
    println!("few-shot instances identical to a test instance across 20 seeds: {overlaps}");
}
